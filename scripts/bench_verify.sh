#!/usr/bin/env bash
# Runs the verification data-plane benchmark and emits BENCH_verify.json
# at the repo root.
#
# The JSON records, per op: ns/iter, MB/s of weight data digested, and the
# speedup over the retained scalar oracle. The acceptance bars below match
# the issue: >= 2x on checkpoint commitment hashing (multi-lane SHA-256 vs
# per-checkpoint scalar) and >= 3x on LSH digest computation (GEMM-lowered
# projections vs the scalar dot-product chain), both single-threaded. The
# criterion benches (`cargo bench -p rpol-bench --bench verify`) give
# finer-grained numbers when needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin verify_bench -- BENCH_verify.json

# Acceptance gate: >= 2x commitment hashing, >= 3x LSH digests.
python3 - <<'EOF'
import json
by_op = {r["op"]: r for r in json.load(open("BENCH_verify.json"))}
h = by_op["commit_hash_batch"]["speedup_vs_scalar"]
l = by_op["lsh_digest_gemm_1t"]["speedup_vs_scalar"]
print(f"commitment hashing speedup: {h:.2f}x (bar: 2x)")
print(f"LSH digest speedup (1 thread): {l:.2f}x (bar: 3x)")
assert h >= 2.0, f"commitment hashing speedup {h:.2f}x below the 2x bar"
assert l >= 3.0, f"LSH digest speedup {l:.2f}x below the 3x bar"
EOF
echo "BENCH_verify.json written"
