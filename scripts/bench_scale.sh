#!/usr/bin/env bash
# Runs the committee-sharding scale benchmark and emits BENCH_scale.json
# at the repo root.
#
# The JSON records modeled per-node epochs/s and peak commitment bytes
# for the flat single-manager pipeline vs the two-tier hierarchy at
# 10²…10⁵ synthesized workers, driving the real partition/Merkle/batch/
# audit code (see the binary's doc comment for the model). The modeled
# ratios come from single-thread per-node costs, so they hold on any
# host; scripts/check_bench.sh gates the 10⁴ speedup and the sub-linear
# peak-memory slope against this committed baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin pool_scale_bench -- BENCH_scale.json

python3 - <<'EOF'
import json
doc = json.load(open("BENCH_scale.json"))
scales = {s["workers"]: s for s in doc["scales"]}
assert set(scales) == {100, 1_000, 10_000, 100_000}, f"unexpected scales: {set(scales)}"
for n, s in scales.items():
    assert s["flat_epochs_per_s"] > 0 and s["hier_epochs_per_s"] > 0, f"{n}: no throughput"
    assert s["verdicts"] == n, f"{n}: not every worker judged"
    assert s["audits"] > 0 and s["audit_mismatches"] == 0, f"{n}: audit trail broken"
assert scales[10_000]["modeled_speedup"] >= 5.0, \
    f"10k speedup {scales[10_000]['modeled_speedup']:.1f}x below the 5x bar"
print("BENCH_scale.json structure OK:")
for n in sorted(scales):
    s = scales[n]
    print(f"  {n:>7} workers: {s['modeled_speedup']:.1f}x, "
          f"peak {s['flat_peak_bytes']} -> {s['hier_peak_bytes']} B")
EOF
echo "BENCH_scale.json written"
