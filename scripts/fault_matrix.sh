#!/usr/bin/env bash
# Fault-injection matrix: sweeps loss profiles, seeds, a worker crash and
# an extreme straggler over the tiny demo pool, asserting on every cell
# that no honest worker is rejected and that same-seed runs are
# byte-identical. Exercises the transport end to end, beyond what the
# unit suite samples.
#
# Usage: scripts/fault_matrix.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

BIN=target/release/examples/fault_injection
cargo build --release --example fault_injection

run() {
    echo "-- fault_injection $*"
    "$BIN" --assert-honest "$@" > /tmp/fault_matrix_run.txt
    tail -n 2 /tmp/fault_matrix_run.txt
}

echo "== profile x scheme x seed sweep"
for profile in none lossy harsh; do
    for scheme in baseline v1 v2; do
        for seed in 1 2; do
            run --profile "$profile" --scheme "$scheme" --seed "$seed"
        done
    done
done

echo "== custom rates"
run --drop 0.2 --corrupt 0.05 --truncate 0.02 --seed 5

echo "== crash + straggler degradation"
run --crash 1@0 --seed 7
run --straggler 1@1e6 --profile none --seed 7
run --crash 1@1 --straggler 2@3 --workers 4 --seed 7

echo "== determinism: same seed, serial vs parallel, twice"
"$BIN" --profile lossy --crash 1@1 --seed 11 > /tmp/fault_a.txt
"$BIN" --profile lossy --crash 1@1 --seed 11 --parallel > /tmp/fault_b.txt
diff /tmp/fault_a.txt /tmp/fault_b.txt
echo "identical reports"

echo "== rpol CLI fault flags"
cargo build --release -p rpol-cli
target/release/rpol pool --workers=4 --adversaries=1 --epochs=2 --faults=lossy --fault-seed=5 \
    | grep -q "^transport:"
if target/release/rpol pool --drop=1.5 > /dev/null 2>&1; then
    echo "expected out-of-range drop rate to fail" >&2
    exit 1
fi
echo "CLI flags wired"

echo "== bad --net rejected"
if "$BIN" --net -1,1,0.1 > /dev/null 2>&1; then
    echo "expected invalid network model to fail" >&2
    exit 1
fi
echo "invalid bandwidth refused"

echo "fault matrix green"
