#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 suite.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q

echo "== executor: 8-thread pass (scheduling + determinism under contention)"
RPOL_EXEC_THREADS=8 cargo test -q -p rpol-exec
RPOL_EXEC_THREADS=8 cargo test -q -p rpol --test exec_determinism

echo "== GEMM on the executor: 8-thread invariance + quantizer determinism"
RPOL_EXEC_THREADS=8 cargo test -q -p rpol-tensor

echo "== fault-injection matrix"
scripts/fault_matrix.sh

echo "== bench smoke: verification data plane vs committed baseline"
scripts/check_bench.sh

echo "== net smoke: full epoch over loopback TCP, readiness reactor, lossy chaos"
scripts/net_smoke.sh

echo "== trace smoke: observability pipeline"
scripts/trace_smoke.sh

echo "== obs e2e: multi-process trace stitching + live status plane"
scripts/obs_e2e.sh

echo "CI green"
