#!/usr/bin/env bash
# Regenerates every recorded experiment output in results/.
#
# Usage: scripts/reproduce_all.sh [--fast]
#   --fast   smaller epochs/trials for a quick (~5 min) smoke pass;
#            default settings match the committed results/ files.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST_ARGS=()
FIG6_ARGS=(--epochs=8 --reps=3 --taskb=1)
if [[ "${1:-}" == "--fast" ]]; then
    FAST_ARGS=(--epochs=3 --trials=3)
    FIG6_ARGS=(--epochs=4 --reps=1 --taskb=0)
fi

mkdir -p results
run() {
    local bin=$1; shift
    echo ">> $bin $*"
    cargo run -q --release -p rpol-bench --bin "$bin" -- "$@" > "results/$bin.md"
}

run fig1_lsh_curves
run soundness_analysis
run table2_epoch_time
run table3_overhead
run table1_amlayer
run fig3_amlayer_accuracy
run fig4_repro_errors
run ablation_sweeps "${FAST_ARGS[@]:-}"
run fig5_calibration "${FAST_ARGS[@]:-}"
run competition_rounds
run fig6_attacks "${FIG6_ARGS[@]}"

echo "done; outputs in results/"
