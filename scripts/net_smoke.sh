#!/usr/bin/env bash
# Socket-transport smoke: a full epoch sequence over a real loopback TCP
# socket with the chaos proxy in lossy mode, via the CLI's single-process
# `serve --loopback` mode, pinned to the readiness reactor so CI
# exercises the epoll ingest plane end to end. Fails if any worker gives
# up instead of receiving the server's shutdown, if no epoch report is
# printed, or if the server did not actually run the readiness backend.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo build --release -p rpol-cli

out="$(./target/release/rpol serve --loopback --workers=3 --adversaries=1 \
    --epochs=2 --faults=lossy --backend=readiness 2>&1)"
echo "$out"

clean=$(grep -c "clean shutdown" <<<"$out" || true)
if [ "$clean" -ne 3 ]; then
    echo "net smoke: expected 3 clean worker shutdowns, saw $clean" >&2
    exit 1
fi
if ! grep -q "^epoch 2:" <<<"$out"; then
    echo "net smoke: missing epoch 2 report line" >&2
    exit 1
fi
if ! grep -q "^net: " <<<"$out"; then
    echo "net smoke: missing socket-layer counter summary" >&2
    exit 1
fi
if ! grep -q "readiness reactor" <<<"$out"; then
    echo "net smoke: server did not report the readiness reactor" >&2
    exit 1
fi
echo "net smoke OK: 3 workers, 2 epochs over loopback TCP (readiness reactor, lossy chaos)"
