#!/usr/bin/env bash
# Runs the epoch-pipeline benchmark and emits BENCH_pool.json at the
# repo root.
#
# The JSON records modeled epochs/s of the scoped (per-epoch thread
# spawning, train->verify barrier) and overlapped (persistent executor,
# segment-granular verification released per worker) pipelines at 1/2/8
# threads — makespans list-scheduled from real span durations measured on
# an instrumented serial run — plus honest wall-clock epochs/s on this
# host. The acceptance bar matches the issue: >= 2x modeled multi-worker
# epoch throughput at 8 threads for the overlapped pipeline vs the
# pre-executor scoped baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin pool_bench -- BENCH_pool.json

# Acceptance gate: >= 2x overlapped-vs-scoped at 8 modeled threads.
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_pool.json"))
by_threads = {m["threads"]: m for m in doc["modeled"]}
s = by_threads[8]["overlapped_vs_scoped"]
print(f"overlapped vs scoped at 8 threads: {s:.2f}x (bar: 2x)")
assert s >= 2.0, f"modeled 8-thread speedup {s:.2f}x below the 2x bar"
one = by_threads[1]
ratio = one["overlapped_epochs_per_s"] / one["scoped_epochs_per_s"]
assert 0.9 <= ratio <= 1.1, f"1-thread pipelines should match ({ratio:.2f})"
EOF
echo "BENCH_pool.json written"
