#!/usr/bin/env bash
# Regression gate for the verification data plane and the epoch pipeline.
#
# Re-measures both benchmarks in smoke mode (BENCH_SMOKE=1: smaller
# shapes, shorter timing budget — the same regimes at a fraction of the
# wall-clock) and fails if a headline number fell too far below its
# committed baseline (BENCH_verify.json, BENCH_pool.json). Speedup
# *ratios* are compared, not absolute ns, so the gate is robust to host
# differences.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f BENCH_verify.json ]; then
    echo "no committed BENCH_verify.json baseline; run scripts/bench_verify.sh first" >&2
    exit 1
fi
if [ ! -f BENCH_pool.json ]; then
    echo "no committed BENCH_pool.json baseline; run scripts/bench_pool.sh first" >&2
    exit 1
fi
if [ ! -f BENCH_net.json ]; then
    echo "no committed BENCH_net.json baseline; run scripts/bench_net.sh first" >&2
    exit 1
fi
if [ ! -f BENCH_scale.json ]; then
    echo "no committed BENCH_scale.json baseline; run scripts/bench_scale.sh first" >&2
    exit 1
fi

export CARGO_NET_OFFLINE=true
mkdir -p target
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin verify_bench -- target/BENCH_verify.fresh.json
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin pool_bench -- target/BENCH_pool.fresh.json
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin net_bench -- target/BENCH_net.fresh.json
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin pool_scale_bench -- target/BENCH_scale.fresh.json

# Observability overhead on the verify hot path: the criterion bench's
# three e2e variants (noop recorder, real-but-disabled recorder, fully
# recording recorder) must all run, and the obs cost must stay bounded.
cargo bench -p rpol-bench --bench verify -- verify_samples_e2e_v2 \
    | tee target/bench_obs_overhead.txt

python3 - <<'EOF'
import json

# --- Verification data plane: vectorization speedups hold. ---
base = {r["op"]: r for r in json.load(open("BENCH_verify.json"))}
fresh = {r["op"]: r for r in json.load(open("target/BENCH_verify.fresh.json"))}
for op in ("commit_hash_batch", "lsh_digest_gemm_1t"):
    b = base[op]["speedup_vs_scalar"]
    f = fresh[op]["speedup_vs_scalar"]
    ratio = f / b
    print(f"{op}: baseline {b:.2f}x, fresh {f:.2f}x ({ratio:.2f} of baseline)")
    assert ratio >= 0.8, f"{op} speedup regressed >20% vs committed baseline"

# --- Quantized digests (RPoLv3): hashing the bf16 image must keep its
# byte-halving edge over the full-precision batch hasher.
quant_edge = base["commit_hash_batch"]["ns_per_iter"] / base["commit_hash_quant"]["ns_per_iter"]
print(f"commit_hash_quant: committed {quant_edge:.2f}x over full-precision batch (bar: 1.5x)")
assert quant_edge >= 1.5, f"committed quantized digest edge {quant_edge:.2f}x below the 1.5x bar"
fresh_edge = fresh["commit_hash_batch"]["ns_per_iter"] / fresh["commit_hash_quant"]["ns_per_iter"]
print(f"commit_hash_quant: fresh smoke {fresh_edge:.2f}x over full-precision batch")
assert fresh_edge >= 1.2, f"fresh quantized digest edge {fresh_edge:.2f}x lost the byte-halving win"

# --- Packed wire framing (RPoLv3): raw/packed size ratio is deterministic,
# so it is gated at full strength in both baselines. 1.667x ≙ the 40%
# payload-byte reduction the scheme promises on checkpoint submissions.
for name, doc in (("committed", base), ("fresh", fresh)):
    ratio = doc["wire_submission_packed"]["speedup_vs_scalar"]
    print(f"wire_submission_packed ({name}): {ratio:.2f}x raw/packed (bar: 1.667x)")
    assert ratio >= 1.667, f"{name} packed framing below the 40% reduction bar ({ratio:.2f}x)"

# The threaded e2e variant must be present in both baselines: its
# equality assertion against the batch verdict is what keeps the
# per-sample executor fan-out honest.
for name, doc in (("committed", base), ("fresh", fresh)):
    assert "verify_samples_e2e_mt" in doc, f"verify_samples_e2e_mt missing from {name} BENCH_verify"
    assert "verify_samples_e2e_v2" in doc, f"verify_samples_e2e_v2 missing from {name} BENCH_verify"
    assert "verify_samples_e2e_v3" in doc, f"verify_samples_e2e_v3 missing from {name} BENCH_verify"
print("verify_samples_e2e_{v2,v3,mt} present in committed and fresh baselines")

# --- Epoch pipeline: the overlapped executor keeps its modeled edge. ---
pool_base = json.load(open("BENCH_pool.json"))
pool_fresh = json.load(open("target/BENCH_pool.fresh.json"))
committed = {m["threads"]: m for m in pool_base["modeled"]}
s8 = committed[8]["overlapped_vs_scoped"]
print(f"committed modeled 8-thread overlapped vs scoped: {s8:.2f}x (bar: 2x)")
assert s8 >= 2.0, f"committed 8-thread modeled speedup {s8:.2f}x below the 2x bar"
# The smoke pool is intentionally tiny, so only sanity-gate the fresh run:
# the model must still show the overlapped pipeline ahead at 8 threads and
# level at 1 thread.
fresh8 = {m["threads"]: m for m in pool_fresh["modeled"]}[8]["overlapped_vs_scoped"]
fresh1 = {m["threads"]: m for m in pool_fresh["modeled"]}[1]["overlapped_vs_scoped"]
print(f"fresh smoke modeled: {fresh1:.2f}x at 1t, {fresh8:.2f}x at 8t")
assert fresh8 >= 1.2, f"fresh smoke 8-thread modeled speedup {fresh8:.2f}x lost the overlap edge"
assert 0.9 <= fresh1 <= 1.1, f"fresh smoke 1-thread pipelines diverged ({fresh1:.2f}x)"

# --- Wall-clock ratios: only meaningful when the host has real lanes.
# On a 1-hardware-thread host the overlapped runtime cannot beat serial
# (there is nothing to overlap onto), so ratio gating is skipped — the
# modeled section above is the scaling evidence there.
wall = {m["mode"]: m for m in pool_base["measured_wall"]}
wall_threads = min(m.get("host_hw_threads", 1) for m in pool_base["measured_wall"])
if wall_threads <= 1:
    print(f"measured_wall recorded on a {wall_threads}-thread host; skipping wall-clock ratio gate")
else:
    r = wall["overlapped_8t"]["epochs_per_s"] / wall["scoped"]["epochs_per_s"]
    print(f"measured wall ({wall_threads}-thread host): overlapped/scoped {r:.2f}x")
    assert r >= 1.0, f"overlapped runtime slower than scoped on a {wall_threads}-thread host ({r:.2f}x)"

# --- Pool-level packed framing: deterministic byte counts, so both the
# committed and the fresh smoke run carry the full gate.
for name, doc in (("committed", pool_base), ("fresh", pool_fresh)):
    w = doc["wire"]
    print(f"pool wire ({name}): v1 {w['v1_wire_bytes']} B → v3 {w['v3_wire_bytes']} B "
          f"({w['wire_reduction']:.1%} reduction, {w['v3_bytes_saved']} B saved)")
    assert w["detection_identical"], f"{name} v3 pool changed detection outcomes"
    assert w["v3_bytes_saved"] > 0, f"{name} packed framing saved nothing"
    assert w["wire_reduction"] >= 0.40, \
        f"{name} pool wire reduction {w['wire_reduction']:.1%} below the 40% bar"

# --- Socket transport: structure and positivity, committed and fresh.
# Absolute submissions/s and latency are host-dependent, so cross-host
# wall ratios are not gated — but every regime must show throughput,
# sane latency order statistics, and (under churn) ghost frames that
# really crossed the TCP wire and were rejected by the checksum.
for name, path in (("committed", "BENCH_net.json"), ("fresh", "target/BENCH_net.fresh.json")):
    doc = json.load(open(path))
    runs = {r["churn"]: r for r in doc["runs"]}
    assert set(runs) == {"ideal", "lossy", "harsh"}, \
        f"{name} BENCH_net regimes wrong: {set(runs)}"
    for regime, r in runs.items():
        assert r["submissions_per_s"] > 0, f"{name}/{regime}: no throughput"
        # Quantiles come from the log-bucketed net.epoch_latency histogram
        # (the same machinery `rpol status` reports), so they are bucket
        # upper bounds and must be monotone by construction.
        assert r["p99_epoch_latency_s"] >= r["p90_epoch_latency_s"] \
            >= r["p50_epoch_latency_s"] > 0, \
            f"{name}/{regime}: bad latency order statistics"
        assert r["pristine_submissions"] > 0, f"{name}/{regime}: nothing decoded"
    for regime in ("lossy", "harsh"):
        assert runs[regime]["corrupt_frames"] > 0, \
            f"{name}/{regime}: chaos regime put no ghosts on the wire"
    print(f"net ({name}): " + ", ".join(
        f"{k} {runs[k]['submissions_per_s']:.0f} sub/s p99 {runs[k]['p99_epoch_latency_s']:.3f}s"
        for k in ("ideal", "lossy", "harsh")))

    # Connection sweep: both reactor backends at every scale, storm
    # absorbed (pristine > 0 means every epoch completed over the wire).
    # The committed full run covers 64/256/1024 connections; the fresh
    # smoke covers 16/64, so the 1024 ratio gate binds only on the
    # committed artifact — where it is a same-host, same-run comparison.
    sc = doc["sweep_config"]
    for key in ("workers", "epochs", "reps", "behavior", "readiness_available"):
        assert key in sc, f"{name} sweep_config missing {key}"
    cells = {(c["backend"], c["connections"]): c for c in doc["sweep"]}
    totals = (64, 256, 1024) if name == "committed" else (16, 64)
    assert set(cells) == {(b, t) for b in ("scan", "readiness") for t in totals}, \
        f"{name} sweep cells wrong: {sorted(cells)}"
    for (backend, conns), c in sorted(cells.items(), key=lambda kv: kv[0][1]):
        assert c["submissions_per_s"] > 0, f"{name} sweep {backend}@{conns}: no throughput"
        assert c["pristine_submissions"] > 0, f"{name} sweep {backend}@{conns}: nothing decoded"
        assert c["idle_connections"] == conns - sc["workers"], \
            f"{name} sweep {backend}@{conns}: idle floor mismatch"
    if name == "committed":
        assert sc["readiness_available"], "committed baseline lacks the readiness backend"
        ratio = cells[("readiness", 1024)]["submissions_per_s"] \
            / cells[("scan", 1024)]["submissions_per_s"]
        assert ratio >= 3.0, \
            f"committed sweep: readiness@1024 only {ratio:.2f}x scan (gate: >=3x)"
        print(f"net sweep (committed): readiness@1024 is {ratio:.1f}x scan "
              f"({cells[('readiness', 1024)]['submissions_per_s']:.0f} vs "
              f"{cells[('scan', 1024)]['submissions_per_s']:.0f} sub/s)")

# --- Observability overhead (criterion, this host, same run): all three
# verify-path variants must be present, and attaching a recorder must not
# blow up the replay loop. Bars are loose because both sides were timed
# moments apart on a possibly noisy host: a *disabled* recorder (pure
# enabled() guards) may cost at most 25%, full recording at most 75%.
cases = {}
for line in open("target/bench_obs_overhead.txt"):
    parts = line.split()
    if "time:" in line and parts:
        cases[parts[0]] = float(parts[parts.index("time:") + 1])
for need in ("verify_samples_e2e_v2", "verify_samples_e2e_v2_obs_disabled",
             "verify_samples_e2e_v2_obs_enabled"):
    assert need in cases, f"criterion obs-overhead bench missing case {need}"
plain = cases["verify_samples_e2e_v2"]
off = cases["verify_samples_e2e_v2_obs_disabled"] / plain
on = cases["verify_samples_e2e_v2_obs_enabled"] / plain
print(f"obs overhead on verify: disabled {off:.3f}x, enabled {on:.3f}x of noop")
assert off <= 1.25, f"disabled recorder costs {off:.2f}x on the verify path (bar: 1.25x)"
assert on <= 1.75, f"enabled recorder costs {on:.2f}x on the verify path (bar: 1.75x)"

# --- Committee sharding at scale (DESIGN.md §15): the hierarchy's value
# claims are gated on *modeled per-node* numbers (single-thread costs,
# one sub-manager per committee, serial top tier), so — unlike the
# measured_wall section above — they hold even on a 1-hardware-thread
# host and are never skipped. The raw bench_wall_s fields are
# host-dependent and deliberately ungated.
scale_base = {s["workers"]: s for s in json.load(open("BENCH_scale.json"))["scales"]}
assert {100, 1_000, 10_000, 100_000} <= set(scale_base), \
    f"committed BENCH_scale scales wrong: {set(scale_base)}"
for n, s in scale_base.items():
    assert s["flat_epochs_per_s"] > 0 and s["hier_epochs_per_s"] > 0, f"scale {n}: no throughput"
    assert s["verdicts"] == n, f"scale {n}: not every worker judged"
    assert s["audits"] > 0, f"scale {n}: top tier audited nothing"
    assert s["audit_mismatches"] == 0, f"scale {n}: honest sub-managers mismatched"
s10k = scale_base[10_000]["modeled_speedup"]
print(f"scale (committed): 10k-worker hierarchical speedup {s10k:.1f}x (bar: 5x)")
assert s10k >= 5.0, f"committed 10k speedup {s10k:.1f}x below the 5x bar"
# Peak commitment memory: flat is linear in the roster by construction;
# the streaming hierarchy must stay near the committee size — across the
# 100x jump from 10³ to 10⁵ workers its peak may grow at most 10x.
flat_slope = scale_base[100_000]["flat_peak_bytes"] / scale_base[1_000]["flat_peak_bytes"]
hier_slope = scale_base[100_000]["hier_peak_bytes"] / scale_base[1_000]["hier_peak_bytes"]
print(f"scale (committed): 10³→10⁵ peak-bytes slope flat {flat_slope:.0f}x, hier {hier_slope:.1f}x")
assert flat_slope >= 50, f"flat peak no longer linear ({flat_slope:.0f}x over 100x workers)"
assert hier_slope <= 10, f"hierarchical peak not sub-linear ({hier_slope:.1f}x over 100x workers)"

# Fresh smoke covers the two smallest scales: the machinery must still
# judge everyone, audit cleanly, and show the committee win emerging.
scale_fresh = {s["workers"]: s for s in json.load(open("target/BENCH_scale.fresh.json"))["scales"]}
assert {100, 1_000} <= set(scale_fresh), f"fresh BENCH_scale scales wrong: {set(scale_fresh)}"
for n, s in scale_fresh.items():
    assert s["flat_epochs_per_s"] > 0 and s["hier_epochs_per_s"] > 0, f"fresh {n}: no throughput"
    assert s["verdicts"] == n, f"fresh {n}: not every worker judged"
    assert s["audit_mismatches"] == 0, f"fresh {n}: honest sub-managers mismatched"
fresh1k = scale_fresh[1_000]
print(f"scale (fresh smoke): 1k-worker speedup {fresh1k['modeled_speedup']:.1f}x, "
      f"peak {fresh1k['flat_peak_bytes']} -> {fresh1k['hier_peak_bytes']} B")
assert fresh1k["modeled_speedup"] >= 1.2, \
    f"fresh 1k speedup {fresh1k['modeled_speedup']:.1f}x lost the committee win"
assert fresh1k["hier_peak_bytes"] < fresh1k["flat_peak_bytes"], \
    "fresh 1k hierarchical peak not below flat"
EOF
echo "no regression vs committed BENCH_verify.json / BENCH_pool.json / BENCH_net.json / BENCH_scale.json"
