#!/usr/bin/env bash
# Regression gate for the verification data plane and the epoch pipeline.
#
# Re-measures both benchmarks in smoke mode (BENCH_SMOKE=1: smaller
# shapes, shorter timing budget — the same regimes at a fraction of the
# wall-clock) and fails if a headline number fell too far below its
# committed baseline (BENCH_verify.json, BENCH_pool.json). Speedup
# *ratios* are compared, not absolute ns, so the gate is robust to host
# differences.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f BENCH_verify.json ]; then
    echo "no committed BENCH_verify.json baseline; run scripts/bench_verify.sh first" >&2
    exit 1
fi
if [ ! -f BENCH_pool.json ]; then
    echo "no committed BENCH_pool.json baseline; run scripts/bench_pool.sh first" >&2
    exit 1
fi

export CARGO_NET_OFFLINE=true
mkdir -p target
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin verify_bench -- target/BENCH_verify.fresh.json
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin pool_bench -- target/BENCH_pool.fresh.json

python3 - <<'EOF'
import json

# --- Verification data plane: vectorization speedups hold. ---
base = {r["op"]: r for r in json.load(open("BENCH_verify.json"))}
fresh = {r["op"]: r for r in json.load(open("target/BENCH_verify.fresh.json"))}
for op in ("commit_hash_batch", "lsh_digest_gemm_1t"):
    b = base[op]["speedup_vs_scalar"]
    f = fresh[op]["speedup_vs_scalar"]
    ratio = f / b
    print(f"{op}: baseline {b:.2f}x, fresh {f:.2f}x ({ratio:.2f} of baseline)")
    assert ratio >= 0.8, f"{op} speedup regressed >20% vs committed baseline"

# The threaded e2e variant must be present in both baselines: its
# equality assertion against the batch verdict is what keeps the
# per-sample executor fan-out honest.
for name, doc in (("committed", base), ("fresh", fresh)):
    assert "verify_samples_e2e_mt" in doc, f"verify_samples_e2e_mt missing from {name} BENCH_verify"
    assert "verify_samples_e2e_v2" in doc, f"verify_samples_e2e_v2 missing from {name} BENCH_verify"
print("verify_samples_e2e_mt present in committed and fresh baselines")

# --- Epoch pipeline: the overlapped executor keeps its modeled edge. ---
pool_base = json.load(open("BENCH_pool.json"))
pool_fresh = json.load(open("target/BENCH_pool.fresh.json"))
committed = {m["threads"]: m for m in pool_base["modeled"]}
s8 = committed[8]["overlapped_vs_scoped"]
print(f"committed modeled 8-thread overlapped vs scoped: {s8:.2f}x (bar: 2x)")
assert s8 >= 2.0, f"committed 8-thread modeled speedup {s8:.2f}x below the 2x bar"
# The smoke pool is intentionally tiny, so only sanity-gate the fresh run:
# the model must still show the overlapped pipeline ahead at 8 threads and
# level at 1 thread.
fresh8 = {m["threads"]: m for m in pool_fresh["modeled"]}[8]["overlapped_vs_scoped"]
fresh1 = {m["threads"]: m for m in pool_fresh["modeled"]}[1]["overlapped_vs_scoped"]
print(f"fresh smoke modeled: {fresh1:.2f}x at 1t, {fresh8:.2f}x at 8t")
assert fresh8 >= 1.2, f"fresh smoke 8-thread modeled speedup {fresh8:.2f}x lost the overlap edge"
assert 0.9 <= fresh1 <= 1.1, f"fresh smoke 1-thread pipelines diverged ({fresh1:.2f}x)"
EOF
echo "no regression vs committed BENCH_verify.json / BENCH_pool.json"
