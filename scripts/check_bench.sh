#!/usr/bin/env bash
# Regression gate for the verification data plane.
#
# Re-measures the benchmark in smoke mode (BENCH_SMOKE=1: smaller shapes,
# shorter timing budget — the same memory-bound regime at a fraction of the
# wall-clock) and fails if either headline speedup fell more than 20% below
# the committed BENCH_verify.json baseline. Speedup *ratios* are compared,
# not absolute ns, so the gate is robust to host differences.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f BENCH_verify.json ]; then
    echo "no committed BENCH_verify.json baseline; run scripts/bench_verify.sh first" >&2
    exit 1
fi

export CARGO_NET_OFFLINE=true
mkdir -p target
BENCH_SMOKE=1 cargo run --release -p rpol-bench --bin verify_bench -- target/BENCH_verify.fresh.json

python3 - <<'EOF'
import json
base = {r["op"]: r for r in json.load(open("BENCH_verify.json"))}
fresh = {r["op"]: r for r in json.load(open("target/BENCH_verify.fresh.json"))}
for op in ("commit_hash_batch", "lsh_digest_gemm_1t"):
    b = base[op]["speedup_vs_scalar"]
    f = fresh[op]["speedup_vs_scalar"]
    ratio = f / b
    print(f"{op}: baseline {b:.2f}x, fresh {f:.2f}x ({ratio:.2f} of baseline)")
    assert ratio >= 0.8, f"{op} speedup regressed >20% vs committed baseline"
EOF
echo "no regression vs committed BENCH_verify.json"
