#!/usr/bin/env bash
# Runs the GEMM benchmark suite and emits BENCH_gemm.json at the repo root.
#
# The JSON records, per (op, shape): ns/iter, GFLOP/s, and speedup over the
# retained naive reference kernel. The blocked kernel must clear a 3x
# single-thread speedup on 256x256x256 (checked below); the criterion
# benches (`cargo bench -p rpol-bench --bench gemm`) give finer-grained
# numbers when needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin gemm_bench -- BENCH_gemm.json

# Acceptance gate: >= 3x single-thread speedup on the 256^3 shape.
python3 - <<'EOF'
import json
recs = json.load(open("BENCH_gemm.json"))
for r in recs:
    if r["op"] == "matmul_blocked_1t" and r["shape"] == "256x256x256":
        s = r["speedup_vs_naive"]
        print(f"256^3 single-thread speedup: {s:.2f}x")
        assert s >= 3.0, f"blocked kernel speedup {s:.2f}x below the 3x bar"
        break
else:
    raise SystemExit("256x256x256 blocked record missing")
EOF
echo "BENCH_gemm.json written"
