#!/usr/bin/env bash
# Runs the socket-transport benchmark and emits BENCH_net.json at the
# repo root.
#
# The JSON records sustained pristine submissions/s and p50/p90/p99
# epoch-completion latency (deterministic quantiles of the server's
# log-bucketed net.epoch_latency histogram — the same machinery `rpol
# status` reports) of the loopback TCP harness (real server,
# real worker-client threads, chaos proxy on both ends) under three
# churn regimes: ideal, lossy, and harsh. Absolute rates are
# host-dependent; scripts/check_bench.sh gates structure and positivity
# plus the churn regimes actually putting ghost frames on the wire.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin net_bench -- BENCH_net.json

python3 - <<'EOF'
import json
doc = json.load(open("BENCH_net.json"))
runs = {r["churn"]: r for r in doc["runs"]}
assert set(runs) == {"ideal", "lossy", "harsh"}, f"unexpected regimes: {set(runs)}"
for name, r in runs.items():
    assert r["submissions_per_s"] > 0, f"{name}: no throughput"
    assert r["p99_epoch_latency_s"] >= r["p90_epoch_latency_s"] \
        >= r["p50_epoch_latency_s"] > 0, f"{name}: bad latency stats"
for name in ("lossy", "harsh"):
    assert runs[name]["corrupt_frames"] > 0, f"{name}: no ghosts crossed the wire"
print("BENCH_net.json structure OK:")
for name in ("ideal", "lossy", "harsh"):
    r = runs[name]
    print(f"  {name}: {r['submissions_per_s']:.1f} sub/s, "
          f"p99 epoch {r['p99_epoch_latency_s']:.3f}s, {r['corrupt_frames']} corrupt frames")
EOF
echo "BENCH_net.json written"
