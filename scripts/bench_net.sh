#!/usr/bin/env bash
# Runs the socket-transport benchmark and emits BENCH_net.json at the
# repo root.
#
# The JSON records sustained pristine submissions/s and p50/p90/p99
# epoch-completion latency (deterministic quantiles of the server's
# log-bucketed net.epoch_latency histogram — the same machinery `rpol
# status` reports) of the loopback TCP harness (real server,
# real worker-client threads, chaos proxy on both ends) under three
# churn regimes: ideal, lossy, and harsh. Absolute rates are
# host-dependent; scripts/check_bench.sh gates structure and positivity
# plus the churn regimes actually putting ghost frames on the wire.
#
# It also records the reactor connection sweep: scan vs readiness at
# 64/256/1024 concurrent connections, each cell aggregating three fresh
# connection storms. The readiness-vs-scan ratio at 1024 connections is
# asserted >= 3x here at generation time (same host, same run) so a bad
# baseline is never committed. The 1024-connection cells need a file
# descriptor ceiling above ~2100, hence the ulimit below.
set -euo pipefail
cd "$(dirname "$0")/.."

# Sockets for the 1024-connection sweep cells: server + client + idle
# floor on both ends. Best effort — if the hard limit forbids it, the
# bench fails loudly on connect rather than silently shrinking.
ulimit -n 20000 2>/dev/null || true

export CARGO_NET_OFFLINE=true
cargo run --release -p rpol-bench --bin net_bench -- BENCH_net.json

python3 - <<'EOF'
import json
doc = json.load(open("BENCH_net.json"))
runs = {r["churn"]: r for r in doc["runs"]}
assert set(runs) == {"ideal", "lossy", "harsh"}, f"unexpected regimes: {set(runs)}"
for name, r in runs.items():
    assert r["submissions_per_s"] > 0, f"{name}: no throughput"
    assert r["p99_epoch_latency_s"] >= r["p90_epoch_latency_s"] \
        >= r["p50_epoch_latency_s"] > 0, f"{name}: bad latency stats"
for name in ("lossy", "harsh"):
    assert runs[name]["corrupt_frames"] > 0, f"{name}: no ghosts crossed the wire"
print("BENCH_net.json structure OK:")
for name in ("ideal", "lossy", "harsh"):
    r = runs[name]
    print(f"  {name}: {r['submissions_per_s']:.1f} sub/s, "
          f"p99 epoch {r['p99_epoch_latency_s']:.3f}s, {r['corrupt_frames']} corrupt frames")

sc = doc["sweep_config"]
cells = {(c["backend"], c["connections"]): c for c in doc["sweep"]}
assert set(cells) == {(b, t) for b in ("scan", "readiness") for t in (64, 256, 1024)}, \
    f"sweep cells wrong: {sorted(cells)}"
for (backend, conns), c in sorted(cells.items(), key=lambda kv: kv[0][1]):
    assert c["pristine_submissions"] > 0, f"sweep {backend}@{conns}: nothing decoded"
    print(f"  sweep {backend}@{conns}: {c['submissions_per_s']:.1f} sub/s "
          f"({c['wall_s']:.2f}s over {sc['reps']} storms)")
assert sc["readiness_available"], "readiness backend unavailable on this host"
ratio = cells[("readiness", 1024)]["submissions_per_s"] \
    / cells[("scan", 1024)]["submissions_per_s"]
assert ratio >= 3.0, (
    f"readiness@1024 only {ratio:.2f}x scan (gate: >=3x) — the storm outcome "
    "is scheduler-sensitive; rerun on an otherwise idle host")
print(f"  sweep gate: readiness@1024 is {ratio:.1f}x scan (>=3x required)")
EOF
echo "BENCH_net.json written"
