#!/usr/bin/env bash
# Smoke test for the observability pipeline.
#
# Runs a 2-epoch faulty pool with --trace-out/--metrics-out, then uses
# `rpol trace-check` to assert the trace parses line-by-line through
# crates/json and contains the required span/event names. A second run
# with the same seed must reproduce the trace byte-for-byte (the
# determinism contract of DESIGN.md §11).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
mkdir -p target
TRACE=target/trace_smoke.jsonl
TRACE2=target/trace_smoke.again.jsonl
METRICS=target/trace_smoke.metrics.json

run_pool() {
    cargo run --release -q -p rpol-cli --bin rpol -- pool \
        --workers=3 --adversaries=1 --epochs=2 --faults=lossy \
        --trace-out="$1" --metrics-out="$METRICS" >/dev/null
}

run_pool "$TRACE"

cargo run --release -q -p rpol-cli --bin rpol -- trace-check \
    --file="$TRACE" \
    --require=rpol.pool.epoch,rpol.worker.train_epoch,rpol.verify.worker,rpol.verify.replay_segment,rpol.transport.exchange,rpol.pool.phase_time

[ -s "$METRICS" ] || { echo "metrics file missing or empty" >&2; exit 1; }
grep -q '"rpol.pool.epochs":2' "$METRICS" || {
    echo "metrics missing rpol.pool.epochs=2" >&2
    exit 1
}

run_pool "$TRACE2"
cmp -s "$TRACE" "$TRACE2" || {
    echo "same-seed traces differ: determinism contract broken" >&2
    exit 1
}

echo "trace smoke OK: $(wc -l < "$TRACE") events, deterministic, metrics exported"
