#!/usr/bin/env bash
# Smoke test for the observability pipeline.
#
# Runs a 2-epoch faulty pool with --trace-out/--metrics-out, then uses
# `rpol trace-check` to assert the trace parses line-by-line through
# crates/json and contains the required span/event names. A second run
# with the same seed must reproduce the trace byte-for-byte (the
# determinism contract of DESIGN.md §11). A third run on the persistent
# executor (--parallel) must export the executor's scheduling metrics —
# task counts and the queue-depth peak (DESIGN.md §12); its trace is
# *not* byte-compared (only the sorted event multiset is deterministic
# under work stealing, which the rpol test suite asserts).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
mkdir -p target
TRACE=target/trace_smoke.jsonl
TRACE2=target/trace_smoke.again.jsonl
METRICS=target/trace_smoke.metrics.json

run_pool() {
    cargo run --release -q -p rpol-cli --bin rpol -- pool \
        --workers=3 --adversaries=1 --epochs=2 --faults=lossy \
        --trace-out="$1" --metrics-out="$METRICS" >/dev/null
}

run_pool "$TRACE"

cargo run --release -q -p rpol-cli --bin rpol -- trace-check \
    --file="$TRACE" \
    --require=rpol.pool.epoch,rpol.worker.train_epoch,rpol.verify.worker,rpol.verify.replay_segment,rpol.transport.exchange,rpol.pool.phase_time

[ -s "$METRICS" ] || { echo "metrics file missing or empty" >&2; exit 1; }
grep -q '"rpol.pool.epochs":2' "$METRICS" || {
    echo "metrics missing rpol.pool.epochs=2" >&2
    exit 1
}

run_pool "$TRACE2"
cmp -s "$TRACE" "$TRACE2" || {
    echo "same-seed traces differ: determinism contract broken" >&2
    exit 1
}

# Executor queue-depth sanity: a --parallel run schedules every phase on
# the persistent pool, so its metrics must include the executor counters
# and a non-zero queue-depth peak gauge.
TRACE_PAR=target/trace_smoke.parallel.jsonl
METRICS_PAR=target/trace_smoke.parallel.metrics.json
RPOL_EXEC_THREADS=4 cargo run --release -q -p rpol-cli --bin rpol -- pool \
    --workers=3 --adversaries=1 --epochs=2 --parallel \
    --trace-out="$TRACE_PAR" --metrics-out="$METRICS_PAR" >/dev/null
cargo run --release -q -p rpol-cli --bin rpol -- trace-check \
    --file="$TRACE_PAR" \
    --require=rpol.pool.epoch,rpol.worker.train_epoch,rpol.verify.worker,rpol.verify.replay_segment
grep -q '"exec.tasks":' "$METRICS_PAR" || {
    echo "parallel metrics missing exec.tasks counter" >&2
    exit 1
}
grep -q '"exec.threads":4' "$METRICS_PAR" || {
    echo "parallel metrics missing exec.threads=4 gauge" >&2
    exit 1
}
python3 - "$METRICS_PAR" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
gauges = m.get("gauges", m)
counters = m.get("counters", m)
peak = gauges.get("exec.queue_depth_peak")
tasks = counters.get("exec.tasks")
assert tasks and tasks > 0, f"exec.tasks should be positive, got {tasks}"
assert peak is not None and peak >= 1, f"exec.queue_depth_peak should be >= 1, got {peak}"
print(f"executor sanity: {tasks} tasks, queue-depth peak {peak:.0f}")
EOF

echo "trace smoke OK: $(wc -l < "$TRACE") events, deterministic, metrics exported"
