#!/usr/bin/env bash
# Distributed-observability end-to-end (DESIGN.md §16): a real manager
# process and two real worker processes, each writing its own
# --trace-out JSONL and the manager a --profile-out flamegraph-folded
# profile; the live `rpol status` plane is polled mid-run; afterwards
# the per-process traces are stitched with `rpol stitch` and checked
# structurally (line validity, required cross-process span/event names,
# per-line proc tags, conservation of events).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
cargo build --release -p rpol-cli

RPOL=./target/release/rpol
OUT=target/obs_e2e
rm -rf "$OUT"
mkdir -p "$OUT"

ROSTER=(--workers=2 --adversaries=0 --epochs=1 --scheme=v2)

"$RPOL" serve --listen=127.0.0.1:0 "${ROSTER[@]}" \
    --trace-out="$OUT/manager.jsonl" --profile-out="$OUT/manager.folded" \
    >"$OUT/server.out" 2>"$OUT/server.err" &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT

# The server prints "listening on 127.0.0.1:PORT" once bound.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\).*/\1/p' "$OUT/server.err" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "obs e2e: server never bound" >&2; exit 1; }

# Live status probe before any worker joins: the control plane answers
# unauthenticated connections, and the report is internally consistent
# (counter map == NetStats block, field for field).
"$RPOL" status --connect="$ADDR" --json >"$OUT/status0.json"
python3 - "$OUT/status0.json" <<'EOF'
import json, sys
v = json.load(open(sys.argv[1]))
assert v["protocol"] >= 1, "bad protocol"
assert v["progress"]["epochs_total"] == 1, "wrong epoch plan"
for name, want in v["counters"].items():
    field = name.removeprefix("net.")
    assert v["net"][field] == want, f"{name}: registry {want} != NetStats {v['net'][field]}"
print(f"status plane OK: {len(v['counters'])} counters consistent, "
      f"{len(v['connections'])} connections tracked")
EOF
# The rendered table must show the same plane without --json. (Capture
# first, grep the file: grep -q on a pipe exits at first match and the
# resulting SIGPIPE would fail the pipeline under pipefail.)
"$RPOL" status --connect="$ADDR" >"$OUT/status0.txt"
grep -q "^progress: epoch 0/1" "$OUT/status0.txt" \
    || { echo "obs e2e: rendered status missing progress line" >&2; exit 1; }
grep -q "net.frames_in" "$OUT/status0.txt" \
    || { echo "obs e2e: rendered status missing counter table" >&2; exit 1; }

for id in 0 1; do
    "$RPOL" worker --connect="$ADDR" --id=$id "${ROSTER[@]}" \
        --trace-out="$OUT/worker-$id.jsonl" \
        >"$OUT/worker-$id.out" 2>&1 &
    eval "WORKER${id}_PID=\$!"
done

# Poll the status plane while the epoch runs; probes are chaos-exempt so
# they cannot perturb the run. The server may finish between polls —
# connection errors after the first success are expected.
POLLS=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    if "$RPOL" status --connect="$ADDR" --json >"$OUT/status_live.json" 2>/dev/null; then
        POLLS=$((POLLS + 1))
    fi
    sleep 0.2
done
echo "obs e2e: $POLLS successful live status polls"

wait "$WORKER0_PID" || { echo "obs e2e: worker 0 failed" >&2; exit 1; }
wait "$WORKER1_PID" || { echo "obs e2e: worker 1 failed" >&2; exit 1; }
wait "$SERVER_PID" || { echo "obs e2e: server failed" >&2; exit 1; }
trap - EXIT

for f in manager.jsonl worker-0.jsonl worker-1.jsonl manager.folded; do
    [ -s "$OUT/$f" ] || { echo "obs e2e: $f missing or empty" >&2; exit 1; }
done

# Stitch the three per-process traces into one causally-ordered timeline.
"$RPOL" stitch \
    --traces="manager=$OUT/manager.jsonl,worker-0=$OUT/worker-0.jsonl,worker-1=$OUT/worker-1.jsonl" \
    --out="$OUT/merged.jsonl"

# Structural golden: every line parses, the cross-process spine is there.
"$RPOL" trace-check --file="$OUT/merged.jsonl" \
    --require=rpol.server.epoch,rpol.client.train,rpol.server.ingest_submission,rpol.pool.verification

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
per = {name: [json.loads(l) for l in open(f"{out}/{name}.jsonl")]
       for name in ("manager", "worker-0", "worker-1")}
merged = [json.loads(l) for l in open(f"{out}/merged.jsonl")]
# Conservation: the merge is a permutation tagged with proc, nothing
# dropped, nothing invented.
assert len(merged) == sum(len(v) for v in per.values()), "stitch lost or invented events"
assert all(e["proc"] in per for e in merged), "unknown proc tag in merged trace"
for name, events in per.items():
    assert sum(e["proc"] == name for e in merged) == len(events), f"{name}: count mismatch"
# Causal order: the manager's epoch span precedes all client train spans
# (their logical clocks witnessed the manager's watermark on the wire).
first_epoch = next(i for i, e in enumerate(merged) if e["name"] == "rpol.server.epoch")
first_train = next(i for i, e in enumerate(merged) if e["name"] == "rpol.client.train")
assert first_epoch < first_train, "client work ordered before the epoch that caused it"
# Cross-process edges: client spans name a nonzero remote parent span.
trains = [e for e in merged if e["name"] == "rpol.client.train"]
assert len(trains) == 2, f"expected 2 train spans, got {len(trains)}"
assert all(t["f"]["parent"] > 0 for t in trains), "client span without a remote parent"
print(f"stitch OK: {len(merged)} events from 3 processes, causally ordered")
# Flamegraph-folded profile: `path;to;span <ticks>` lines, server spans present.
folded = open(f"{out}/manager.folded").read().splitlines()
assert folded, "empty folded profile"
for line in folded:
    path, ticks = line.rsplit(" ", 1)
    assert path and int(ticks) >= 0, f"bad folded line: {line!r}"
assert any(l.startswith("rpol.server.epoch") for l in folded), \
    "profile missing the server epoch root"
print(f"profile OK: {len(folded)} collapsed stacks")
EOF

echo "obs e2e OK: multi-process trace stitched, status plane live, profile folded"
