//! Pins the trainer's epoch checkpoint digests to the values produced by
//! the original reference kernels.
//!
//! RPoL's commitment protocol hashes the exact `f32` bytes of model
//! checkpoints, so the GEMM/im2col lowering in `rpol-tensor::gemm` and
//! `rpol-nn` is only admissible if it is *bitwise* invisible to training.
//! These digests were recorded from the pre-lowering loop nests; any
//! change to reduction order anywhere in the math stack fails this test.
//! Also exercised with multiple GEMM thread counts, since a checkpoint
//! digest must not depend on the host's parallelism.

use rpol_repro::crypto::sha256::sha256_f32;
use rpol_repro::nn::data::SyntheticImages;
use rpol_repro::rpol::tasks::{ModelArch, TaskConfig};
use rpol_repro::rpol::trainer::LocalTrainer;
use rpol_repro::sim::gpu::{GpuModel, NoiseInjector};
use rpol_repro::tensor::gemm::set_default_threads;
use rpol_repro::tensor::rng::Pcg32;

/// Digests recorded from the seed kernels (naive matmul, direct conv).
const RESNET_DIGESTS: [&str; 4] = [
    "6123028feb8a892d2af32e631bd17c733de285604e22436f6d77ea3111e59ab0",
    "89ab40a05dabb45bd4821c79a93bc9be78ff114050575260ba6d786bdbe5f32f",
    "a1d567a1e47e23d5f04c1a013c888f8c6029b6f8aa456dc060617ab6d6b35a0e",
    "84348c4a61dca9f2e2982a38098cc8da393b275cf734e621b24a8e8c402ebce1",
];
const VGG_DIGESTS: [&str; 4] = [
    "6dda9b55a8a904b6850c9fb4fb66b8dad0a7dcc89572dd0b204c8450c9be2038",
    "757b2f20363f9905b69da42d061a540eb655d9ff6f202584d470b8199e376dbb",
    "887c8de393fb0023b079f742192abf3350728aaf4436181eab8550960c06493e",
    "c6d37a3332dcc3ba3a12a2eee627245013c1faeeb7b9f029431a5a52fa0d3244",
];

fn epoch_digests(arch: ModelArch) -> Vec<String> {
    let mut cfg = TaskConfig::tiny();
    cfg.arch = arch;
    let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
    let mut model = cfg.build_model();
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 5));
    let trace = trainer.run_epoch(&mut model, 7, 6);
    trace
        .checkpoints
        .iter()
        .map(|c| sha256_f32(c).to_hex())
        .collect()
}

#[test]
fn resnet_epoch_digests_match_seed_kernels() {
    for threads in [1, 4] {
        set_default_threads(threads);
        assert_eq!(
            epoch_digests(ModelArch::MiniResNet18),
            RESNET_DIGESTS,
            "with {threads} GEMM threads"
        );
    }
    set_default_threads(1);
}

#[test]
fn vgg_epoch_digests_match_seed_kernels() {
    assert_eq!(epoch_digests(ModelArch::MiniVgg16), VGG_DIGESTS);
}
