//! Fault-tolerance acceptance tests: the pool must survive a lossy,
//! crash-prone transport — completing every epoch, never rejecting an
//! honest worker over channel noise, quarantining (not punishing) dead
//! links, and reproducing bit-identical reports from the same fault seed.

use rpol_repro::rpol::adversary::WorkerBehavior;
use rpol_repro::rpol::pool::{MiningPool, PoolConfig, PoolReport, Scheme};
use rpol_repro::rpol::transport::{FaultConfig, FaultProfile, RetryPolicy};
use rpol_repro::sim::NetworkModel;

fn lossy_config(scheme: Scheme, seed: u64) -> PoolConfig {
    PoolConfig::tiny_demo(scheme).with_faults(FaultConfig::lossy(seed))
}

/// Everything deterministic about a run, for comparing two same-seed
/// executions (wall-clock seconds are the only nondeterministic field).
fn fingerprint(report: &PoolReport) -> String {
    report
        .epochs
        .iter()
        .map(|e| {
            format!(
                "{:?}|{}|{:?}\n",
                e.report, e.test_accuracy, e.transport_time
            )
        })
        .collect()
}

#[test]
fn lossy_pool_completes_with_zero_honest_rejections() {
    for scheme in [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2] {
        let mut pool = MiningPool::new(
            lossy_config(scheme, 0xFA_17),
            vec![WorkerBehavior::Honest; 3],
        );
        let report = pool.run();
        assert_eq!(report.epochs.len(), 2, "{scheme}: epochs missing");
        assert_eq!(report.rejections(), 0, "{scheme}: honest worker rejected");
        assert_eq!(
            report.quarantine_events(),
            0,
            "{scheme}: healthy link quarantined"
        );
        let totals = report.transport_totals();
        assert!(totals.exchanges > 0, "{scheme}: no transport traffic");
        assert_eq!(totals.failures, 0, "{scheme}: lossy link exhausted retries");
        // 10% drop + 2% corruption across dozens of exchanges: the retry
        // machinery must actually have fired.
        assert!(totals.retries > 0, "{scheme}: no retries under 10% drop");
        assert!(totals.wire_bytes > 0);
    }
}

#[test]
fn crashed_worker_is_quarantined_and_uncredited() {
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::CrashAt {
            epoch: 0,
            after_steps: 2,
        },
        WorkerBehavior::Honest,
    ];
    let mut pool = MiningPool::new(lossy_config(Scheme::RPoLv2, 0xC0A5), behaviors);
    let report = pool.run();

    // Every epoch still completes, and nobody is *rejected*: a crash is a
    // fault, not an attack.
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(report.rejections(), 0, "crash treated as cheating");
    // The crashed worker is quarantined in its crash epoch (received the
    // task, never submitted) and in every epoch after (link dead).
    assert!(report.quarantined_throughout(1), "{report:#?}");
    for e in &report.epochs {
        assert!(!e.report.accepted.contains(&1));
        // The survivors still aggregate.
        assert_eq!(e.report.accepted, vec![0, 2]);
    }
    // No credit accrues to a silent worker.
    let crashed = &pool.workers()[1];
    assert_eq!(pool.manager().contributions().credits(&crashed.address), 0);
    for survivor in [0usize, 2] {
        let w = &pool.workers()[survivor];
        assert_eq!(
            pool.manager().contributions().credits(&w.address),
            report.epochs.len() as u64,
            "survivor {survivor} lost credit to the crash"
        );
    }
}

#[test]
fn same_fault_seed_reproduces_identical_reports() {
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::CrashAt {
            epoch: 1,
            after_steps: 0,
        },
        WorkerBehavior::Straggler { slowdown: 3.0 },
    ];
    let run =
        |seed: u64| MiningPool::new(lossy_config(Scheme::RPoLv2, seed), behaviors.clone()).run();
    let a = run(7);
    let b = run(7);
    assert_eq!(fingerprint(&a), fingerprint(&b), "same seed diverged");
    // A different fault seed draws different faults (retry counts shift)
    // while honest workers still survive.
    let c = run(8);
    assert_eq!(c.rejections(), 0);
    assert_ne!(
        a.transport_totals(),
        c.transport_totals(),
        "fault seed had no effect"
    );
}

#[test]
fn parallel_faulty_run_matches_serial_exactly() {
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::CrashAt {
            epoch: 1,
            after_steps: 1,
        },
    ];
    let serial = MiningPool::new(lossy_config(Scheme::RPoLv2, 0x9E), behaviors.clone()).run();
    let parallel = MiningPool::new(lossy_config(Scheme::RPoLv2, 0x9E), behaviors).run_parallel();
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "fault injection depends on scheduling"
    );
}

#[test]
fn moderate_straggler_survives_extreme_straggler_quarantined() {
    // 4× slowdown: retries absorb the latency, the worker stays credited.
    let mild = MiningPool::new(
        lossy_config(Scheme::RPoLv1, 3),
        vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Straggler { slowdown: 4.0 },
        ],
    )
    .run();
    assert_eq!(mild.rejections(), 0);
    assert_eq!(mild.quarantine_events(), 0, "mild straggler quarantined");

    // A slowdown pushing every exchange past the timeout: the worker is
    // quarantined each epoch but the pool still finishes.
    let config = PoolConfig::tiny_demo(Scheme::RPoLv1).with_faults(FaultConfig {
        profile: FaultProfile::ideal(),
        policy: RetryPolicy::default(),
        net: NetworkModel::paper_default(),
        seed: 3,
    });
    let extreme = MiningPool::new(
        config,
        vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Straggler { slowdown: 1e7 },
        ],
    )
    .run();
    assert_eq!(extreme.epochs.len(), 2, "pool hung on the straggler");
    assert_eq!(extreme.rejections(), 0, "straggler treated as cheating");
    assert!(extreme.quarantined_throughout(1), "{extreme:#?}");
    assert!(extreme.transport_totals().timeouts > 0);
}

#[test]
fn adversary_still_rejected_not_quarantined_under_faults() {
    let behaviors = vec![WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious];
    let report = MiningPool::new(lossy_config(Scheme::RPoLv1, 0xBAD), behaviors).run();
    for e in &report.epochs {
        assert!(
            e.report.rejected.contains(&1),
            "replayer escaped verification: {:?}",
            e.report
        );
        assert!(e.report.accepted.contains(&0), "honest worker lost");
        assert!(e.report.quarantined.is_empty());
    }
}

#[test]
fn harsh_network_still_terminates() {
    // 25% drop / 10% corruption: retries may exhaust and quarantine
    // workers, but the run must terminate with a complete report and
    // never convict anyone of cheating.
    let config = PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(FaultConfig {
        profile: FaultProfile::harsh(),
        policy: RetryPolicy::default(),
        net: NetworkModel::paper_default(),
        seed: 11,
    });
    let report = MiningPool::new(config, vec![WorkerBehavior::Honest; 3]).run();
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(report.rejections(), 0, "honest worker convicted by noise");
    for e in &report.epochs {
        let covered = e.report.accepted.len() + e.report.quarantined.len();
        assert_eq!(covered, 3, "worker unaccounted for: {:?}", e.report);
    }
}
