//! End-to-end determinism: the whole protocol is a pure function of its
//! seeds. This is not a nicety — RPoL's verification *depends* on the
//! manager being able to reproduce worker computations exactly up to
//! injected hardware noise, so any nondeterminism (hash ordering, thread
//! scheduling, platform floats) would silently break soundness.

use rpol_repro::rpol::adversary::WorkerBehavior;
use rpol_repro::rpol::pool::{MiningPool, PoolConfig, PoolReport, Scheme};

fn behaviors() -> Vec<WorkerBehavior> {
    vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::adv2_default(),
        WorkerBehavior::ReplayPrevious,
    ]
}

fn fingerprint(report: &PoolReport) -> (Vec<u32>, Vec<Vec<usize>>, u64, u64) {
    (
        report
            .accuracy_curve()
            .iter()
            .map(|a| a.to_bits())
            .collect(),
        report
            .epochs
            .iter()
            .map(|e| e.report.rejected.clone())
            .collect(),
        report.total_comm_bytes(),
        report.worker_storage_bytes,
    )
}

#[test]
fn identical_seeds_identical_runs() {
    let run = || {
        let mut pool = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors());
        pool.run()
    };
    assert_eq!(fingerprint(&run()), fingerprint(&run()));
}

#[test]
fn parallel_and_serial_runs_are_bit_identical() {
    let serial = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors()).run();
    let parallel =
        MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors()).run_parallel();
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn different_seeds_different_runs() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    let a = MiningPool::new(config, behaviors()).run();
    config.seed ^= 1;
    let b = MiningPool::new(config, behaviors()).run();
    // Different data draws and nonces: the accuracy trajectories differ.
    assert_ne!(fingerprint(&a).0, fingerprint(&b).0);
}

#[test]
fn determinism_holds_across_all_schemes() {
    for scheme in [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2] {
        let run = || {
            let mut pool = MiningPool::new(PoolConfig::tiny_demo(scheme), behaviors());
            pool.run()
        };
        assert_eq!(
            fingerprint(&run()),
            fingerprint(&run()),
            "{scheme} is nondeterministic"
        );
    }
}

#[test]
fn json_export_is_reproducible() {
    // The exported report (minus wall-clock seconds, which are real time)
    // is identical across runs — operators can diff run artifacts.
    let export = || {
        let mut pool = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors());
        let mut report = pool.run();
        for epoch in &mut report.epochs {
            epoch.wall_seconds = 0.0;
        }
        rpol_json::to_string_pretty(&report).expect("serializes")
    };
    assert_eq!(export(), export());
}
