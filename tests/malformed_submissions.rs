//! Failure injection: workers submitting numerically hostile payloads
//! (NaN / infinity / absurd magnitudes). Verified schemes must reject
//! them without poisoning the global model or panicking.

use rpol_repro::nn::data::SyntheticImages;
use rpol_repro::rpol::commitment::EpochCommitment;
use rpol_repro::rpol::tasks::TaskConfig;
use rpol_repro::rpol::trainer::epoch_segments;
use rpol_repro::rpol::verify::{ProofProvider, ProofUnavailable, Verifier};
use rpol_repro::sim::gpu::{GpuModel, NoiseInjector};
use rpol_repro::tensor::rng::Pcg32;

struct VecProvider(Vec<Vec<f32>>);

impl ProofProvider for VecProvider {
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, ProofUnavailable> {
        Ok(std::borrow::Cow::Borrowed(&self.0[index]))
    }
}

fn hostile_checkpoints(template: &[f32], poison: f32, segments: usize) -> Vec<Vec<f32>> {
    let mut checkpoints = vec![template.to_vec()];
    for j in 0..segments {
        let mut next = template.to_vec();
        // Poison a growing prefix so every segment output is hostile.
        for w in next.iter_mut().take(j + 1) {
            *w = poison;
        }
        checkpoints.push(next);
    }
    checkpoints
}

fn verify_hostile(poison: f32) {
    let cfg = TaskConfig::tiny();
    let data = SyntheticImages::generate(&cfg.spec, 48, &mut Pcg32::seed_from(0xF00));
    let global = cfg.build_model().flatten_params();
    let segments = epoch_segments(6, cfg.checkpoint_interval);
    let forged = hostile_checkpoints(&global, poison, segments.len());
    let commitment = EpochCommitment::commit_v1(&forged);
    let mut scratch = cfg.build_model();
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        3,
        0.05,
        None,
        NoiseInjector::new(GpuModel::G3090, 1),
    );
    let samples: Vec<usize> = (0..segments.len()).collect();
    let verdict = verifier.verify_samples(
        &mut scratch,
        &commitment,
        &segments,
        &samples,
        &VecProvider(forged),
    );
    assert!(
        !verdict.all_accepted(),
        "hostile payload {poison} must not verify"
    );
    // Every sampled segment whose claimed output is poisoned is rejected.
    for (j, outcome) in &verdict.outcomes {
        assert!(
            !outcome.is_accepted(),
            "segment {j} accepted a {poison} payload"
        );
    }
}

#[test]
fn nan_checkpoints_rejected_without_panic() {
    verify_hostile(f32::NAN);
}

#[test]
fn infinite_checkpoints_rejected_without_panic() {
    verify_hostile(f32::INFINITY);
}

#[test]
fn huge_checkpoints_rejected_without_panic() {
    verify_hostile(1e30);
}

#[test]
fn hostile_submissions_never_reach_the_global_model() {
    use rpol_repro::rpol::adversary::WorkerBehavior;
    use rpol_repro::rpol::pool::{MiningPool, PoolConfig, Scheme};

    // The spoofer's extrapolations are finite here, but the invariant this
    // guards is general: rejected submissions never touch the global
    // model, so whatever garbage a cheater produces, the aggregated
    // weights stay finite.
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 3;
    let mut pool = MiningPool::new(
        config,
        vec![
            WorkerBehavior::Honest,
            WorkerBehavior::PartialSpoof {
                honest_fraction: 0.0,
                lambda: 1.0,
            },
        ],
    );
    let report = pool.run();
    assert_eq!(report.rejections(), 3);
    assert!(pool
        .manager()
        .global_weights()
        .iter()
        .all(|w| w.is_finite()));
}
