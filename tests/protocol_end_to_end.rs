//! End-to-end protocol integration tests spanning all workspace crates:
//! data sharding → training → commitments → sampling → verification →
//! aggregation → consensus → rewards.

use rpol_repro::chain::block::Block;
use rpol_repro::chain::consensus::{ConsensusRound, Proposal};
use rpol_repro::chain::task::{TaskPool, TrainingTask};
use rpol_repro::chain::Ledger;
use rpol_repro::crypto::Address;
use rpol_repro::rpol::adversary::WorkerBehavior;
use rpol_repro::rpol::judge::TaskJudge;
use rpol_repro::rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol_repro::rpol::tasks::TaskConfig;

fn demo_config(scheme: Scheme) -> PoolConfig {
    let mut config = PoolConfig::tiny_demo(scheme);
    config.epochs = 2;
    config.steps_per_epoch = 6;
    // Sample every segment (3 of 3) so detection in these small tests is
    // deterministic rather than Theorem-2 probabilistic.
    config.q_samples = 3;
    config
}

#[test]
fn honest_pool_full_run_all_schemes() {
    for scheme in [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2] {
        let mut pool = MiningPool::new(demo_config(scheme), vec![WorkerBehavior::Honest; 4]);
        let report = pool.run();
        assert_eq!(report.rejections(), 0, "{scheme}: honest workers rejected");
        assert_eq!(report.acceptances(), 8, "{scheme}");
        // Every epoch recorded an accuracy and moved bytes.
        assert_eq!(report.accuracy_curve().len(), 2);
        assert!(report.total_comm_bytes() > 0);
    }
}

#[test]
fn adversary_matrix_detection() {
    // Every adversarial behaviour must be caught by both verified schemes.
    let adversaries = [
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::PartialSpoof {
            honest_fraction: 0.0,
            lambda: 0.5,
        },
        WorkerBehavior::PartialSpoof {
            honest_fraction: 0.34,
            lambda: 0.9,
        },
    ];
    for scheme in [Scheme::RPoLv1, Scheme::RPoLv2] {
        for adv in adversaries {
            let mut pool = MiningPool::new(demo_config(scheme), vec![WorkerBehavior::Honest, adv]);
            let report = pool.run();
            assert_eq!(
                report.rejections(),
                report.epochs.len(),
                "{scheme} failed to catch {adv:?} every epoch"
            );
            // The honest worker is never collateral damage.
            for rec in &report.epochs {
                assert!(rec.report.accepted.contains(&0), "{scheme} {adv:?}");
                assert!(rec.report.rejected.contains(&1), "{scheme} {adv:?}");
            }
        }
    }
}

#[test]
fn baseline_accepts_everything_verified_schemes_do_not() {
    let behaviors = vec![WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious];
    let baseline = MiningPool::new(demo_config(Scheme::Baseline), behaviors.clone()).run();
    let verified = MiningPool::new(demo_config(Scheme::RPoLv2), behaviors).run();
    assert_eq!(baseline.rejections(), 0);
    assert_eq!(verified.rejections(), verified.epochs.len());
}

#[test]
fn rewards_flow_only_to_verified_workers() {
    let mut pool = MiningPool::new(
        demo_config(Scheme::RPoLv1),
        vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ],
    );
    pool.run();
    let payout = pool.manager().contributions().distribute(12.0);
    assert_eq!(payout.len(), 2, "only the two honest workers earn");
    for (_, share) in &payout {
        assert!((share - 6.0).abs() < 1e-9);
    }
    let cheater_addr = pool.workers()[2].address;
    assert!(payout.iter().all(|(a, _)| *a != cheater_addr));
}

#[test]
fn pool_output_wins_consensus_and_extends_ledger() {
    // The full §III-A loop: task pool → pooled training → proposal →
    // delayed test release → scoring → ledger append → reward split.
    let task_cfg = TaskConfig::tiny();
    let mut task_pool = TaskPool::new();
    task_pool.publish(TrainingTask::new(9, task_cfg.spec, 80, 24, 0x1D, 2));
    let task = task_pool.front().expect("task").clone();
    let mut ledger = Ledger::new();

    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = task.epoch_limit;
    let mut pool = MiningPool::new(config, vec![WorkerBehavior::Honest; 3]);
    pool.run();
    let pool_weights = pool.manager().global_weights().to_vec();
    let pool_addr = pool.manager().address;

    // A solo miner proposes an untrained (fresh) model.
    let solo_addr = Address::from_seed(0x5010);
    let solo_weights = task_cfg.build_encoded_model(&solo_addr).flatten_params();

    let mut round = ConsensusRound::open(&task, ledger.tip_hash(), 1, 2);
    for (addr, weights) in [(pool_addr, &pool_weights), (solo_addr, &solo_weights)] {
        round.submit(Proposal {
            block: Block::new(
                1,
                ledger.tip_hash(),
                task.id,
                addr,
                weights,
                task_cfg.lipschitz_c,
            ),
            weights: weights.clone(),
        });
    }
    let judge = TaskJudge::new(task_cfg);
    let outcome = round.close(&judge).expect("winner exists");
    assert_eq!(
        outcome.winner.proposer, pool_addr,
        "the trained pool model must beat the fresh solo model"
    );
    ledger.append(outcome.winner).expect("extends ledger");
    assert_eq!(ledger.height(), 1);
    assert!(ledger.validate());
    task_pool.close(task.id);
    assert!(task_pool.is_empty());
}

#[test]
fn global_model_ownership_survives_training() {
    // After multiple epochs of aggregation, the global model still encodes
    // the manager's address (the frozen AMLayer prefix is never disturbed).
    let mut pool = MiningPool::new(demo_config(Scheme::RPoLv1), vec![WorkerBehavior::Honest; 3]);
    pool.run();
    let cfg = *pool.manager().config();
    assert!(cfg.verify_model_owner(
        pool.manager().global_weights(),
        &pool.manager().address,
        cfg.lipschitz_c
    ));
    assert!(!cfg.verify_model_owner(
        pool.manager().global_weights(),
        &Address::from_seed(0xBAD),
        cfg.lipschitz_c
    ));
}

#[test]
fn v2_ships_fewer_proof_bytes_than_v1() {
    let behaviors = vec![WorkerBehavior::Honest; 3];
    let v1 = MiningPool::new(demo_config(Scheme::RPoLv1), behaviors.clone()).run();
    let v2 = MiningPool::new(demo_config(Scheme::RPoLv2), behaviors).run();
    let proofs = |r: &rpol_repro::rpol::pool::PoolReport| -> u64 {
        r.epochs.iter().map(|e| e.report.comm.proof_bytes).sum()
    };
    assert!(proofs(&v2) < proofs(&v1));
    // Accuracy parity between the verified schemes (paper: identical).
    assert!((v1.final_accuracy() - v2.final_accuracy()).abs() < 0.2);
}

#[test]
fn reports_serialize_to_json_like_form() {
    // PoolReport is serde-serializable end to end (operators export runs).
    let mut pool = MiningPool::new(demo_config(Scheme::RPoLv2), vec![WorkerBehavior::Honest; 2]);
    let report = pool.run();
    // serde_json is not a dependency; round-trip through the compact
    // self-describing format instead by checking Serialize is derivable.
    fn assert_serializable<T: serde::Serialize>(_: &T) {}
    assert_serializable(&report);
}
