//! Security-focused integration tests: every attack the paper's threat
//! model (§III-B) names, exercised against the full protocol stack.

use rpol_repro::crypto::Address;
use rpol_repro::nn::data::SyntheticImages;
use rpol_repro::rpol::adversary::{replace_amlayer, spoof_next_checkpoint, WorkerBehavior};
use rpol_repro::rpol::commitment::EpochCommitment;
use rpol_repro::rpol::tasks::TaskConfig;
use rpol_repro::rpol::trainer::LocalTrainer;
use rpol_repro::rpol::verify::{
    ProofProvider, ProofUnavailable, RejectReason, VerificationOutcome, Verifier,
};
use rpol_repro::rpol::worker::{CommitMode, PoolWorker};
use rpol_repro::sim::gpu::{GpuModel, NoiseInjector};
use rpol_repro::tensor::rng::Pcg32;

struct VecProvider(Vec<Vec<f32>>);

impl ProofProvider for VecProvider {
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, ProofUnavailable> {
        Ok(std::borrow::Cow::Borrowed(&self.0[index]))
    }
}

fn setup() -> (TaskConfig, SyntheticImages, Vec<f32>) {
    let cfg = TaskConfig::tiny();
    let data = SyntheticImages::generate(&cfg.spec, 48, &mut Pcg32::seed_from(0xA7));
    let global = cfg.build_model().flatten_params();
    (cfg, data, global)
}

/// A cheater who trains honestly but tries to *reuse last epoch's*
/// checkpoints for this epoch's commitment. The nonce-keyed deterministic
/// batches make the replayed trajectory diverge, so verification fails.
#[test]
fn stale_checkpoint_replay_attack_rejected() {
    let (cfg, data, global) = setup();
    // Epoch 1 (nonce 111): train honestly, keep the checkpoints.
    let mut model = cfg.build_model();
    model.load_params(&global);
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 1));
    let old_trace = trainer.run_epoch(&mut model, 111, 6);

    // Epoch 2 (nonce 222): submit the epoch-1 checkpoints verbatim.
    let commitment = EpochCommitment::commit_v1(&old_trace.checkpoints);
    let mut scratch = cfg.build_model();
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        222, // the manager replays with the *new* nonce
        0.05,
        None,
        NoiseInjector::new(GpuModel::G3090, 2),
    );
    let verdict = verifier.verify_samples(
        &mut scratch,
        &commitment,
        &old_trace.segments,
        &[0, 1, 2],
        &VecProvider(old_trace.checkpoints.clone()),
    );
    assert!(
        !verdict.all_accepted(),
        "stale-checkpoint replay must fail under a fresh nonce"
    );
}

/// Equivocation: committing to one sequence and opening another.
#[test]
fn equivocating_openings_rejected() {
    let (cfg, data, global) = setup();
    let mut model = cfg.build_model();
    model.load_params(&global);
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 3));
    let trace = trainer.run_epoch(&mut model, 7, 6);
    let commitment = EpochCommitment::commit_v1(&trace.checkpoints);

    // Open a *different* (also honestly-produced!) sequence.
    let mut model2 = cfg.build_model();
    model2.load_params(&global);
    let mut trainer2 = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 4));
    let other = trainer2.run_epoch(&mut model2, 7, 6);

    let mut scratch = cfg.build_model();
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        7,
        0.05,
        None,
        NoiseInjector::new(GpuModel::G3090, 5),
    );
    let verdict = verifier.verify_samples(
        &mut scratch,
        &commitment,
        &trace.segments,
        &[1],
        &VecProvider(other.checkpoints.clone()),
    );
    assert!(matches!(
        verdict.outcomes[0].1,
        VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch)
    ));
}

/// The Eq. 12 spoof caught on the spoofed region but not the honest one.
#[test]
fn partial_spoof_caught_exactly_on_spoofed_segments() {
    let (cfg, data, _global) = setup();
    let manager = Address::from_seed(1);
    let mut worker = PoolWorker::new(
        0,
        &cfg,
        &manager,
        data.clone(),
        GpuModel::GA10,
        WorkerBehavior::PartialSpoof {
            honest_fraction: 0.5,
            lambda: 0.5,
        },
    );
    let encoded_global = cfg.build_encoded_model(&manager).flatten_params();
    // 8 steps, interval 2 → 4 segments: 2 honest then 2 spoofed.
    worker.run_epoch(&cfg, &encoded_global, 5, 8, 0, CommitMode::V1);
    let commitment = EpochCommitment::commit_v1(
        &(0..=4)
            .map(|j| worker.open_checkpoint(j).expect("local").into_owned())
            .collect::<Vec<_>>(),
    );

    let mut scratch = cfg.build_encoded_model(&manager);
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        5,
        0.05,
        None,
        NoiseInjector::new(GpuModel::G3090, 6),
    );
    let verdict = verifier.verify_samples(
        &mut scratch,
        &commitment,
        worker.segments(),
        &[0, 1, 2, 3],
        &worker,
    );
    let accepted: Vec<bool> = verdict
        .outcomes
        .iter()
        .map(|(_, o)| o.is_accepted())
        .collect();
    assert!(accepted[0], "honest segment 0 must pass");
    assert!(accepted[1], "honest segment 1 must pass");
    assert!(!accepted[2], "spoofed segment 2 must fail");
    assert!(!accepted[3], "spoofed segment 3 must fail");
}

/// Address-replacing attack across the whole stack: ownership flips but
/// the judge can still detect the theft economically (accuracy collapse is
/// covered in Table I; here we check the pure crypto path).
#[test]
fn address_replacement_detected_by_owner_checks() {
    let cfg = TaskConfig::tiny();
    let owner = Address::from_seed(10);
    let thief = Address::from_seed(20);
    let weights = cfg.build_encoded_model(&owner).flatten_params();
    assert!(cfg.verify_model_owner(&weights, &owner, cfg.lipschitz_c));

    let forged = replace_amlayer(&cfg, &weights, &thief);
    // Ownership moved to the thief — consensus pays the thief only if the
    // forged model also *wins*, which the accuracy collapse prevents.
    assert!(cfg.verify_model_owner(&forged, &thief, cfg.lipschitz_c));
    assert!(!cfg.verify_model_owner(&forged, &owner, cfg.lipschitz_c));
    // And the original owner's claim over the forged weights fails too,
    // so the thief cannot frame the owner.
    assert_ne!(forged, weights);
}

/// Spoofing from a standing start (no honest checkpoints at all).
#[test]
fn cold_spoof_is_distance_rejected() {
    let (cfg, data, global) = setup();
    // Forge an entire epoch by extrapolating from the global alone.
    let segments = rpol_repro::rpol::trainer::epoch_segments(6, cfg.checkpoint_interval);
    let mut forged = vec![global.clone()];
    for _ in 0..segments.len() {
        forged.push(spoof_next_checkpoint(&forged, 0.5));
    }
    let commitment = EpochCommitment::commit_v1(&forged);
    let mut scratch = cfg.build_model();
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        13,
        0.05,
        None,
        NoiseInjector::new(GpuModel::G3090, 8),
    );
    let verdict = verifier.verify_samples(
        &mut scratch,
        &commitment,
        &segments,
        &[0],
        &VecProvider(forged),
    );
    assert!(matches!(
        verdict.outcomes[0].1,
        VerificationOutcome::Rejected(RejectReason::DistanceExceeded { .. })
    ));
}
