//! Integration: the fair-exchange escrow driven by real pool verification
//! outcomes (the paper's future-work smart-contract extension).

use rpol_repro::chain::escrow::{Escrow, EscrowState};
use rpol_repro::crypto::sha256::sha256;
use rpol_repro::rpol::adversary::WorkerBehavior;
use rpol_repro::rpol::pool::{MiningPool, PoolConfig, Scheme};

#[test]
fn escrow_pays_exactly_the_verified_workers() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 3;
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
    ];
    let mut pool = MiningPool::new(config, behaviors);

    let worker_addresses: Vec<_> = pool.workers().iter().map(|w| w.address).collect();
    let mut escrow = Escrow::fund(pool.manager().address, worker_addresses.clone(), 6.0, 1_000);

    // Drive epochs, posting one attestation per worker per epoch from the
    // actual verification verdicts.
    let report = pool.run();
    for rec in &report.epochs {
        for (w, addr) in worker_addresses.iter().enumerate() {
            let verified = rec.report.accepted.contains(&w);
            let commitment_tag = sha256(&[rec.report.epoch as u8, w as u8]);
            escrow
                .attest(*addr, rec.report.epoch, verified, commitment_tag)
                .expect("attestation accepted");
        }
    }

    let payout = escrow.settle().expect("settles");
    assert_eq!(escrow.state(), EscrowState::Settled);
    // Two honest workers × 3 epochs each → equal halves; cheater unpaid.
    assert_eq!(payout.len(), 2);
    for (addr, amount) in &payout {
        assert!((amount - 3.0).abs() < 1e-9);
        assert_ne!(*addr, worker_addresses[2], "cheater must not be paid");
    }
    // Escrow agrees with the manager's own contribution ledger.
    let ledger_payout = pool.manager().contributions().distribute(6.0);
    let mut a = payout.clone();
    let mut b = ledger_payout.clone();
    a.sort_by_key(|(addr, _)| *addr);
    b.sort_by_key(|(addr, _)| *addr);
    assert_eq!(a.len(), b.len());
    for ((wa, va), (wb, vb)) in a.iter().zip(&b) {
        assert_eq!(wa, wb);
        assert!((va - vb).abs() < 1e-9);
    }
}

#[test]
fn workers_reclaim_when_manager_vanishes() {
    let config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    let mut pool = MiningPool::new(config, vec![WorkerBehavior::Honest; 2]);
    let worker_addresses: Vec<_> = pool.workers().iter().map(|w| w.address).collect();
    let mut escrow = Escrow::fund(pool.manager().address, worker_addresses, 8.0, 10);
    pool.run();
    // The manager never settles; workers reclaim after block 10.
    let payout = escrow.reclaim(11).expect("reclaims");
    let total: f64 = payout.iter().map(|(_, v)| v).sum();
    assert!((total - 8.0).abs() < 1e-9);
    assert_eq!(payout.len(), 2);
}
