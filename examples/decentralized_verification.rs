//! Decentralized verification (the paper's future-work extension): the
//! manager delegates each sampled checkpoint to a committee of other
//! workers, who replay it on their own hardware and vote. A spoofing
//! worker is convicted unanimously; the manager only replays on ties.
//!
//! Run with: `cargo run --release --example decentralized_verification`

use rpol::adversary::WorkerBehavior;
use rpol::decentralized::{committee_verify, CommitteeConfig};
use rpol::tasks::TaskConfig;
use rpol::trainer::epoch_segments;
use rpol::worker::{CommitMode, PoolWorker};
use rpol_crypto::Address;
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;

fn main() {
    let cfg = TaskConfig::task_a();
    let manager = Address::from_seed(0xDE);
    let mut rng = Pcg32::seed_from(0xCE11);
    let data = SyntheticImages::generate(&cfg.spec, 160 * 6, &mut rng);
    let shards = data.shard(6);

    let behaviors = [
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::adv2_default(), // worker 5 spoofs 90% of its epoch
    ];
    let mut workers: Vec<PoolWorker> = behaviors
        .iter()
        .zip(shards)
        .enumerate()
        .map(|(i, (&b, shard))| PoolWorker::new(i, &cfg, &manager, shard, GpuModel::ALL[i % 4], b))
        .collect();

    let steps = 25;
    let global = cfg.build_encoded_model(&manager).flatten_params();
    let segments = epoch_segments(steps, cfg.checkpoint_interval);
    let beta = 0.05; // a pre-calibrated tolerance for the demo

    // Everyone trains and commits first (commit-then-sample).
    let submissions: Vec<_> = workers
        .iter_mut()
        .enumerate()
        .map(|(w, worker)| {
            worker.run_epoch(&cfg, &global, 0x40 + w as u64, steps, 0, CommitMode::V1)
        })
        .collect();

    println!(
        "{:<8} {:>10} {:>28} {:>10}",
        "subject", "verdict", "votes per sample", "replayed by"
    );
    for subject_id in 0..workers.len() {
        let subject = &workers[subject_id];
        let committee_pool: Vec<&PoolWorker> = workers.iter().collect();
        let (decisions, verdict) = committee_verify(
            &cfg,
            subject,
            &committee_pool,
            submissions[subject_id]
                .commitment
                .as_ref()
                .expect("committed"),
            &segments,
            &[0, 2, 4],
            0x40 + subject_id as u64,
            beta,
            None,
            CommitteeConfig { size: 3 },
            &mut rng,
            NoiseInjector::new(GpuModel::G3090, 0x7777),
        );
        let votes: Vec<String> = decisions
            .iter()
            .map(|d| {
                let accepts = d.votes.iter().filter(|v| v.outcome.is_accepted()).count();
                format!("{}#{}/{}", d.sample, accepts, d.votes.len())
            })
            .collect();
        println!(
            "{:<8} {:>10} {:>28} {:>10}",
            format!("worker{subject_id}"),
            if verdict.all_accepted() {
                "ACCEPT"
            } else {
                "REJECT"
            },
            votes.join("  "),
            "committee",
        );
    }
    println!("\nworker5 (the Adv2 spoofer) is rejected by committee vote; the");
    println!("manager re-executed nothing — verification ran on the pool's own idle GPUs.");
}
