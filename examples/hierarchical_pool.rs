//! Two-tier committee verification (DESIGN.md §15): the same roster run
//! flat and sharded into committees. The decisions — accept/reject sets,
//! accuracy curve, communication accounting — are bitwise identical; what
//! changes is *where* verification runs and how much commitment memory
//! the manager holds at once.
//!
//! Run with: `cargo run --release --example hierarchical_pool`

use rpol::adversary::WorkerBehavior;
use rpol::committee::Hierarchy;
use rpol::pool::{MiningPool, PoolConfig, Scheme};

fn behaviors() -> Vec<WorkerBehavior> {
    (0..12)
        .map(|i| match i % 6 {
            4 => WorkerBehavior::ReplayPrevious,
            5 => WorkerBehavior::adv2_default(),
            _ => WorkerBehavior::Honest,
        })
        .collect()
}

fn main() {
    let epochs = 3;
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = epochs;
    config.train_samples = 160 * 13; // one shard per worker + manager

    println!("12 workers (8 honest, 2 × Adv1, 2 × Adv2), {epochs} epochs, RPoLv2\n");

    let flat = MiningPool::new(config, behaviors()).run();

    let hierarchy = Hierarchy::new(4, 2).expect("valid hierarchy");
    let hier = MiningPool::new(config.with_hierarchy(hierarchy), behaviors()).run();

    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>16} {:>16}",
        "epoch", "flat acc", "hier acc", "rejected", "audits", "flat peak B", "hier peak B"
    );
    for (f, h) in flat.epochs.iter().zip(&hier.epochs) {
        let report = h.report.hierarchy.expect("hierarchical record");
        println!(
            "{:>6} {:>11.1}% {:>11.1}% {:>10} {:>10} {:>16} {:>16}",
            f.report.epoch + 1,
            f.test_accuracy * 100.0,
            h.test_accuracy * 100.0,
            h.report.rejected.len(),
            report.audits,
            f.report.peak_commit_bytes,
            h.report.peak_commit_bytes,
        );
        assert_eq!(f.report.accepted, h.report.accepted);
        assert_eq!(f.report.rejected, h.report.rejected);
        assert_eq!(f.test_accuracy.to_bits(), h.test_accuracy.to_bits());
    }

    println!(
        "\nidentical decisions and accuracy bits; peak commitment memory {} -> {} bytes",
        flat.epochs
            .iter()
            .map(|e| e.report.peak_commit_bytes)
            .max()
            .unwrap_or(0),
        hier.epochs
            .iter()
            .map(|e| e.report.peak_commit_bytes)
            .max()
            .unwrap_or(0),
    );
}
