//! Drive the tiny demo pool over a fault-injecting transport from the
//! command line: pick a loss profile (or individual drop/corrupt/truncate
//! rates), crash or slow down specific workers, and watch the pool degrade
//! gracefully — quarantining dead links instead of convicting them.
//!
//! All randomness derives from `--seed`, and the output contains no
//! wall-clock fields, so two runs with the same arguments are
//! byte-identical (`diff`-able).
//!
//! Run with: `cargo run --release --example fault_injection -- --help`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::transport::{FaultConfig, FaultProfile, RetryPolicy};
use rpol_sim::NetworkModel;

const USAGE: &str = "\
usage: fault_injection [options]

  --scheme S        baseline | v1 | v2                  (default v2)
  --profile P       none | lossy | harsh                (default lossy)
  --drop P          override drop probability           [0, 1)
  --corrupt P       override corruption probability     [0, 1)
  --truncate P      override truncation probability     [0, 1)
  --seed N          fault seed                          (default 42)
  --epochs N        epochs to run                       (default 2)
  --workers N       pool size                           (default 3)
  --crash W@E       worker W crashes mid-epoch E        (repeatable)
  --straggler W@S   worker W runs S times slower        (repeatable)
  --net M,W,L       manager bps, worker bps, latency s  (default paper WAN)
  --parallel        verify workers on threads
  --assert-honest   exit 1 if any honest worker is rejected
  --help            print this message";

struct Args {
    scheme: Scheme,
    profile: FaultProfile,
    seed: u64,
    epochs: usize,
    workers: usize,
    crashes: Vec<(usize, u64)>,
    stragglers: Vec<(usize, f32)>,
    net: NetworkModel,
    parallel: bool,
    assert_honest: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("fault_injection: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| fail(&format!("{flag} needs a value")));
    raw.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: cannot parse {raw:?}")))
}

/// Splits a `A@B` pair, e.g. `--crash 1@0` or `--straggler 2@4.5`.
fn parse_pair<A: std::str::FromStr, B: std::str::FromStr>(
    flag: &str,
    value: Option<String>,
) -> (A, B) {
    let raw = value.unwrap_or_else(|| fail(&format!("{flag} needs a value like W@X")));
    let Some((a, b)) = raw.split_once('@') else {
        fail(&format!("{flag}: expected W@X, got {raw:?}"))
    };
    match (a.parse(), b.parse()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => fail(&format!("{flag}: cannot parse {raw:?}")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: Scheme::RPoLv2,
        profile: FaultProfile::lossy(),
        seed: 42,
        epochs: 2,
        workers: 3,
        crashes: Vec::new(),
        stragglers: Vec::new(),
        net: NetworkModel::paper_default(),
        parallel: false,
        assert_honest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scheme" => {
                args.scheme = match parse::<String>(&flag, it.next()).as_str() {
                    "baseline" => Scheme::Baseline,
                    "v1" => Scheme::RPoLv1,
                    "v2" => Scheme::RPoLv2,
                    "v3" => Scheme::RPoLv3,
                    other => fail(&format!("--scheme: unknown scheme {other:?}")),
                }
            }
            "--profile" => {
                args.profile = match parse::<String>(&flag, it.next()).as_str() {
                    "none" => FaultProfile::ideal(),
                    "lossy" => FaultProfile::lossy(),
                    "harsh" => FaultProfile::harsh(),
                    other => fail(&format!("--profile: unknown profile {other:?}")),
                }
            }
            "--drop" => args.profile.drop_prob = parse(&flag, it.next()),
            "--corrupt" => args.profile.corrupt_prob = parse(&flag, it.next()),
            "--truncate" => args.profile.truncate_prob = parse(&flag, it.next()),
            "--seed" => args.seed = parse(&flag, it.next()),
            "--epochs" => args.epochs = parse(&flag, it.next()),
            "--workers" => args.workers = parse(&flag, it.next()),
            "--crash" => args.crashes.push(parse_pair(&flag, it.next())),
            "--straggler" => args.stragglers.push(parse_pair(&flag, it.next())),
            "--net" => {
                let raw: String = parse(&flag, it.next());
                let parts: Vec<&str> = raw.split(',').collect();
                let [m, w, l] = parts[..] else {
                    fail("--net: expected three comma-separated numbers M,W,L")
                };
                let nums: Vec<f64> = [m, w, l]
                    .iter()
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|_| fail(&format!("--net: cannot parse {s:?}")))
                    })
                    .collect();
                args.net = NetworkModel::new(nums[0], nums[1], nums[2])
                    .unwrap_or_else(|e| fail(&format!("--net: {e}")));
            }
            "--parallel" => args.parallel = true,
            "--assert-honest" => args.assert_honest = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if args.workers == 0 {
        fail("--workers: need at least one worker");
    }
    args
}

fn main() {
    let args = parse_args();

    let fault = FaultConfig {
        profile: args.profile,
        policy: RetryPolicy::default(),
        net: args.net,
        seed: args.seed,
    };
    if let Err(e) = fault.validate() {
        fail(&format!("invalid fault config: {e}"));
    }

    let mut behaviors = vec![WorkerBehavior::Honest; args.workers];
    for &(w, epoch) in &args.crashes {
        if w >= args.workers {
            fail(&format!("--crash: worker {w} out of range"));
        }
        behaviors[w] = WorkerBehavior::CrashAt {
            epoch,
            after_steps: 1,
        };
    }
    for &(w, slowdown) in &args.stragglers {
        if w >= args.workers {
            fail(&format!("--straggler: worker {w} out of range"));
        }
        behaviors[w] = WorkerBehavior::Straggler { slowdown };
    }

    let mut config = PoolConfig::tiny_demo(args.scheme).with_faults(fault);
    config.epochs = args.epochs;

    println!(
        "{} | {} workers, {} epochs | drop {:.0}% corrupt {:.0}% truncate {:.0}% | seed {}",
        args.scheme,
        args.workers,
        args.epochs,
        args.profile.drop_prob * 100.0,
        args.profile.corrupt_prob * 100.0,
        args.profile.truncate_prob * 100.0,
        args.seed,
    );
    for &(w, e) in &args.crashes {
        println!("  worker {w} crashes mid-epoch {e}");
    }
    for &(w, s) in &args.stragglers {
        println!("  worker {w} is a {s}x straggler");
    }

    let mut pool = MiningPool::new(config, behaviors.clone());
    let report = if args.parallel {
        pool.run_parallel()
    } else {
        pool.run()
    };

    println!();
    for (e, record) in report.epochs.iter().enumerate() {
        let r = &record.report;
        println!(
            "epoch {e}: accepted {:?} rejected {:?} quarantined {:?} | acc {:.3} | \
             retries {} timeouts {} | net {:.3}s",
            r.accepted,
            r.rejected,
            r.quarantined,
            record.test_accuracy,
            r.transport.retries,
            r.transport.timeouts,
            record.transport_time.total(),
        );
    }

    let t = report.transport_totals();
    println!();
    println!(
        "transport: {} exchanges, {} attempts ({} retries), {} drops, {} corruptions, \
         {} truncations, {} timeouts, {} dead links, {:.1} KB on the wire",
        t.exchanges,
        t.attempts,
        t.retries,
        t.drops,
        t.corruptions,
        t.truncations,
        t.timeouts,
        t.failures,
        t.wire_bytes as f64 / 1e3,
    );
    println!(
        "outcome: {} accepted, {} rejected, {} quarantine events, final accuracy {:.3}",
        report.acceptances(),
        report.rejections(),
        report.quarantine_events(),
        report.final_accuracy(),
    );

    if args.assert_honest {
        let honest_rejected: Vec<usize> = report
            .epochs
            .iter()
            .flat_map(|e| e.report.rejected.iter().copied())
            .filter(|&w| matches!(behaviors[w], WorkerBehavior::Honest))
            .collect();
        if !honest_rejected.is_empty() {
            eprintln!("FAIL: honest workers rejected: {honest_rejected:?}");
            std::process::exit(1);
        }
        println!("OK: no honest worker rejected");
    }
}
