//! A mining pool under attack: compares an unverified pool against RPoLv1
//! and RPoLv2 when 40% of the workers cheat (a mix of Adv1 free-riders
//! and Adv2 spoofers), reproducing the Fig. 6 story at example scale.
//!
//! Run with: `cargo run --release --example mining_pool`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::tasks::TaskConfig;

fn behaviors() -> Vec<WorkerBehavior> {
    vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::adv2_default(),
        WorkerBehavior::adv2_default(),
    ]
}

fn main() {
    let epochs = 6;
    println!("10 workers (6 honest, 2 × Adv1, 2 × Adv2), {epochs} epochs, task A\n");

    let mut results = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2] {
        let mut config = PoolConfig::paper_like(TaskConfig::task_a(), scheme, epochs);
        config.train_samples = 160 * 11;
        let mut pool = MiningPool::new(config, behaviors());
        let report = pool.run();
        println!(
            "{:<10} final accuracy {:>5.1}%  rejected {:>2} submissions  comm {:>7.1} MB",
            scheme.to_string(),
            report.final_accuracy() * 100.0,
            report.rejections(),
            report.total_comm_bytes() as f64 / 1e6,
        );
        results.push((scheme, report));
    }

    let baseline = &results[0].1;
    let v1 = &results[1].1;
    let v2 = &results[2].1;
    println!();
    println!(
        "verification catches cheaters: baseline rejected {}, RPoLv1 {}, RPoLv2 {}",
        baseline.rejections(),
        v1.rejections(),
        v2.rejections()
    );
    let v1_proofs: u64 = v1.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
    let v2_proofs: u64 = v2.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
    println!(
        "LSH saves proof traffic: RPoLv2 {:.1} MB vs RPoLv1 {:.1} MB ({:.0}% less)",
        v2_proofs as f64 / 1e6,
        v1_proofs as f64 / 1e6,
        (1.0 - v2_proofs as f64 / v1_proofs as f64) * 100.0,
    );
    println!(
        "accuracy: verified pools ({:.1}% / {:.1}%) vs unverified ({:.1}%)",
        v1.final_accuracy() * 100.0,
        v2.final_accuracy() * 100.0,
        baseline.final_accuracy() * 100.0,
    );
}
