//! The full PoUW picture (§III-A): consensus nodes pull a training task
//! from the on-chain task pool, train address-encoded models, and propose
//! blocks; consensus releases the test set only after enough proposals,
//! scores every model, verifies ownership via the AMLayer, appends the
//! winner to the ledger, and the winning pool splits the reward among its
//! verified workers.
//!
//! A model thief submits the pool's trained weights re-encoded to its own
//! address — and loses on accuracy, exactly as Table I predicts.
//!
//! Run with: `cargo run --release --example blockchain_competition`

use rpol::adversary::{replace_amlayer, WorkerBehavior};
use rpol::judge::TaskJudge;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::tasks::TaskConfig;
use rpol_chain::block::Block;
use rpol_chain::consensus::{ConsensusRound, Proposal};
use rpol_chain::task::{TaskPool, TrainingTask};
use rpol_chain::Ledger;
use rpol_crypto::Address;

fn main() {
    // Stage A: a DNN task is published on chain.
    let task_cfg = TaskConfig::task_a();
    let mut task_pool = TaskPool::new();
    task_pool.publish(TrainingTask::new(1, task_cfg.spec, 800, 300, 0x7A5C, 4));
    let task = task_pool.front().expect("published").clone();
    let mut ledger = Ledger::new();
    println!(
        "task {} published; chain height {}",
        task.id,
        ledger.height()
    );

    // Stage B: two mining pools train the task with RPoL verification.
    let mut proposals = Vec::new();
    let mut pool_handles = Vec::new();
    for (name, seed, behaviors) in [
        ("pool-alpha", 0xA11CEu64, vec![WorkerBehavior::Honest; 5]),
        (
            "pool-beta",
            0xB0Bu64,
            vec![
                WorkerBehavior::Honest,
                WorkerBehavior::Honest,
                WorkerBehavior::Honest,
                WorkerBehavior::ReplayPrevious,
                WorkerBehavior::ReplayPrevious,
            ],
        ),
    ] {
        let mut config = PoolConfig::paper_like(task_cfg, Scheme::RPoLv2, task.epoch_limit);
        config.seed = seed;
        config.train_samples = 160 * 6;
        let mut pool = MiningPool::new(config, behaviors);
        let report = pool.run();
        let weights = pool.manager().global_weights().to_vec();
        let address = pool.manager().address;
        println!(
            "{name}: trained {} epochs, accuracy {:.1}%, {} cheater submissions rejected",
            report.epochs.len(),
            report.final_accuracy() * 100.0,
            report.rejections(),
        );
        proposals.push((name, address, weights));
        pool_handles.push((name, pool));
    }

    // A thief steals pool-alpha's model and re-encodes the AMLayer.
    let thief = Address::from_seed(0x7411EF);
    let stolen = replace_amlayer(&task_cfg, &proposals[0].2, &thief);
    proposals.push(("model-thief", thief, stolen));

    // Stage C: proposals enter the consensus round; the test set is
    // released only after all three arrive.
    let mut round = ConsensusRound::open(&task, ledger.tip_hash(), ledger.height() + 1, 3);
    for (name, address, weights) in &proposals {
        let block = Block::new(
            ledger.height() + 1,
            ledger.tip_hash(),
            task.id,
            *address,
            weights,
            task_cfg.lipschitz_c,
        );
        round.submit(Proposal {
            block,
            weights: weights.clone(),
        });
        println!(
            "{name} proposed a block ({} proposals so far)",
            round.proposal_count()
        );
    }

    let judge = TaskJudge::new(task_cfg);
    let outcome = round.close(&judge).expect("at least one valid proposal");
    println!("\nconsensus scores (test set released after 3 proposals):");
    for (addr, acc) in &outcome.scores {
        let name = proposals
            .iter()
            .find(|(_, a, _)| a == addr)
            .map(|(n, _, _)| *n)
            .unwrap_or("?");
        println!("  {name:<12} {:>5.1}%", acc * 100.0);
    }
    let winner_name = proposals
        .iter()
        .find(|(_, a, _)| *a == outcome.winner.proposer)
        .map(|(n, _, _)| *n)
        .expect("winner listed");
    println!(
        "winner: {winner_name} at {:.1}% test accuracy",
        outcome.winner.test_accuracy * 100.0
    );
    assert_ne!(
        winner_name, "model-thief",
        "re-encoded model must lose on accuracy"
    );

    ledger.append(outcome.winner.clone()).expect("extends tip");
    println!(
        "block appended; chain height {} and valid: {}",
        ledger.height(),
        ledger.validate()
    );

    // The winning pool distributes the block reward to verified workers.
    let (_, winning_pool) = pool_handles
        .iter()
        .find(|(n, _)| *n == winner_name)
        .expect("winner is a pool");
    println!("\nreward split of 100.0 among {winner_name}'s verified workers:");
    for (addr, share) in winning_pool.manager().contributions().distribute(100.0) {
        println!("  {addr} -> {share:.2}");
    }
}
