//! Machine-readable run artifacts: run a verified pool, export the full
//! report as JSON (via the workspace's own serde backend), and query the
//! Eq. 5 expected error rates from the epoch calibrations.
//!
//! Run with: `cargo run --release --example report_export`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};

fn main() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 2;
    let mut pool = MiningPool::new(
        config,
        vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ],
    );
    let report = pool.run();

    // Eq. 5 analytics straight from the recorded calibrations.
    println!("per-epoch calibration analytics:");
    for rec in &report.epochs {
        if let Some(cal) = rec.report.calibration {
            println!(
                "  epoch {}: alpha {:.3e}, beta {:.3e}, Eq.5 E[FNR] {:.4}%, \
                 E[FPR] for spoofs at 10β: {:.4}%",
                rec.report.epoch + 1,
                cal.alpha,
                cal.beta,
                cal.expected_fnr() * 100.0,
                cal.expected_fpr(cal.beta * 10.0, cal.beta) * 100.0,
            );
        }
    }

    // The full report as JSON — diffable, archivable, parseable.
    let json = rpol_json::to_string_pretty(&report).expect("report serializes");
    println!("\nfull report ({} bytes of JSON), first lines:", json.len());
    for line in json.lines().take(14) {
        println!("  {line}");
    }
    println!("  ...");
}
