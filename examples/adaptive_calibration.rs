//! Adaptive LSH calibration in action (§V-C).
//!
//! The pool manager re-estimates the reproduction-error tolerance `α`
//! every epoch by double-running its own sub-task on the pool's two
//! fastest GPUs, then solves the Eq. 6 multi-objective problem for the
//! LSH parameters it broadcasts. This example traces those quantities
//! across epochs and shows an honest worker's errors staying inside `β`
//! while a spoofed checkpoint lands far outside.
//!
//! Run with: `cargo run --release --example adaptive_calibration`

use rpol::adversary::spoof_next_checkpoint;
use rpol::calibrate::{CalibrationPolicy, Calibrator};
use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32
}

fn main() {
    let cfg = TaskConfig::task_a();
    let steps = 20;
    let mut rng = Pcg32::seed_from(0xADA);
    let data = SyntheticImages::generate(&cfg.spec, 400, &mut rng);
    let shards = data.shard(2);
    let calibrator = Calibrator::new(
        &cfg,
        &shards[0],
        CalibrationPolicy::default(),
        GpuModel::top2(),
    );

    let mut global = cfg.build_model().flatten_params();
    println!(
        "{:>6} {:>12} {:>12} {:>18} {:>14} {:>14}",
        "epoch", "alpha", "beta", "LSH {r,k,l}", "honest max", "spoof dist"
    );
    for epoch in 0..5u64 {
        let (cal, _) = calibrator.calibrate(&global, 0xCE ^ epoch, steps, epoch);

        // An honest worker's verification-time distances.
        let mut model = cfg.build_model();
        model.load_params(&global);
        let mut worker = LocalTrainer::new(
            &cfg,
            &shards[1],
            NoiseInjector::new(GpuModel::GA10, 0x700 + epoch),
        );
        let trace = worker.run_epoch(&mut model, 0x1F + epoch, steps);
        let mut verify_model = cfg.build_model();
        let mut verifier = LocalTrainer::new(
            &cfg,
            &shards[1],
            NoiseInjector::new(GpuModel::G3090, 0x800 + epoch),
        );
        let mut honest_max = 0.0f32;
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed = verifier.replay_segment(
                &mut verify_model,
                &trace.checkpoints[j],
                0x1F + epoch,
                *seg,
            );
            honest_max = honest_max.max(euclidean(&replayed, &trace.checkpoints[j + 1]));
        }

        // A spoofed final checkpoint (Eq. 12) — its verification distance.
        let spoofed = spoof_next_checkpoint(&trace.checkpoints, 0.5);
        let last_seg = *trace.segments.last().expect("nonempty");
        let replayed = verifier.replay_segment(
            &mut verify_model,
            &trace.checkpoints[trace.segments.len() - 1],
            0x1F + epoch,
            last_seg,
        );
        let spoof_dist = euclidean(&replayed, &spoofed);

        println!(
            "{:>6} {:>12.3e} {:>12.3e} {:>18} {:>14.3e} {:>14.3e}",
            epoch + 1,
            cal.alpha,
            cal.beta,
            format!("{{{:.1e},{},{}}}", cal.params.r, cal.params.k, cal.params.l),
            honest_max,
            spoof_dist,
        );
        assert!(honest_max < cal.beta, "honest worker must stay inside beta");
        assert!(spoof_dist > cal.beta, "spoof must land outside beta");

        global = trace.final_weights().to_vec();
    }
    println!("\nevery epoch: honest max < beta < spoof distance ✓ (0 false negatives)");
}
