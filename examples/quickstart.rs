//! Quickstart: run a small RPoL mining pool end-to-end.
//!
//! One manager and four workers train a tiny task for three epochs under
//! RPoLv2 (LSH-optimized verification). One worker is a free-rider that
//! resubmits the global model; watch it get caught every epoch while the
//! honest workers earn all the credit.
//!
//! Run with: `cargo run --release --example quickstart`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};

fn main() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 3;
    config.steps_per_epoch = 8;

    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious, // the free-rider
    ];
    let mut pool = MiningPool::new(config, behaviors);
    let report = pool.run();

    println!("RPoL quickstart — {} scheme", report.scheme);
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>13}",
        "epoch", "accuracy", "accepted", "rejected", "double-checks"
    );
    for record in &report.epochs {
        println!(
            "{:>6} {:>9.1}% {:>9} {:>9} {:>13}",
            record.report.epoch + 1,
            record.test_accuracy * 100.0,
            record.report.accepted.len(),
            record.report.rejected.len(),
            record.report.double_checks,
        );
    }
    println!(
        "\ntotal: {} accepted, {} rejected submissions, {:.1} MB moved",
        report.acceptances(),
        report.rejections(),
        report.total_comm_bytes() as f64 / 1e6,
    );

    // Reward split: only verified contributions earn.
    println!("\nreward split for a 10.0-unit block reward:");
    for (addr, share) in pool.manager().contributions().distribute(10.0) {
        println!("  {addr} -> {share:.2}");
    }
    assert_eq!(
        report.rejections(),
        3,
        "the free-rider should be rejected every epoch"
    );
    println!(
        "\nthe free-rider was rejected in all {} epochs ✓",
        report.epochs.len()
    );
}
