//! Prints the epoch checkpoint digests for fixed seed/task configs.
//!
//! Used to pin the trainer's bitwise behaviour across kernel rewrites: the
//! commitment protocol hashes exact f32 bytes, so any change to reduction
//! order in the math kernels shows up here immediately.

use rpol::tasks::{ModelArch, TaskConfig};
use rpol::trainer::LocalTrainer;
use rpol_crypto::sha256::sha256_f32;
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;

fn probe(arch: ModelArch, name: &str) {
    let mut cfg = TaskConfig::tiny();
    cfg.arch = arch;
    let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
    let mut model = cfg.build_model();
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 5));
    let trace = trainer.run_epoch(&mut model, 7, 6);
    for (i, ckpt) in trace.checkpoints.iter().enumerate() {
        println!("{name} checkpoint[{i}] {}", sha256_f32(ckpt).to_hex());
    }
}

fn main() {
    probe(ModelArch::MiniResNet18, "mini_resnet18");
    probe(ModelArch::MiniVgg16, "mini_vgg16");
}
