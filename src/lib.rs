//! Umbrella crate for the RPoL reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests (and downstream users who want everything) can depend
//! on a single package:
//!
//! ```
//! use rpol_repro::prelude::*;
//! let digest = rpol_repro::crypto::sha256(b"hello");
//! assert_eq!(digest.as_bytes().len(), 32);
//! ```

pub use rpol_chain as chain;
pub use rpol_crypto as crypto;
pub use rpol_lsh as lsh;
pub use rpol_nn as nn;
pub use rpol_sim as sim;
pub use rpol_tensor as tensor;

/// The paper's primary contribution: the RPoL protocol crate.
pub use rpol;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use rpol_crypto::{Address, Prf};
    pub use rpol_lsh::{LshFamily, LshParams};
    pub use rpol_tensor::{rng::Pcg32, Tensor};
}
