//! Offline API-subset stand-in for `bytes` (see `compat/README.md`).
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer with a read
//! cursor; [`BytesMut`] is a growable write buffer. The [`Buf`]/[`BufMut`]
//! traits carry the little-endian getters/putters the wire codec uses.
//! Unlike the real crate there is no zero-copy sharing — `clone` and
//! `slice` copy — which is irrelevant for the message sizes simulated
//! here.

use std::ops::RangeBounds;

/// Read-side byte buffer access.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (as in the real crate).
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`, advancing the cursor.
    fn get_f32_le(&mut self) -> f32;
    /// Copies bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advances the cursor without reading.
    fn advance(&mut self, cnt: usize);
}

/// Write-side byte buffer access.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            cursor: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new buffer over a sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        Self {
            data: self.data[self.cursor + start..self.cursor + end].to_vec(),
            cursor: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "advance past end of buffer");
        let start = self.cursor;
        self.cursor += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, cursor: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<Bytes> for Vec<u8> {
    /// Recovers the remaining (unread) bytes as an owned `Vec`, reusing the
    /// underlying allocation — the escape hatch buffer pools use to recycle
    /// a payload's storage once it has been decoded.
    fn from(b: Bytes) -> Self {
        let mut data = b.data;
        if b.cursor > 0 {
            data.drain(..b.cursor);
        }
        data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take(dst.len());
        dst.copy_from_slice(src);
    }

    fn advance(&mut self, cnt: usize) {
        self.take(cnt);
    }
}

/// A growable byte buffer for building messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            cursor: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(1.5);
        out.put_slice(b"xy");
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 11);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_f32_le(), 1.5);
        let mut rest = [0u8; 2];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4]);
        b.advance(1);
        assert_eq!(b.slice(1..3).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        Bytes::from(vec![1]).get_u32_le();
    }
}
