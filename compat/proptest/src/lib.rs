//! Offline API-subset stand-in for `proptest` (see `compat/README.md`).
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert*` macros,
//! exclusive-range strategies over ints and floats, `any::<T>()`, and
//! `collection::vec`. No shrinking: a failing case panics with the test
//! name and case index, and the generator is seeded deterministically from
//! the test path, so every failure reproduces exactly on re-run.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Modulo bias is irrelevant for property generation.
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (frac as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Fixed value strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite values only; the workspace never relies on NaN/inf input.
            (rng.next_u64() >> 40) as f32 / (1u64 << 12) as f32 - 2048.0
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 42) as f64 - 1024.0
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specs for [`vec`]: an exact `usize` or a `Range`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with a drawn length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len` (exact size or range).
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Per-run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a property case stopped early: rejected by `prop_assume!` (the
    /// case is skipped) or failed an assertion (the test panics).
    pub enum TestCaseError {
        /// `prop_assume!` precondition not met; draw another case.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure carrying `msg`, for use with `map_err(TestCaseError::fail)`.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test path, so
    /// every run of a given test sees the same case sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's fully qualified name.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            Self { state }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match run() {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, msg
                    ),
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Skips the current case when its precondition doesn't hold; another
/// case is drawn in its place (counted toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.5f32..2.5, s in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&f));
            prop_assert_eq!(s, s);
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in crate::collection::vec(0u8..255, 8),
            ranged in crate::collection::vec(-1.0f64..1.0, 1usize..5),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        let mut c = crate::test_runner::TestRng::from_name("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
