//! Offline API-subset stand-in for `criterion` (see `compat/README.md`).
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! and the `criterion_group!`/`criterion_main!` macros with a simple
//! adaptive timer: each benchmark is warmed up, then measured in batches
//! until ~200 ms of wall time accumulates, and the mean ns/iter is
//! printed. No statistics, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; the hint is accepted but all
/// variants behave identically here (setup always outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` adaptively and records the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std_black_box(routine());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < MEASURE {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup runs outside
    /// the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            std_black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Benchmark driver; collects and prints one line per benchmark.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honours the positional filter `cargo bench -- <filter>` passes.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{id:<40} time: {:>14.1} ns/iter  ({} iterations)",
            bencher.ns_per_iter, bencher.iters
        );
        self
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
