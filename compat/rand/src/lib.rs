//! Offline placeholder for `rand` (see `compat/README.md`).
//!
//! Several crates declare `rand` as a dev-dependency but nothing in the
//! workspace imports it — protocol randomness comes from the from-scratch
//! `rpol_tensor::rng` / `rpol_crypto::prf` generators so it stays
//! verifier-reproducible. This empty crate satisfies dependency
//! resolution offline; extend it if a test genuinely needs `rand` APIs.
