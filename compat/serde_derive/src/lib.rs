//! Offline stand-in for `serde_derive` (see `compat/README.md`).
//!
//! Hand-rolled `#[derive(Serialize, Deserialize)]` without `syn`/`quote`:
//! a small token-tree parser covering the shapes this workspace actually
//! derives — non-generic structs (named, tuple, unit) and enums (unit,
//! newtype, tuple and struct variants). Generic types and `#[serde(...)]`
//! attributes are intentionally unsupported and panic with a clear
//! message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Shape {
    StructNamed(Vec<String>),
    StructTuple(usize),
    StructUnit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::StructNamed(fields) => {
            let mut code = String::new();
            code.push_str("use ::serde::ser::SerializeStruct as _;\n");
            code.push_str(&format!(
                "let mut state = serializer.serialize_struct(\"{name}\", {})?;\n",
                fields.len()
            ));
            for field in &fields {
                code.push_str(&format!(
                    "state.serialize_field(\"{field}\", &self.{field})?;\n"
                ));
            }
            code.push_str("state.end()");
            code
        }
        Shape::StructTuple(1) => {
            format!("serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Shape::StructTuple(arity) => {
            let mut code = String::new();
            code.push_str("use ::serde::ser::SerializeTupleStruct as _;\n");
            code.push_str(&format!(
                "let mut state = serializer.serialize_tuple_struct(\"{name}\", {arity})?;\n"
            ));
            for i in 0..arity {
                code.push_str(&format!("state.serialize_field(&self.{i})?;\n"));
            }
            code.push_str("state.end()");
            code
        }
        Shape::StructUnit => format!("serializer.serialize_unit_struct(\"{name}\")"),
        Shape::Enum(variants) => {
            let mut code = String::new();
            code.push_str("#[allow(unused_imports)]\n");
            code.push_str("use ::serde::ser::{SerializeTupleVariant as _, SerializeStructVariant as _};\n");
            code.push_str("match self {\n");
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => code.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_unit_variant(\"{name}\", {index}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => code.push_str(&format!(
                        "{name}::{vname}(__f0) => serializer.serialize_newtype_variant(\"{name}\", {index}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        code.push_str(&format!(
                            "{name}::{vname}({}) => {{\nlet mut state = serializer.serialize_tuple_variant(\"{name}\", {index}u32, \"{vname}\", {arity})?;\n",
                            binders.join(", ")
                        ));
                        for binder in &binders {
                            code.push_str(&format!("state.serialize_field({binder})?;\n"));
                        }
                        code.push_str("state.end()\n}\n");
                    }
                    VariantKind::Named(fields) => {
                        code.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut state = serializer.serialize_struct_variant(\"{name}\", {index}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        ));
                        for field in fields {
                            code.push_str(&format!("state.serialize_field(\"{field}\", {field})?;\n"));
                        }
                        code.push_str("state.end()\n}\n");
                    }
                }
            }
            code.push_str("}\n");
            code
        }
    };
    let output = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    );
    output
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{}}\n"
    )
    .parse()
    .expect("serde_derive stub generated invalid Rust")
}

/// Parses a struct/enum item into its name and shape.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility to find `struct` / `enum`.
    let mut keyword = None;
    while let Some(token) = tokens.next() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let text = ident.to_string();
                if text == "struct" || text == "enum" {
                    keyword = Some(text);
                    break;
                }
                // `pub`, `pub(crate)` etc. — `(crate)` group is skipped as
                // its own token below.
            }
            _ => {}
        }
    }
    let keyword = keyword.expect("serde_derive stub: expected `struct` or `enum`");
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let shape = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::StructNamed(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Shape::StructTuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::StructUnit,
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(group.stream()))
            }
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        }
    };
    (name, shape)
}

/// Extracts field names from a `{ a: T, pub b: U, ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let mut name = None;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '#' => {}
                TokenTree::Group(_) => {} // attribute body or `pub(...)`
                TokenTree::Ident(ident) if ident.to_string() == "pub" => {}
                TokenTree::Ident(ident) => {
                    name = Some(ident.to_string());
                    break;
                }
                other => panic!("serde_derive stub: unexpected field token {other:?}"),
            }
        }
        let Some(name) = name else { break };
        fields.push(name);
        // Expect `:`, then skip the type up to a top-level comma. Angle
        // brackets never nest commas at the top level in this workspace's
        // field types except inside `<...>`, so track `<`/`>` depth.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts fields in a tuple-struct/tuple-variant `(A, B, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Parses enum variants, skipping attributes and explicit discriminants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let mut name = None;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '#' => {}
                TokenTree::Group(_) => {} // attribute body
                TokenTree::Ident(ident) => {
                    name = Some(ident.to_string());
                    break;
                }
                other => panic!("serde_derive stub: unexpected variant token {other:?}"),
            }
        }
        let Some(name) = name else { break };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(group.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.peek() {
            match token {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
    }
    variants
}
