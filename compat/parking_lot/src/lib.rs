//! Offline API-subset stand-in for `parking_lot` (see `compat/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's no-poison API:
//! `lock()` returns the guard directly, and a lock held by a panicked
//! thread is treated as released (poison is ignored).

use std::sync::PoisonError;

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
