//! Serialization traits mirroring `serde::ser`, plus impls for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error type contract for serializers.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sub-serializer for sequences.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuples.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuple structs.
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for maps.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for structs.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for struct enum variants.
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types (mirroring serde's data-model mapping).
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_primitive {
    ($($ty:ty => $method:ident as $cast:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self as $cast)
                }
            }
        )*
    };
}

impl_serialize_primitive! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($($len:expr => ($($name:ident . $idx:tt),+))+) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tuple = serializer.serialize_tuple($len)?;
                    $(tuple.serialize_element(&self.$idx)?;)+
                    tuple.end()
                }
            }
        )+
    };
}

impl_serialize_tuple! {
    1 => (A.0)
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
    5 => (A.0, B.1, C.2, D.3, E.4)
    6 => (A.0, B.1, C.2, D.3, E.4, F.5)
}
