//! Offline API-subset stand-in for `serde` (see `compat/README.md`).
//!
//! Implements the serialization half of serde's data model — the
//! [`Serialize`]/[`Serializer`] traits plus impls for the std types this
//! workspace serializes — and a marker [`Deserialize`] trait so
//! `#[derive(Deserialize)]` compiles (nothing in the workspace ever
//! deserializes; the JSON crate is serialize-only).

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
