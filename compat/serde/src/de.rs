//! Deserialization marker trait.
//!
//! The workspace never deserializes anything (its JSON crate is
//! serialize-only), but many types carry `#[derive(Deserialize)]` so the
//! derive must expand to *something*. The stub derive emits an empty impl
//! of this marker trait; any future attempt to actually deserialize will
//! fail to compile loudly rather than silently misbehave.

/// Marker for types whose `Deserialize` derive has been expanded.
///
/// Unlike real serde this trait has no methods: there is no
/// `Deserializer` in the stub to drive it.
pub trait Deserialize<'de>: Sized {}
