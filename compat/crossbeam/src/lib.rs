//! Offline API-subset stand-in for `crossbeam` (see `compat/README.md`).
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since Rust 1.63, which post-dates crossbeam's scoped-thread
//! API that this workspace was written against).

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirrors `crossbeam::thread::Scope`: spawn closures receive a scope
    /// reference so they can spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, as in
        /// crossbeam (unused by most callers, hence the `|_|` idiom).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Err` if the closure or any
    /// unjoined spawned thread panicked, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum = std::sync::Mutex::new(0);
        super::thread::scope(|scope| {
            for &x in &data {
                let sum = &sum;
                scope.spawn(move |_| *sum.lock().unwrap() += x);
            }
        })
        .unwrap();
        assert_eq!(*sum.lock().unwrap(), 6);
    }

    #[test]
    fn scope_reports_panics() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
