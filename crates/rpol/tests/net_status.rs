//! Distributed-observability integration tests (DESIGN.md §16).
//!
//! Two contracts:
//!
//! * **Status plane** — a `NetControl::Status` probe (no handshake
//!   needed) gets a `StatusReport` whose embedded registry counters
//!   equal the embedded `NetStats` field-for-field, at any point in the
//!   run: the snapshot publishes pending deltas before reading the
//!   registry, so the two views can never drift.
//! * **Trace stitching** — a loopback-TCP run with logical-clock
//!   recorders on the manager and every worker process stitches into one
//!   causally-ordered timeline that is byte-identical across same-seed
//!   runs, and whose verification work projects onto the simulated
//!   path's trace exactly.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpol::adversary::WorkerBehavior;
use rpol::client::{ClientTuning, WorkerClient};
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::server::{run_socket_pool, BindAddr, PoolServer, ServerConfig, SocketRunOptions};
use rpol::wire::{
    decode_net_control, encode_net_control, open_frame, seal_frame, NetControl, NET_PROTOCOL,
};
use rpol_obs::export::events_to_jsonl;
use rpol_obs::stitch::stitch;
use rpol_obs::{Event, Recorder};

fn quick_tuning() -> ClientTuning {
    ClientTuning {
        read_timeout: Duration::from_millis(5),
        backoff_scale: 0.005,
        ..ClientTuning::default()
    }
}

fn send_control(stream: &mut TcpStream, msg: &NetControl) {
    let framed = seal_frame(&encode_net_control(msg));
    stream.write_all(&framed).expect("write frame");
}

/// Reads one control frame (of any size) off a blocking stream.
fn read_control(stream: &mut TcpStream) -> io::Result<NetControl> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let k = stream.read(&mut chunk)?;
        if k == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
        }
        buf.extend_from_slice(&chunk[..k]);
        if buf.len() >= 16 {
            if let Ok(payload) = open_frame(bytes::Bytes::from(buf.clone())) {
                return Ok(decode_net_control(payload).expect("control frame"));
            }
        }
    }
}

/// The 18 `NetStats` fields, named as they appear in both the report's
/// `net` object and the `net.*` counter family.
const NET_FIELDS: &[&str] = &[
    "accepted",
    "handshakes",
    "busy_rejects",
    "shed_submissions",
    "evicted",
    "handshake_timeouts",
    "idle_closed",
    "disconnects",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "corrupt_frames",
    "malformed_frames",
    "heartbeats",
    "buf_pool_hits",
    "buf_pool_misses",
    "buf_pool_bytes_reused",
];

#[test]
fn status_report_counters_equal_embedded_net_stats() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    config.epochs = 2;
    let behaviors = vec![WorkerBehavior::Honest; 2];
    let rec = Arc::new(Recorder::logical());
    let pool = MiningPool::new(config, behaviors.clone()).with_recorder(rec.clone());
    let mut server =
        PoolServer::bind(pool, &BindAddr::loopback(), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let workers: Vec<_> = MiningPool::new(config, behaviors)
        .into_workers()
        .into_iter()
        .map(|worker| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                WorkerClient::new(config, worker, addr, quick_tuning()).run()
            })
        })
        .collect();
    let server_thread = std::thread::spawn(move || {
        let report = server.run().expect("server run");
        (report, server.net_stats())
    });

    // Poll the status plane from fresh unauthenticated probes for as long
    // as the server answers. Every report must be internally consistent.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut reports = 0u32;
    let mut saw_done = false;
    while Instant::now() < deadline && !saw_done {
        let Ok(mut probe) = TcpStream::connect(&addr) else {
            break; // server shut down
        };
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        send_control(&mut probe, &NetControl::Status);
        let Ok(NetControl::StatusReport { json }) = read_control(&mut probe) else {
            break; // listener closed mid-probe
        };
        let v = rpol_json::parse(&json).expect("status report is valid JSON");
        assert_eq!(
            v.get("protocol").and_then(|p| p.as_u64()),
            Some(u64::from(NET_PROTOCOL))
        );
        let live_workers = v.get("workers").and_then(|p| p.as_u64()).expect("workers");
        assert!(live_workers <= 2, "at most two workers ever handshake");
        let net = v.get("net").expect("net stats in report");
        let counters = v.get("counters").expect("registry counters in report");
        for field in NET_FIELDS {
            assert_eq!(
                counters
                    .get(&format!("net.{field}"))
                    .and_then(|c| c.as_u64()),
                net.get(field).and_then(|c| c.as_u64()),
                "registry counter net.{field} diverges from NetStats in the same report"
            );
        }
        let progress = v.get("progress").expect("progress in report");
        assert_eq!(
            progress.get("epochs_total").and_then(|p| p.as_u64()),
            Some(2)
        );
        saw_done = progress.get("epochs_done").and_then(|p| p.as_u64()) == Some(2);
        reports += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(reports > 0, "the status plane never answered a probe");

    let (report, net) = server_thread.join().expect("server thread");
    for handle in workers {
        handle.join().expect("worker thread");
    }
    assert_eq!(report.epochs.len(), 2);
    // The probes' connects and disconnects are part of the counters, and
    // the invariant held on every report anyway; the final registry totals
    // must also equal the final socket stats (the net_parity contract).
    let snapshot = rec.snapshot();
    assert_eq!(snapshot.counter("net.handshakes"), net.handshakes);
    assert_eq!(snapshot.counter("net.frames_in"), net.frames_in);
    assert_eq!(
        snapshot.counters_with_prefix("net.").len(),
        NET_FIELDS.len(),
        "latency metrics must ride histograms, not counters"
    );
}

/// One fully traced loopback run: logical recorders on the manager and
/// every worker process, stitched into a single timeline.
fn traced_socket_run(config: PoolConfig, behaviors: &[WorkerBehavior]) -> (String, Vec<Event>) {
    let server_rec = Arc::new(Recorder::logical());
    let client_recs: Vec<Arc<Recorder>> = behaviors
        .iter()
        .map(|_| Arc::new(Recorder::logical()))
        .collect();
    let outcome = run_socket_pool(
        config,
        behaviors.to_vec(),
        SocketRunOptions {
            client: quick_tuning(),
            recorder: Some(server_rec.clone()),
            client_recorders: client_recs.clone(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");
    assert_eq!(outcome.report.epochs.len(), config.epochs);
    let mut traces = vec![(
        "manager".to_string(),
        events_to_jsonl(&server_rec.events()).expect("manager trace"),
    )];
    for (i, rec) in client_recs.iter().enumerate() {
        traces.push((
            format!("worker-{i}"),
            events_to_jsonl(&rec.events()).expect("worker trace"),
        ));
    }
    let refs: Vec<(&str, &str)> = traces
        .iter()
        .map(|(name, jsonl)| (name.as_str(), jsonl.as_str()))
        .collect();
    (stitch(&refs).expect("stitch"), server_rec.events())
}

#[test]
fn stitched_multiprocess_trace_is_byte_identical_across_same_seed_runs() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 2;
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
    ];

    let (first, server_events) = traced_socket_run(config, &behaviors);
    let (second, _) = traced_socket_run(config, &behaviors);
    assert_eq!(
        first, second,
        "same-seed loopback runs must stitch to identical bytes"
    );

    // The cross-process spine is present: client work under the server's
    // propagated context, and the server's serial ingest of client sends.
    for name in [
        "rpol.server.epoch",
        "rpol.client.train",
        "rpol.server.ingest_submission",
        "rpol.client.proof",
        "rpol.server.ingest_proof",
    ] {
        assert!(first.contains(name), "stitched trace lacks {name}");
    }

    // Every client span carries the seed-keyed trace id and a real remote
    // parent, and causality holds in the merged order: a client train span
    // never precedes the epoch span that caused it.
    let mut train_seen = 0;
    let mut first_epoch_pos = None;
    let mut first_train_pos = None;
    for (pos, line) in first.lines().enumerate() {
        let v = rpol_json::parse(line).expect("stitched line is JSON");
        let name = v.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if name == "rpol.server.epoch" && first_epoch_pos.is_none() {
            first_epoch_pos = Some(pos);
        }
        if name == "rpol.client.train" {
            train_seen += 1;
            first_train_pos.get_or_insert(pos);
            let f = v.get("f").expect("fields");
            assert_eq!(
                f.get("trace").and_then(|t| t.as_u64()),
                Some(config.seed),
                "trace id must be the pool seed"
            );
            assert_ne!(
                f.get("parent").and_then(|p| p.as_u64()),
                Some(0),
                "client spans must name their remote parent"
            );
        }
    }
    assert_eq!(
        train_seen,
        behaviors.len() * config.epochs,
        "one train span per worker per epoch"
    );
    assert!(
        first_epoch_pos.expect("epoch span present") < first_train_pos.expect("train span present"),
        "Lamport stitching must order the epoch span before the client work it caused"
    );

    // Projection onto the simulated path: the socket run verifies exactly
    // the workers the in-process pool verifies, so the verification spans
    // and sampling events agree count-for-count.
    let sim_rec = Arc::new(Recorder::logical());
    let _ = MiningPool::new(config, behaviors.clone())
        .with_recorder(sim_rec.clone())
        .run();
    let count = |events: &[Event], name: &str| events.iter().filter(|e| e.name == name).count();
    let sim_events = sim_rec.events();
    for name in ["rpol.verify.worker", "rpol.manager.sample"] {
        assert_eq!(
            count(&server_events, name),
            count(&sim_events, name),
            "socket and simulated paths disagree on {name}"
        );
    }
}
