//! Determinism contract for the persistent-executor runtime (DESIGN.md
//! §12): at **every** thread count, an overlapped parallel run must
//! produce epoch records bitwise identical to the serial reference run —
//! same verdicts, same communication accounting, same aggregated model
//! (observed through the accuracy curve) — and the same sorted multiset
//! of trace events. Work stealing may reorder execution; it must never
//! change an outcome.

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, PoolReport, Scheme};
use rpol_obs::{Event, Recorder};
use std::sync::Arc;

fn behaviors() -> Vec<WorkerBehavior> {
    vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
    ]
}

/// Runs the pool serially (`threads: None`) or overlapped on an executor
/// of the given width.
fn run(scheme: Scheme, threads: Option<usize>) -> (Arc<Recorder>, PoolReport) {
    let rec = Arc::new(Recorder::logical());
    let pool =
        MiningPool::new(PoolConfig::tiny_demo(scheme), behaviors()).with_recorder(rec.clone());
    let report = match threads {
        None => {
            let mut pool = pool;
            pool.run()
        }
        Some(t) => {
            let mut pool = pool.with_threads(t);
            pool.run_parallel()
        }
    };
    (rec, report)
}

/// Everything scheduling could conceivably perturb, flattened to a
/// comparable string: the full `EpochReport` (verdicts, accounting,
/// calibration) plus the exact accuracy bits. Wall-clock fields are the
/// only part of an `EpochRecord` left out.
fn record_key(report: &PoolReport) -> Vec<String> {
    report
        .epochs
        .iter()
        .map(|rec| {
            let body = rpol_json::to_string(&rec.report).expect("serialize epoch report");
            format!("{body}|acc={:08x}", rec.test_accuracy.to_bits())
        })
        .collect()
}

/// An event with the scheduling-dependent parts (`seq`, `ts`, `dur`)
/// stripped, as in the obs determinism contract.
fn comparable(ev: &Event) -> String {
    format!("{:?}|{}|{:?}", ev.kind, ev.name, ev.fields)
}

fn sorted_multiset(events: &[Event]) -> Vec<String> {
    let mut keys: Vec<String> = events.iter().map(comparable).collect();
    keys.sort();
    keys
}

#[test]
fn overlapped_runs_match_serial_at_every_thread_count() {
    let (serial_rec, serial) = run(Scheme::RPoLv2, None);
    let serial_key = record_key(&serial);
    let serial_events = sorted_multiset(&serial_rec.events());
    assert!(!serial_key.is_empty(), "reference run produced no epochs");
    for threads in [1, 2, 8] {
        let (rec, report) = run(Scheme::RPoLv2, Some(threads));
        assert_eq!(
            record_key(&report),
            serial_key,
            "{threads}-thread run diverged from serial"
        );
        assert_eq!(
            serial.accuracy_curve(),
            report.accuracy_curve(),
            "{threads}-thread accuracy curve diverged"
        );
        assert_eq!(
            sorted_multiset(&rec.events()),
            serial_events,
            "{threads}-thread trace multiset diverged from serial"
        );
    }
}

#[test]
fn overlapped_runs_are_reproducible_across_thread_counts() {
    // Same seed, different widths: identical records (transitively via
    // the serial test, but asserted directly on a second scheme too).
    let (_, one) = run(Scheme::RPoLv1, Some(1));
    let (_, eight) = run(Scheme::RPoLv1, Some(8));
    assert_eq!(record_key(&one), record_key(&eight));
}

#[test]
fn baseline_scheme_runs_overlapped_without_verification() {
    // The baseline draws no sampling state; the overlapped runtime must
    // preserve that (no verdicts, zero proof bytes) at any width.
    let (_, serial) = run(Scheme::Baseline, None);
    let (_, parallel) = run(Scheme::Baseline, Some(4));
    assert_eq!(record_key(&serial), record_key(&parallel));
    for rec in &parallel.epochs {
        assert!(rec.report.verdicts.is_empty());
        assert_eq!(rec.report.comm.proof_bytes, 0);
    }
}

#[test]
fn executor_metrics_are_published_on_parallel_runs() {
    let (rec, _) = run(Scheme::RPoLv2, Some(2));
    let snapshot = rec.snapshot();
    assert!(
        snapshot.counter("exec.tasks") > 0,
        "executor task counter missing"
    );
    let threads = snapshot
        .gauges
        .iter()
        .find(|(name, _)| name.as_str() == "exec.threads")
        .map(|(_, v)| *v);
    assert_eq!(threads, Some(2.0));
    // Serial runs never construct the executor, so its metrics never
    // appear there.
    let (serial_rec, _) = run(Scheme::RPoLv2, None);
    assert_eq!(serial_rec.snapshot().counter("exec.tasks"), 0);
}
