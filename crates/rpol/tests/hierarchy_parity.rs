//! Flat-vs-hierarchical determinism contract (DESIGN.md §15): at equal
//! sampling parameters, the two-tier committee pipeline must produce
//! **bitwise identical** accept/reject/quarantine sets, verdicts,
//! communication accounting, and aggregated model (observed through the
//! accuracy bits) as the flat single-manager pipeline — serially and at
//! every executor width. Committees change where verification runs and
//! how much memory peaks, never what is decided.

use rpol::adversary::WorkerBehavior;
use rpol::committee::Hierarchy;
use rpol::pool::{MiningPool, PoolConfig, PoolReport, Scheme};

fn behaviors() -> Vec<WorkerBehavior> {
    vec![
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::Honest,
    ]
}

fn run(hierarchy: Option<Hierarchy>, threads: Option<usize>) -> PoolReport {
    let mut cfg = PoolConfig::tiny_demo(Scheme::RPoLv2);
    if let Some(h) = hierarchy {
        cfg = cfg.with_hierarchy(h);
    }
    match threads {
        None => MiningPool::new(cfg, behaviors()).run(),
        Some(t) => MiningPool::new(cfg, behaviors())
            .with_threads(t)
            .run_parallel(),
    }
}

/// The decision surface flat and hierarchical runs must agree on
/// bitwise: everything in the epoch report except the fields that *are*
/// the hierarchy's value proposition (peak memory and committee
/// accounting), plus the exact accuracy bits.
fn decision_key(report: &PoolReport) -> Vec<String> {
    report
        .epochs
        .iter()
        .map(|rec| {
            let mut body = rec.report.clone();
            body.peak_commit_bytes = 0;
            body.hierarchy = None;
            let body = rpol_json::to_string(&body).expect("serialize epoch report");
            format!("{body}|acc={:08x}", rec.test_accuracy.to_bits())
        })
        .collect()
}

#[test]
fn hierarchical_matches_flat_at_every_thread_count() {
    let flat = run(None, None);
    let flat_key = decision_key(&flat);
    assert!(!flat_key.is_empty(), "reference run produced no epochs");
    // Adversaries must actually be caught, or the parity is vacuous.
    assert!(flat.rejections() > 0, "no rejections to compare");
    let hierarchy = Hierarchy::new(3, 1).expect("valid hierarchy");
    let serial_hier = run(Some(hierarchy), None);
    assert_eq!(
        decision_key(&serial_hier),
        flat_key,
        "serial hierarchical run diverged from flat"
    );
    for threads in [1, 2, 8] {
        let hier = run(Some(hierarchy), Some(threads));
        assert_eq!(
            decision_key(&hier),
            flat_key,
            "{threads}-thread hierarchical run diverged from flat"
        );
        assert_eq!(
            flat.accuracy_curve(),
            hier.accuracy_curve(),
            "{threads}-thread accuracy curve diverged"
        );
    }
}

#[test]
fn committee_count_never_changes_decisions() {
    let flat_key = decision_key(&run(None, None));
    for committees in [1, 2, 6] {
        let hier = run(Some(Hierarchy::new(committees, 1).expect("valid")), Some(2));
        assert_eq!(
            decision_key(&hier),
            flat_key,
            "{committees}-committee run diverged from flat"
        );
    }
}

#[test]
fn hierarchical_runs_stream_with_bounded_peak_memory() {
    let flat = run(None, None);
    let hier = run(Some(Hierarchy::new(3, 1).expect("valid")), Some(2));
    for (a, b) in flat.epochs.iter().zip(&hier.epochs) {
        // Flat materializes every commitment at once; streaming peaks at
        // the largest committee's share of the same total.
        assert_eq!(a.report.peak_commit_bytes, a.report.commit_bytes_hashed);
        assert_eq!(a.report.commit_bytes_hashed, b.report.commit_bytes_hashed);
        assert!(
            b.report.peak_commit_bytes < a.report.peak_commit_bytes,
            "streaming did not lower the peak: {} vs {}",
            b.report.peak_commit_bytes,
            a.report.peak_commit_bytes
        );
        let h = b.report.hierarchy.expect("hierarchical runs report");
        assert_eq!(h.verdicts as usize, behaviors().len());
        assert!(h.audits > 0, "top tier audited nothing");
        assert_eq!(h.audit_mismatches, 0, "in-process sub-managers are honest");
        // Audit replay cost is real and charged to the hierarchy report,
        // never to the tier-1 accounting the parity key covers.
        assert!(h.audit_replayed_steps > 0);
        assert!(h.batch_bytes > 0);
    }
}
