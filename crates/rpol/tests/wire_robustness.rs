//! Property tests for the wire codec: round-trip identity and
//! panic-freedom on arbitrary (adversarial) input bytes.

use bytes::Bytes;
use proptest::prelude::*;
use rpol::commitment::EpochCommitment;
use rpol::committee::CommitteeBatch;
use rpol::verify::{RejectReason, VerificationOutcome, WorkerVerdict};
use rpol::wire::{
    classify_payload, decode_committee_batch, decode_epoch_task, decode_proof_request,
    decode_proof_response, decode_submission, encode_committee_batch, encode_epoch_task,
    encode_proof_request, encode_proof_response, encode_submission, open_frame, seal_frame,
    DecodeError, EpochTask, PayloadClass,
};
use rpol_lsh::{LshFamily, LshParams};

proptest! {
    #[test]
    fn submission_roundtrip_v1(
        weights in proptest::collection::vec(-1e3f32..1e3, 1..64),
        n_checkpoints in 1usize..8
    ) {
        let checkpoints: Vec<Vec<f32>> = (0..n_checkpoints)
            .map(|i| weights.iter().map(|w| w + i as f32).collect())
            .collect();
        let commitment = EpochCommitment::commit_v1(&checkpoints);
        let encoded = encode_submission(&weights, Some(&commitment));
        let (w, c) = decode_submission(encoded).expect("roundtrip");
        prop_assert_eq!(w, weights);
        prop_assert_eq!(c, Some(commitment));
    }

    #[test]
    fn submission_roundtrip_v2(
        weights in proptest::collection::vec(-1e3f32..1e3, 4..32),
        k in 1usize..4, l in 1usize..4, seed in any::<u64>()
    ) {
        let checkpoints = vec![weights.clone(), weights.iter().map(|w| w * 2.0).collect()];
        let family = LshFamily::generate(weights.len(), LshParams::new(1.0, k, l), seed);
        let commitment = EpochCommitment::commit_v2(&checkpoints, &family);
        let encoded = encode_submission(&weights, Some(&commitment));
        let (w, c) = decode_submission(encoded).expect("roundtrip");
        prop_assert_eq!(w, weights);
        prop_assert_eq!(c, Some(commitment));
    }

    /// The bulk weight framing must round-trip *bit-exactly* for odd
    /// (non-power-of-two, non-SIMD-width) element counts, including NaN
    /// and subnormal bit patterns that `==` cannot compare.
    #[test]
    fn weight_framing_roundtrip_odd_lengths(
        len_ix in 0usize..11,
        seed in any::<u64>()
    ) {
        const ODD_LENS: [usize; 11] = [1, 3, 5, 7, 9, 13, 31, 33, 63, 65, 127];
        let len = ODD_LENS[len_ix];
        let mut s = seed | 1;
        let weights: Vec<f32> = (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                f32::from_bits((s >> 32) as u32)
            })
            .collect();
        let (w, c) = decode_submission(encode_submission(&weights, None)).expect("roundtrip");
        prop_assert!(c.is_none());
        prop_assert_eq!(w.len(), weights.len());
        prop_assert!(w.iter().zip(&weights).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    /// A payload cut mid-`f32` (1–3 bytes missing from the tail) must fail
    /// with `Truncated` from the single up-front bounds check — never
    /// decode a partial value or panic.
    #[test]
    fn weights_with_truncated_tail_rejected(
        weights in proptest::collection::vec(-1e3f32..1e3, 1..32),
        drop in 1usize..4
    ) {
        let encoded = encode_submission(&weights, None);
        let cut = encoded.len() - drop;
        prop_assert_eq!(
            decode_submission(encoded.slice(0..cut)),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine except a panic.
        let _ = decode_submission(Bytes::from(bytes.clone()));
        let _ = decode_proof_request(Bytes::from(bytes.clone()));
        let _ = decode_proof_response(Bytes::from(bytes));
    }

    #[test]
    fn decoders_never_panic_on_truncations(
        weights in proptest::collection::vec(-1.0f32..1.0, 1..32),
        cut_ppm in 0u32..1_000_000
    ) {
        let checkpoints = vec![weights.clone()];
        let commitment = EpochCommitment::commit_v1(&checkpoints);
        let encoded = encode_submission(&weights, Some(&commitment));
        let cut = (encoded.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let _ = decode_submission(encoded.slice(0..cut));
    }

    #[test]
    fn epoch_task_roundtrip(
        epoch in any::<u64>(), nonce in any::<u64>(), steps in 1u32..10_000,
        weights in proptest::collection::vec(-1e3f32..1e3, 1..64)
    ) {
        let task = EpochTask { epoch, nonce, steps, global_weights: weights };
        let decoded = decode_epoch_task(encode_epoch_task(&task)).expect("roundtrip");
        prop_assert_eq!(decoded, task);
    }

    #[test]
    fn epoch_task_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = decode_epoch_task(Bytes::from(bytes));
    }

    #[test]
    fn framed_roundtrip_survives_any_payload(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let payload = Bytes::from(bytes);
        let opened = open_frame(seal_frame(&payload)).expect("clean frame opens");
        prop_assert_eq!(opened, payload);
    }

    #[test]
    fn corrupted_frames_error_never_panic(
        weights in proptest::collection::vec(-1e3f32..1e3, 1..32),
        pos_ppm in 0u32..1_000_000,
        mask in 1u8..=255
    ) {
        // Seeded single-byte corruption at an arbitrary position: the
        // frame checksum must catch every flip as a DecodeError.
        let framed = seal_frame(&encode_submission(&weights, None));
        let pos = (framed.len() as u64 * pos_ppm as u64 / 1_000_000) as usize;
        let mut bad = framed.to_vec();
        bad[pos.min(framed.len() - 1)] ^= mask;
        prop_assert!(open_frame(Bytes::from(bad)).is_err());
    }

    #[test]
    fn truncated_frames_error_never_panic(
        weights in proptest::collection::vec(-1e3f32..1e3, 1..32),
        cut_ppm in 0u32..1_000_000
    ) {
        let framed = seal_frame(&encode_submission(&weights, None));
        let cut = (framed.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        if cut < framed.len() {
            prop_assert!(open_frame(framed.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn request_response_roundtrip(
        samples in proptest::collection::vec(0usize..1000, 0..16),
        index in 0usize..1000,
        weights in proptest::collection::vec(-1e3f32..1e3, 0..64)
    ) {
        prop_assert_eq!(
            decode_proof_request(encode_proof_request(&samples)).expect("ok"),
            samples
        );
        let (ix, w) = decode_proof_response(encode_proof_response(index, &weights)).expect("ok");
        prop_assert_eq!(ix, index);
        prop_assert_eq!(w, weights);
    }
}

use rpol::wire::{
    decode_net_control, encode_net_control, BusyReason, FamilySpec, FrameAssembler, NetControl,
    NET_PROTOCOL,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding an incremental assembler one byte at a time must yield the
    /// exact payload sequence that whole-buffer framing round-trips —
    /// frame boundaries can land anywhere in a TCP stream.
    #[test]
    fn assembler_byte_at_a_time_matches_whole_buffer(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..6
        )
    ) {
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&seal_frame(&Bytes::from(payload.clone())));
        }

        let mut trickled = FrameAssembler::new(1 << 20);
        let mut got_trickled: Vec<Vec<u8>> = Vec::new();
        for &byte in &stream {
            trickled.push(&[byte]);
            while let Some(frame) = trickled.next_frame().expect("valid stream") {
                got_trickled.push(frame.to_vec());
            }
        }

        let mut whole = FrameAssembler::new(1 << 20);
        whole.push(&stream);
        let mut got_whole: Vec<Vec<u8>> = Vec::new();
        while let Some(frame) = whole.next_frame().expect("valid stream") {
            got_whole.push(frame.to_vec());
        }

        prop_assert_eq!(&got_trickled, &payloads);
        prop_assert_eq!(got_whole, payloads);
        prop_assert_eq!(trickled.buffered(), 0);
    }

    /// Every control-plane message survives an encode/decode round trip.
    #[test]
    fn net_control_roundtrip(
        variant in 0usize..11,
        a in any::<u64>(),
        b in any::<u64>(),
        workers in 1u32..1 << 20,
        r in 0.1f32..1e3,
        k in 1u32..16,
        l in 1u32..16,
    ) {
        let msg = match variant {
            0 => NetControl::Hello { worker: a as u32, protocol: NET_PROTOCOL },
            1 => NetControl::Welcome { workers },
            2 => NetControl::Busy {
                reason: if a.is_multiple_of(2) { BusyReason::PoolFull } else { BusyReason::Shedding },
            },
            3 => NetControl::Ping { nonce: a },
            4 => NetControl::Pong { nonce: a },
            // Schemes 0/1 carry no family, 2/3 must.
            5 => NetControl::CommitSpec { epoch: a, scheme: (b % 2) as u8, family: None },
            6 => NetControl::CommitSpec {
                epoch: a,
                scheme: 2 + (b % 2) as u8,
                family: Some(FamilySpec { r, k, l, seed: b }),
            },
            7 => NetControl::ProofSeq { seq: a },
            8 => NetControl::ChaosGone {
                kind: 1 + (b % 4) as u8,
                seq: a,
                payload_len: (a >> 32) as u32,
                raw_len: (b >> 32) as u32,
            },
            9 => NetControl::EpochEnd { epoch: a, status: (b % 3) as u8 },
            _ => NetControl::Shutdown,
        };
        let decoded = decode_net_control(encode_net_control(&msg)).expect("roundtrip");
        prop_assert_eq!(decoded, msg);
    }

    /// The control decoder rejects garbage without panicking.
    #[test]
    fn net_control_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let _ = decode_net_control(Bytes::from(bytes));
    }

    /// Committee verdict batches (DESIGN.md §15) round-trip through the
    /// tagged frame exactly: every verdict shape — accepts, double-checks,
    /// all reject reasons, unavailability — and the claimed root survive.
    #[test]
    fn committee_batch_roundtrip(
        epoch in any::<u64>(),
        committee in 0usize..1024,
        commit_bytes in any::<u64>(),
        shapes in proptest::collection::vec(
            (0u32..10_000, proptest::collection::vec((0u32..64, 0u8..7), 0..5)),
            1..9
        )
    ) {
        let verdicts: Vec<(usize, WorkerVerdict)> = shapes
            .iter()
            .enumerate()
            .map(|(i, (bytes, outcomes))| {
                let outcomes = outcomes
                    .iter()
                    .map(|&(sample, tag)| (sample as usize, outcome_of(tag)))
                    .collect();
                (
                    i * 7 + 1,
                    WorkerVerdict {
                        outcomes,
                        proof_bytes: *bytes as u64,
                        replayed_steps: (*bytes as u64).wrapping_mul(3),
                    },
                )
            })
            .collect();
        let batch = CommitteeBatch::from_verdicts(epoch, committee, verdicts, commit_bytes);
        let encoded = encode_committee_batch(&batch);
        prop_assert_eq!(classify_payload(&encoded), PayloadClass::CommitteeBatch);
        let decoded = decode_committee_batch(encoded).expect("roundtrip");
        prop_assert!(decoded.root_consistent());
        prop_assert_eq!(decoded, batch);
    }

    /// Truncating a batch frame anywhere must yield a clean decode error,
    /// never a panic or a silently shorter batch.
    #[test]
    fn committee_batch_truncations_rejected(
        n_verdicts in 1usize..6,
        cut_ppm in 0u32..1_000_000
    ) {
        let verdicts: Vec<(usize, WorkerVerdict)> = (0..n_verdicts)
            .map(|i| {
                (i, WorkerVerdict {
                    outcomes: vec![(i, VerificationOutcome::Accepted { double_checked: false })],
                    proof_bytes: 100,
                    replayed_steps: 5,
                })
            })
            .collect();
        let encoded = encode_committee_batch(
            &CommitteeBatch::from_verdicts(3, 0, verdicts, 64)
        );
        let cut = (encoded.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        if cut < encoded.len() {
            prop_assert!(decode_committee_batch(encoded.slice(0..cut)).is_err());
        }
    }

    /// The batch decoder survives arbitrary adversarial bytes.
    #[test]
    fn committee_batch_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = decode_committee_batch(Bytes::from(bytes));
    }
}

/// Maps a proptest tag to each canonical verdict-leaf outcome in turn.
fn outcome_of(tag: u8) -> VerificationOutcome {
    match tag {
        0 => VerificationOutcome::Accepted {
            double_checked: false,
        },
        1 => VerificationOutcome::Accepted {
            double_checked: true,
        },
        2 => VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch),
        3 => VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch),
        4 => VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
            distance: 2.5,
            beta: 0.5,
        }),
        5 => VerificationOutcome::Rejected(RejectReason::MalformedWeights),
        _ => VerificationOutcome::Unavailable,
    }
}

use rpol::wire::BufPool;

/// One generated wire segment: a payload plus how the "link" mutilates
/// its sealed frame before it hits the assembler.
fn mutilate(payload: &[u8], kind: u8, knob: u16) -> Vec<u8> {
    let mut framed: Vec<u8> = seal_frame(&Bytes::from(payload.to_vec())).to_vec();
    match kind {
        // Pristine.
        0 => framed,
        // One flipped byte: frames, then fails the checksum.
        1 => {
            let at = knob as usize % framed.len();
            framed[at] ^= 0x5A;
            framed
        }
        // Truncated mid-frame: the tail bleeds into whatever follows.
        2 => {
            let keep = 1 + knob as usize % framed.len();
            framed.truncate(keep);
            framed
        }
        // Raw junk, no framing at all.
        _ => {
            let mut junk = vec![0u8; 1 + knob as usize % 17];
            for (i, b) in junk.iter_mut().enumerate() {
                *b = (knob as u8).wrapping_add(i as u8).wrapping_mul(31);
            }
            junk
        }
    }
}

/// What one assembler pass produced, as comparable values.
#[derive(Debug, PartialEq, Eq)]
enum Step {
    Frame(Vec<u8>),
    Corrupt,
    Malformed,
}

/// Drains everything the assembler can currently yield.
fn drain(asm: &mut FrameAssembler, pool: Option<&mut BufPool>, out: &mut Vec<Step>) {
    // Reborrow the pool per call without consuming the Option.
    let mut pool = pool;
    loop {
        match asm.next_frame_with(pool.as_deref_mut()) {
            Ok(Some(frame)) => {
                let copy = frame.to_vec();
                if let Some(p) = pool.as_deref_mut() {
                    // Immediately recycle the payload buffer DIRTY — its
                    // stale bytes must never leak into a later frame.
                    p.put(Vec::from(frame));
                } else {
                    drop(frame);
                }
                out.push(Step::Frame(copy));
            }
            Ok(None) => break,
            Err(rpol::wire::DecodeError::ChecksumMismatch) => out.push(Step::Corrupt),
            Err(_) => out.push(Step::Malformed),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pooled-buffer path (recycled payload buffers, recycled
    /// assembler backing store, dirty reuse after corrupt and truncated
    /// frames) yields a byte-identical frame/error sequence to fresh
    /// allocation, at every chunking of the same mutilated stream.
    #[test]
    fn pooled_assembly_matches_fresh_allocation(
        segments in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..96), 0u8..4, any::<u16>()),
            1..12
        ),
        chunk in 1usize..97,
        backing_junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut stream = Vec::new();
        for (payload, kind, knob) in &segments {
            stream.extend_from_slice(&mutilate(payload, *kind, *knob));
        }

        let mut fresh = FrameAssembler::new(1 << 20);
        let mut got_fresh = Vec::new();
        for piece in stream.chunks(chunk) {
            fresh.push(piece);
            drain(&mut fresh, None, &mut got_fresh);
        }

        // The pooled run starts as dirty as possible: a recycled backing
        // store full of junk and a pool pre-seeded with stale buffers.
        let mut pool = BufPool::new();
        pool.put(vec![0xAA; 512]);
        pool.put(vec![0x55; 3]);
        let mut pooled = FrameAssembler::with_buffer(1 << 20, backing_junk);
        let mut got_pooled = Vec::new();
        for piece in stream.chunks(chunk) {
            pooled.push(piece);
            drain(&mut pooled, Some(&mut pool), &mut got_pooled);
        }

        prop_assert_eq!(&got_fresh, &got_pooled);
        prop_assert_eq!(fresh.buffered(), pooled.buffered());

        // Recycling the assembler's own backing store mid-stream is also
        // lossless: a second pass over the same stream through the reused
        // buffer reproduces the same sequence.
        let mut reused = FrameAssembler::with_buffer(1 << 20, pooled.into_buffer());
        let mut got_reused = Vec::new();
        for piece in stream.chunks(chunk) {
            reused.push(piece);
            drain(&mut reused, Some(&mut pool), &mut got_reused);
        }
        prop_assert_eq!(&got_fresh, &got_reused);

        // Every recycled frame was served from the pool once warm: after
        // the first few misses the hit path dominates.
        prop_assert!(pool.hits + pool.misses >= got_fresh.iter()
            .filter(|s| matches!(s, Step::Frame(_))).count() as u64);
    }
}
