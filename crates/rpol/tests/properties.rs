//! Property-based tests for RPoL's protocol invariants.

use proptest::prelude::*;
use rpol::adversary::spoof_next_checkpoint;
use rpol::amlayer::{AmLayer, AmLayerSpec};
use rpol::commitment::EpochCommitment;
use rpol::economics::EconomicModel;
use rpol::sampling::{evasion_probability, samples_for_soundness};
use rpol::tasks::TaskConfig;
use rpol::trainer::epoch_segments;
use rpol_crypto::Address;
use rpol_lsh::{LshFamily, LshParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn segments_partition_every_epoch(total in 1usize..200, interval in 1usize..20) {
        let segs = epoch_segments(total, interval);
        prop_assert_eq!(segs[0].start_step, 0);
        let mut expected_start = 0;
        for s in &segs {
            prop_assert_eq!(s.start_step, expected_start);
            prop_assert!(s.steps >= 1 && s.steps <= interval);
            expected_start += s.steps;
        }
        prop_assert_eq!(expected_start, total);
    }

    #[test]
    fn amlayer_weights_deterministic_per_address(seed in any::<u64>(), c in 0.05f32..0.95) {
        let spec = AmLayerSpec::for_channels(2);
        let addr = Address::from_seed(seed);
        let w1 = AmLayer::derive_weight_stack(&addr, spec, c);
        let w2 = AmLayer::derive_weight_stack(&addr, spec, c);
        prop_assert_eq!(&w1, &w2);
        let other = AmLayer::derive_weight_stack(&Address::from_seed(seed ^ 1), spec, c);
        prop_assert_ne!(w1, other);
    }

    #[test]
    fn amlayer_prefix_verification_sound(seed in any::<u64>()) {
        let cfg = TaskConfig::tiny();
        let owner = Address::from_seed(seed);
        let flat = cfg.build_encoded_model(&owner).flatten_params();
        prop_assert!(cfg.verify_model_owner(&flat, &owner, cfg.lipschitz_c));
        prop_assert!(!cfg.verify_model_owner(&flat, &Address::from_seed(seed ^ 0xFF), cfg.lipschitz_c));
    }

    #[test]
    fn commitments_bind_all_checkpoints(
        n in 2usize..8, dim in 4usize..32, seed in any::<u64>(), tamper in 0usize..8
    ) {
        let tamper = tamper % n;
        let checkpoints: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..dim).map(|j| ((seed as usize + i * dim + j) % 97) as f32 * 0.1).collect())
            .collect();
        let v1 = EpochCommitment::commit_v1(&checkpoints);
        let family = LshFamily::generate(dim, LshParams::new(0.5, 2, 2), seed);
        let v2 = EpochCommitment::commit_v2(&checkpoints, &family);
        prop_assert_eq!(v1.len(), n);
        prop_assert_eq!(v2.len(), n);
        let mut tampered = checkpoints.clone();
        tampered[tamper][0] += 100.0;
        prop_assert_ne!(v1, EpochCommitment::commit_v1(&tampered));
        prop_assert_ne!(v2, EpochCommitment::commit_v2(&tampered, &family));
    }

    #[test]
    fn evasion_probability_behaves(
        q in 1u32..60, h in 0.0f64..1.0, p in 0.0f64..1.0
    ) {
        let e = evasion_probability(q, h, p);
        prop_assert!((0.0..=1.0).contains(&e));
        if q > 1 {
            prop_assert!(e <= evasion_probability(q - 1, h, p) + 1e-12);
        }
    }

    #[test]
    fn soundness_bound_is_achieved(
        pr_err_pct in 1u32..50, h in 0.0f64..0.99, p in 0.0f64..0.5
    ) {
        let pr_err = pr_err_pct as f64 / 100.0;
        if let Some(q) = samples_for_soundness(pr_err, h, p) {
            prop_assert!(evasion_probability(q, h, p) <= pr_err + 1e-12);
            if q > 1 {
                // q is minimal.
                prop_assert!(evasion_probability(q - 1, h, p) > pr_err - 1e-12);
            }
        }
    }

    #[test]
    fn deterrence_q_actually_deters(h in 0.0f64..0.99) {
        let m = EconomicModel::paper_example();
        let q = m.samples_to_deter(h);
        if q != u32::MAX {
            prop_assert!(m.adversary_gain(h, q) <= 1e-9, "q = {q} fails at h = {h}");
        }
    }

    #[test]
    fn spoof_preserves_dimension_and_is_deterministic(
        dims in 1usize..16, n in 1usize..6, lambda in 0.0f32..1.0
    ) {
        let history: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..dims).map(|j| (i * dims + j) as f32 * 0.5).collect())
            .collect();
        let a = spoof_next_checkpoint(&history, lambda);
        let b = spoof_next_checkpoint(&history, lambda);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), dims);
        prop_assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn lsh_commitment_wire_size_scales_with_l(
        n in 1usize..6, l in 1usize..8
    ) {
        let dim = 8;
        let checkpoints: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32; dim]).collect();
        let family = LshFamily::generate(dim, LshParams::new(1.0, 2, l), 3);
        let c = EpochCommitment::commit_v2(&checkpoints, &family);
        prop_assert_eq!(c.wire_size(), n * l * 32);
    }
}
