//! Trace-determinism contract for the observability layer (DESIGN.md §11).
//!
//! * Two same-seed faulty-pool runs must export byte-identical traces and
//!   metrics snapshots.
//! * A parallel pool schedules worker training on threads, so `seq`/`ts`/
//!   `dur` may differ — but the *sorted multiset* of self-describing
//!   events (name + kind + fields) must equal the serial run's.
//! * Registry counters are published at the serial epoch-merge point, so
//!   they must equal the `EpochReport`/`PoolReport` totals exactly.

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, PoolReport, Scheme};
use rpol::transport::FaultConfig;
use rpol_obs::export::{events_to_jsonl, snapshot_to_json};
use rpol_obs::{Event, Recorder};
use std::sync::Arc;

fn faulty_config() -> PoolConfig {
    PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(FaultConfig::lossy(7))
}

fn behaviors() -> Vec<WorkerBehavior> {
    vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
    ]
}

fn run_pool(parallel: bool) -> (Arc<Recorder>, PoolReport) {
    let rec = Arc::new(Recorder::logical());
    let mut pool = MiningPool::new(faulty_config(), behaviors()).with_recorder(rec.clone());
    let report = if parallel {
        pool.run_parallel()
    } else {
        pool.run()
    };
    (rec, report)
}

/// An event with the scheduling-dependent parts (`seq`, `ts`, `dur`)
/// stripped: what a parallel run must agree with a serial run on.
fn comparable(ev: &Event) -> String {
    format!("{:?}|{}|{:?}", ev.kind, ev.name, ev.fields)
}

fn sorted_multiset(events: &[Event]) -> Vec<String> {
    let mut keys: Vec<String> = events.iter().map(comparable).collect();
    keys.sort();
    keys
}

#[test]
fn same_seed_serial_runs_are_byte_identical() {
    let (rec_a, _) = run_pool(false);
    let (rec_b, _) = run_pool(false);
    let trace_a = events_to_jsonl(&rec_a.events()).expect("serialize a");
    let trace_b = events_to_jsonl(&rec_b.events()).expect("serialize b");
    assert!(!trace_a.is_empty(), "faulty run must emit events");
    assert_eq!(trace_a, trace_b, "same seed must give identical traces");
    let metrics_a = snapshot_to_json(&rec_a.snapshot()).expect("snapshot a");
    let metrics_b = snapshot_to_json(&rec_b.snapshot()).expect("snapshot b");
    assert_eq!(
        metrics_a, metrics_b,
        "same seed must give identical metrics"
    );
}

#[test]
fn parallel_run_emits_same_sorted_event_multiset_as_serial() {
    let (serial, serial_report) = run_pool(false);
    let (parallel, parallel_report) = run_pool(true);
    assert_eq!(
        serial_report.total_comm_bytes(),
        parallel_report.total_comm_bytes(),
        "parallelism must not change protocol outcomes"
    );
    assert_eq!(
        sorted_multiset(&serial.events()),
        sorted_multiset(&parallel.events()),
        "parallel scheduling may reorder events but never change them"
    );
}

#[test]
fn registry_counters_equal_report_totals() {
    let (rec, report) = run_pool(false);
    let snapshot = rec.snapshot();
    let epochs = &report.epochs;
    assert_eq!(snapshot.counter("rpol.pool.epochs"), epochs.len() as u64);
    assert_eq!(
        snapshot.counter("rpol.pool.accepted"),
        report.acceptances() as u64
    );
    assert_eq!(
        snapshot.counter("rpol.pool.rejected"),
        report.rejections() as u64
    );
    let quarantined: u64 = epochs
        .iter()
        .map(|e| e.report.quarantined.len() as u64)
        .sum();
    assert_eq!(snapshot.counter("rpol.pool.quarantined"), quarantined);
    let double_checks: u64 = epochs.iter().map(|e| e.report.double_checks as u64).sum();
    assert_eq!(snapshot.counter("rpol.verify.double_checks"), double_checks);
    let replayed: u64 = epochs.iter().map(|e| e.report.replayed_steps).sum();
    assert_eq!(snapshot.counter("rpol.verify.replayed_steps"), replayed);

    let comm_total = snapshot.counter("rpol.comm.broadcast_bytes")
        + snapshot.counter("rpol.comm.submission_bytes")
        + snapshot.counter("rpol.comm.proof_bytes");
    assert_eq!(comm_total, report.total_comm_bytes());

    let transport = report.transport_totals();
    assert_eq!(
        snapshot.counter("rpol.transport.exchanges"),
        transport.exchanges
    );
    assert_eq!(
        snapshot.counter("rpol.transport.retries"),
        transport.retries
    );
    assert_eq!(
        snapshot.counter("rpol.transport.wire_bytes"),
        transport.wire_bytes
    );

    // Simulated per-phase time mirrors the SimClock totals exactly.
    let sim_total: f64 = epochs.iter().map(|e| e.transport_time.total()).sum();
    let gauge_total: f64 = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with("sim.clock.time."))
        .map(|(_, v)| v)
        .sum();
    assert!(
        (sim_total - gauge_total).abs() < 1e-9,
        "sim {sim_total} vs exported {gauge_total}"
    );
}

#[test]
fn hierarchy_counters_equal_report_totals() {
    // The two-tier committee pipeline publishes its own counters at the
    // same serial merge point as the flat ones — exported totals must
    // equal the per-epoch `HierarchyReport` sums exactly.
    use rpol::committee::Hierarchy;
    let config =
        PoolConfig::tiny_demo(Scheme::RPoLv2).with_hierarchy(Hierarchy::new(2, 1).expect("valid"));
    let rec = Arc::new(Recorder::logical());
    let report = MiningPool::new(config, behaviors())
        .with_recorder(rec.clone())
        .run();
    let snapshot = rec.snapshot();
    let h: Vec<_> = report
        .epochs
        .iter()
        .map(|e| e.report.hierarchy.expect("hierarchical run"))
        .collect();
    assert_eq!(
        snapshot.counter("rpol.committee.verdicts"),
        h.iter().map(|r| r.verdicts).sum::<u64>()
    );
    assert_eq!(
        snapshot.counter("rpol.committee.audits"),
        h.iter().map(|r| r.audits).sum::<u64>()
    );
    assert_eq!(
        snapshot.counter("rpol.committee.audit_mismatch"),
        h.iter().map(|r| r.audit_mismatches).sum::<u64>()
    );
    assert_eq!(
        snapshot.counter("rpol.committee.batch_bytes"),
        h.iter().map(|r| r.batch_bytes).sum::<u64>()
    );
    assert_eq!(
        snapshot.counter("rpol.pool.peak_commit_bytes"),
        report
            .epochs
            .iter()
            .map(|e| e.report.peak_commit_bytes)
            .sum::<u64>()
    );
    // Nothing audited more than it verified, and the in-process
    // sub-managers never lie.
    assert!(snapshot.counter("rpol.committee.audits") > 0);
    assert_eq!(snapshot.counter("rpol.committee.audit_mismatch"), 0);
}

#[test]
fn v3_byte_counters_equal_report_totals() {
    // The RPoLv3 data-plane counters — checkpoint bytes hashed into
    // quantized commitments and payload bytes the packed framing avoided —
    // are published at the same serial merge points as everything else, so
    // the exported totals must equal the EpochReport sums exactly.
    let rec = Arc::new(Recorder::logical());
    let config = PoolConfig::tiny_demo(Scheme::RPoLv3).with_faults(FaultConfig::lossy(7));
    let mut pool = MiningPool::new(config, behaviors()).with_recorder(rec.clone());
    let report = pool.run();
    let snapshot = rec.snapshot();

    let hashed: u64 = report
        .epochs
        .iter()
        .map(|e| e.report.commit_bytes_hashed)
        .sum();
    assert!(hashed > 0, "v3 commitments must hash checkpoint bytes");
    assert_eq!(snapshot.counter("rpol.commit.bytes_hashed"), hashed);

    let saved = report.transport_totals().bytes_saved;
    assert!(saved > 0, "packed framing must save payload bytes");
    assert_eq!(snapshot.counter("rpol.wire.bytes_saved"), saved);
}

#[test]
fn disabled_recorder_emits_nothing() {
    let rec = Arc::new(Recorder::logical());
    rec.disable();
    let mut pool = MiningPool::new(faulty_config(), behaviors()).with_recorder(rec.clone());
    let report = pool.run();
    assert!(report.total_comm_bytes() > 0);
    assert!(
        rec.events().is_empty(),
        "disabled recorder must stay silent"
    );
    assert!(rec.snapshot().counters.is_empty());
}
