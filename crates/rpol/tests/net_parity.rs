//! Socket-transport integration tests (DESIGN.md §14).
//!
//! The centrepiece is the chaos-proxy parity contract: the same pool
//! config and fault seed must produce *bit-identical* epoch reports —
//! quarantine sets, transport stats, simulated clock, accuracy — whether
//! the protocol runs over the simulated lossy link or over a real
//! loopback TCP connection with the chaos proxy layered in front.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rpol::adversary::WorkerBehavior;
use rpol::client::ClientTuning;
use rpol::committee::Hierarchy;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::server::{run_socket_pool, BindAddr, PoolServer, ServerConfig, SocketRunOptions};
use rpol::transport::{FaultConfig, FaultProfile};
use rpol::wire::{
    decode_net_control, encode_net_control, open_frame, seal_frame, FrameAssembler, NetControl,
    NET_PROTOCOL,
};
use rpol_obs::Recorder;

/// A fault config aggressive enough that some exchanges exhaust their
/// retry budget (so the parity test exercises quarantine decisions, not
/// just the happy path).
fn aggressive_faults(seed: u64) -> FaultConfig {
    let mut fault = FaultConfig::lossy(seed);
    fault.profile = FaultProfile::harsh();
    fault.policy.max_attempts = 2;
    fault
}

fn quick_tuning() -> ClientTuning {
    ClientTuning {
        read_timeout: Duration::from_millis(5),
        backoff_scale: 0.005,
        ..ClientTuning::default()
    }
}

#[test]
fn hierarchical_socket_run_matches_flat_simulated_run() {
    // The two-tier committee pipeline on the socket server must make the
    // same decisions as the flat in-process reference: the hierarchy
    // changes where verification runs, never what is decided — even when
    // the submissions arrive over real TCP.
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
    ];
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 2;

    let flat = MiningPool::new(config, behaviors.clone()).run();
    let hier_config = config.with_hierarchy(Hierarchy::new(2, 1).expect("valid hierarchy"));
    let socket = run_socket_pool(
        hier_config,
        behaviors,
        SocketRunOptions {
            client: quick_tuning(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    assert_eq!(flat.epochs.len(), socket.report.epochs.len());
    for (sim, sock) in flat.epochs.iter().zip(&socket.report.epochs) {
        assert_eq!(sim.report.accepted, sock.report.accepted, "accepted set");
        assert_eq!(sim.report.rejected, sock.report.rejected, "rejected set");
        assert_eq!(sim.report.quarantined, sock.report.quarantined);
        assert_eq!(sim.report.verdicts, sock.report.verdicts, "verdicts");
        assert_eq!(sim.report.double_checks, sock.report.double_checks);
        assert_eq!(sim.report.replayed_steps, sock.report.replayed_steps);
        assert_eq!(
            sim.test_accuracy.to_bits(),
            sock.test_accuracy.to_bits(),
            "global model must evolve identically"
        );
        let h = sock.report.hierarchy.expect("hierarchical socket epoch");
        assert_eq!(h.committees, 2);
        assert_eq!(h.verdicts as usize, sim.report.verdicts.len());
        assert!(h.audits > 0, "top tier audited nothing");
        assert_eq!(h.audit_mismatches, 0, "in-process sub-managers are honest");
        assert!(
            sock.report.peak_commit_bytes < sock.report.commit_bytes_hashed,
            "committee streaming should not materialize every commitment"
        );
    }
    assert!(
        flat.rejections() > 0,
        "parity is vacuous without rejections"
    );
}

#[test]
fn socket_run_matches_simulated_run_bit_for_bit() {
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::Honest,
    ];
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 2;
    config = config.with_faults(aggressive_faults(0xC0FFEE));

    let simulated = MiningPool::new(config, behaviors.clone()).run();
    let socket = run_socket_pool(
        config,
        behaviors,
        SocketRunOptions {
            client: quick_tuning(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    assert_eq!(simulated.epochs.len(), socket.report.epochs.len());
    let mut quarantine_events = 0;
    for (sim, sock) in simulated.epochs.iter().zip(&socket.report.epochs) {
        assert_eq!(sim.report.accepted, sock.report.accepted, "accepted set");
        assert_eq!(sim.report.rejected, sock.report.rejected, "rejected set");
        assert_eq!(
            sim.report.quarantined, sock.report.quarantined,
            "quarantine decisions must be bitwise-identical"
        );
        assert_eq!(
            sim.report.transport, sock.report.transport,
            "TransportStats"
        );
        assert_eq!(
            sim.transport_time, sock.transport_time,
            "simulated clock must accumulate identically"
        );
        assert_eq!(sim.report.comm, sock.report.comm, "CommStats");
        assert_eq!(
            sim.report.commit_bytes_hashed,
            sock.report.commit_bytes_hashed
        );
        assert_eq!(sim.report.double_checks, sock.report.double_checks);
        assert_eq!(sim.report.replayed_steps, sock.report.replayed_steps);
        assert_eq!(
            sim.test_accuracy.to_bits(),
            sock.test_accuracy.to_bits(),
            "global model must evolve identically"
        );
        quarantine_events += sim.report.quarantined.len();
    }
    assert!(
        quarantine_events > 0,
        "fixture must exercise quarantines to be meaningful (got none)"
    );
    // The ghosts the chaos proxy actually wrote crossed the real socket
    // and were rejected by the receivers' checksums.
    let client_corrupt: u64 = socket.clients.iter().map(|c| c.corrupt_frames).sum();
    assert!(
        socket.net.corrupt_frames + client_corrupt > 0,
        "harsh profile must have produced ghost frames on the wire"
    );
}

#[test]
fn sixty_five_workers_full_epoch_over_loopback() {
    let n = 65;
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    config.epochs = 1;
    config.steps_per_epoch = 2;
    config.q_samples = 1;
    config.train_samples = (n + 1) * 4;
    config.test_samples = 16;

    let outcome = run_socket_pool(
        config,
        vec![WorkerBehavior::Honest; n],
        SocketRunOptions {
            server: ServerConfig {
                parallel_verify: true,
                ..ServerConfig::default()
            },
            client: quick_tuning(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    assert_eq!(outcome.report.epochs.len(), 1);
    let epoch = &outcome.report.epochs[0];
    assert_eq!(
        epoch.report.accepted.len(),
        n,
        "all honest workers accepted"
    );
    assert!(epoch.report.rejected.is_empty());
    assert!(epoch.report.quarantined.is_empty());
    assert!(
        outcome.net.handshakes >= n as u64,
        "one handshake per worker"
    );
    assert_eq!(outcome.clients.len(), n);
    for client in &outcome.clients {
        assert!(
            client.clean_shutdown,
            "worker {} saw no shutdown",
            client.worker_id
        );
        assert_eq!(client.epochs_trained, 1);
        assert!(client.storage_bytes > 0, "checkpoints live client-side");
    }
    assert_eq!(outcome.report.worker_storage_bytes, 0);
}

#[test]
fn load_shedding_quarantines_over_budget_submissions() {
    let n = 3;
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    config.epochs = 1;

    let outcome = run_socket_pool(
        config,
        vec![WorkerBehavior::Honest; n],
        SocketRunOptions {
            server: ServerConfig {
                max_inflight: 0, // shed everything
                ..ServerConfig::default()
            },
            client: quick_tuning(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    let epoch = &outcome.report.epochs[0];
    assert!(epoch.report.accepted.is_empty(), "everything was shed");
    assert!(
        epoch.report.rejected.is_empty(),
        "shed is quarantine, not conviction"
    );
    assert_eq!(epoch.report.quarantined.len(), n);
    assert_eq!(outcome.net.shed_submissions, n as u64);
    let busy: u64 = outcome.clients.iter().map(|c| c.busy_rejects).sum();
    assert_eq!(busy, n as u64, "every client heard Busy {{ Shedding }}");
}

/// Writes one sealed control frame and reads one back (tiny blocking
/// helper for the raw-socket tests).
fn send_control(stream: &mut TcpStream, msg: &NetControl) {
    let framed = seal_frame(&encode_net_control(msg));
    stream.write_all(&framed).expect("write frame");
}

fn read_control(stream: &mut TcpStream) -> NetControl {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        let k = stream.read(&mut chunk).expect("read frame");
        assert!(k > 0, "peer closed before a frame arrived");
        buf.extend_from_slice(&chunk[..k]);
        // Frames here are tiny; try a whole-buffer decode once the header
        // could be complete.
        if buf.len() >= 16 {
            if let Ok(payload) = open_frame(bytes::Bytes::from(buf.clone())) {
                return decode_net_control(payload).expect("control frame");
            }
        }
    }
}

#[test]
fn slowloris_is_swept_and_oldest_idle_is_evicted() {
    let config = PoolConfig::tiny_demo(Scheme::Baseline);
    let pool = MiningPool::new(config, vec![WorkerBehavior::Honest]);
    let server = PoolServer::bind(
        pool,
        &BindAddr::loopback(),
        ServerConfig {
            max_connections: 1,
            handshake_timeout: Duration::from_millis(50),
            evict_min_idle: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // A slowloris peer: connects, never says Hello. The sweep must close
    // it at the handshake deadline (driven by wait_for_workers' pumping).
    let _silent = TcpStream::connect(&addr).expect("connect");
    let err = server
        .wait_for_workers(1, Duration::from_millis(300))
        .expect_err("nobody handshakes");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    assert!(
        server.net_stats().handshake_timeouts >= 1,
        "silent connection must be swept: {:?}",
        server.net_stats()
    );

    // An established connection at the cap: the newcomer wins because the
    // incumbent is idle past the (zero) eviction threshold.
    let mut first = TcpStream::connect(&addr).expect("connect first");
    send_control(
        &mut first,
        &NetControl::Hello {
            worker: 0,
            protocol: NET_PROTOCOL,
        },
    );
    server
        .wait_for_workers(1, Duration::from_secs(2))
        .expect("first handshake");
    assert!(matches!(
        read_control(&mut first),
        NetControl::Welcome { .. }
    ));

    let mut second = TcpStream::connect(&addr).expect("connect second");
    send_control(
        &mut second,
        &NetControl::Hello {
            worker: 0,
            protocol: NET_PROTOCOL,
        },
    );
    server
        .wait_for_workers(1, Duration::from_secs(2))
        .expect("second handshake");
    assert!(matches!(
        read_control(&mut second),
        NetControl::Welcome { .. }
    ));
    assert!(
        server.net_stats().evicted >= 1,
        "the idle incumbent must have been evicted: {:?}",
        server.net_stats()
    );
}

#[test]
fn pool_full_refusal_when_nothing_is_idle_enough() {
    let config = PoolConfig::tiny_demo(Scheme::Baseline);
    let pool = MiningPool::new(config, vec![WorkerBehavior::Honest]);
    let server = PoolServer::bind(
        pool,
        &BindAddr::loopback(),
        ServerConfig {
            max_connections: 1,
            evict_min_idle: Duration::from_secs(3600), // nothing evictable
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut first = TcpStream::connect(&addr).expect("connect first");
    send_control(
        &mut first,
        &NetControl::Hello {
            worker: 0,
            protocol: NET_PROTOCOL,
        },
    );
    server
        .wait_for_workers(1, Duration::from_secs(2))
        .expect("first handshake");
    assert!(matches!(
        read_control(&mut first),
        NetControl::Welcome { .. }
    ));

    let mut second = TcpStream::connect(&addr).expect("connect second");
    // Pump until the newcomer has been refused.
    let _ = server.wait_for_workers(2, Duration::from_millis(300));
    assert!(
        server.net_stats().busy_rejects >= 1,
        "newcomer must be refused at the cap: {:?}",
        server.net_stats()
    );
    assert!(matches!(read_control(&mut second), NetControl::Busy { .. }));
}

#[test]
fn exported_net_counters_equal_final_net_stats() {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    config.epochs = 2;
    config = config.with_faults(FaultConfig::lossy(0xBEEF));
    let rec = Arc::new(Recorder::logical());

    let outcome = run_socket_pool(
        config,
        vec![WorkerBehavior::Honest; 2],
        SocketRunOptions {
            client: quick_tuning(),
            recorder: Some(rec.clone()),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    // The per-epoch `net.*` deltas must sum to exactly the final socket
    // counters — same invariant the pool's rpol.* exports already keep.
    let snapshot = rec.snapshot();
    let net = outcome.net;
    let expected: &[(&str, u64)] = &[
        ("net.accepted", net.accepted),
        ("net.handshakes", net.handshakes),
        ("net.busy_rejects", net.busy_rejects),
        ("net.shed_submissions", net.shed_submissions),
        ("net.evicted", net.evicted),
        ("net.handshake_timeouts", net.handshake_timeouts),
        ("net.idle_closed", net.idle_closed),
        ("net.disconnects", net.disconnects),
        ("net.frames_in", net.frames_in),
        ("net.frames_out", net.frames_out),
        ("net.bytes_in", net.bytes_in),
        ("net.bytes_out", net.bytes_out),
        ("net.corrupt_frames", net.corrupt_frames),
        ("net.malformed_frames", net.malformed_frames),
        ("net.heartbeats", net.heartbeats),
        ("net.buf_pool_hits", net.buf_pool_hits),
        ("net.buf_pool_misses", net.buf_pool_misses),
        ("net.buf_pool_bytes_reused", net.buf_pool_bytes_reused),
    ];
    for &(name, want) in expected {
        assert_eq!(
            snapshot.counter(name),
            want,
            "exported {name} diverges from the server's own totals"
        );
    }
    // And the prefix view exposes the whole family (epoch_ms rides a
    // histogram, not a counter, so it is not in this list).
    let family = snapshot.counters_with_prefix("net.");
    assert_eq!(family.len(), expected.len());
}

#[test]
fn single_frame_budget_still_completes_an_epoch() {
    // The stingiest legal frame budget: one frame per connection per
    // sweep. A client's handshake and submission burst must still drain
    // — frames parked in the assembler parse on later sweeps without the
    // peer sending another byte — so the epoch completes identically.
    let n = 3;
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
    config.epochs = 1;

    let outcome = run_socket_pool(
        config,
        vec![WorkerBehavior::Honest; n],
        SocketRunOptions {
            server: ServerConfig {
                max_frames_per_conn_per_pump: 1,
                ..ServerConfig::default()
            },
            client: quick_tuning(),
            ..SocketRunOptions::default()
        },
    )
    .expect("socket run");

    let epoch = &outcome.report.epochs[0];
    assert_eq!(
        epoch.report.accepted.len(),
        n,
        "all honest workers accepted"
    );
    assert!(epoch.report.rejected.is_empty());
    assert!(epoch.report.quarantined.is_empty());
}

#[test]
fn pre_buffered_frame_burst_drains_across_sweeps() {
    let config = PoolConfig::tiny_demo(Scheme::Baseline);
    let pool = MiningPool::new(config, vec![WorkerBehavior::Honest]);
    let server = PoolServer::bind(
        pool,
        &BindAddr::loopback(),
        ServerConfig {
            max_frames_per_conn_per_pump: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    send_control(
        &mut stream,
        &NetControl::Hello {
            worker: 0,
            protocol: NET_PROTOCOL,
        },
    );
    server
        .wait_for_workers(1, Duration::from_secs(2))
        .expect("handshake");
    assert!(matches!(
        read_control(&mut stream),
        NetControl::Welcome { .. }
    ));

    // Nine pings in one burst: the first sweep reads them all off the
    // socket but may only parse two. Keep pumping WITHOUT writing
    // another byte — the leftovers must drain from the assembler alone.
    let pings = 9u64;
    let mut burst = Vec::new();
    for nonce in 0..pings {
        burst.extend_from_slice(&seal_frame(&encode_net_control(&NetControl::Ping {
            nonce,
        })));
    }
    stream.write_all(&burst).expect("write burst");
    // Alternate short reactor sweeps with non-blocking-ish reads: the
    // heartbeat counter ticks when a ping parses, but its pong may still
    // be queued outbound until a later sweep flushes it — so pumping has
    // to continue while the pongs are read back. Several pongs can share
    // one TCP segment, so reassembly goes through the wire assembler.
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut assembler = FrameAssembler::new(1 << 16);
    let mut pongs = Vec::new();
    let mut chunk = [0u8; 512];
    while (pongs.len() as u64) < pings {
        assert!(
            std::time::Instant::now() < deadline,
            "pre-buffered pings never fully drained: {} pongs, {:?}",
            pongs.len(),
            server.net_stats()
        );
        // Pumps the reactor for ~20ms (the target of 2 workers is never
        // reached; only the sweeps matter here).
        let _ = server.wait_for_workers(2, Duration::from_millis(20));
        match stream.read(&mut chunk) {
            Ok(0) => panic!("peer closed before every pong arrived"),
            Ok(k) => assembler.push(&chunk[..k]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
        while let Some(payload) = assembler.next_frame().expect("clean frames") {
            match decode_net_control(payload).expect("control frame") {
                NetControl::Pong { nonce } => pongs.push(nonce),
                other => panic!("expected pong, got {other:?}"),
            }
        }
    }
    assert_eq!(server.net_stats().heartbeats, pings);
    // Every ping got its pong back over the socket, in nonce order.
    assert_eq!(pongs, (0..pings).collect::<Vec<_>>());
}

/// Drives one full socket run with an explicit reactor backend and a
/// floor of `idle` extra raw TCP connections (connected, never
/// handshaking) occupying the connection table — then returns the epoch
/// reports, final socket counters, and the stitched multi-process trace.
fn run_with_backend(
    backend: rpol::server::ReactorBackend,
    config: PoolConfig,
    behaviors: &[WorkerBehavior],
    idle: usize,
) -> (rpol::pool::PoolReport, rpol::server::NetStats, String) {
    use rpol_obs::export::events_to_jsonl;
    use rpol_obs::stitch::stitch;
    use std::sync::atomic::{AtomicBool, Ordering};

    let server_rec = Arc::new(Recorder::logical());
    let client_recs: Vec<Arc<Recorder>> = behaviors
        .iter()
        .map(|_| Arc::new(Recorder::logical()))
        .collect();
    let pool = MiningPool::new(config, behaviors.to_vec()).with_recorder(server_rec.clone());
    let server_cfg = ServerConfig {
        backend,
        // The idle floor must never be swept or evicted: timeout churn
        // would make accept/disconnect counters timing-dependent.
        max_connections: 4096,
        handshake_timeout: Duration::from_secs(3600),
        idle_timeout: Duration::from_secs(3600),
        ..ServerConfig::default()
    };
    let mut server = PoolServer::bind(pool, &BindAddr::loopback(), server_cfg).expect("bind");
    let addr = server.local_addr();

    // Raw idle connections, opened by a side thread while the main
    // thread pumps the reactor (the listener backlog is far smaller than
    // the floor, so accepting must interleave with connecting).
    let idle_done = Arc::new(AtomicBool::new(false));
    let idle_thread = {
        let addr = addr.clone();
        let done = Arc::clone(&idle_done);
        std::thread::spawn(move || {
            let conns: Vec<TcpStream> = (0..idle)
                .map(|_| TcpStream::connect(&addr).expect("idle connect"))
                .collect();
            done.store(true, Ordering::Release);
            conns // held open until joined after the run
        })
    };
    while !idle_done.load(std::sync::atomic::Ordering::Acquire) {
        // Target above the roster size: never met, pumps for 20ms.
        let _ = server.wait_for_workers(behaviors.len() + 1, Duration::from_millis(20));
    }

    let tuning = ClientTuning {
        heartbeat_interval: Duration::from_secs(3600),
        ..quick_tuning()
    };
    let handles: Vec<std::thread::JoinHandle<rpol::client::ClientReport>> =
        MiningPool::new(config, behaviors.to_vec())
            .into_workers()
            .into_iter()
            .enumerate()
            .map(|(i, worker)| {
                let addr = addr.clone();
                let tuning = tuning.clone();
                let rec = client_recs[i].clone();
                std::thread::spawn(move || {
                    rpol::client::WorkerClient::new(config, worker, addr, tuning)
                        .with_recorder(rec)
                        .run()
                })
            })
            .collect();
    let report = server.run().expect("socket run");
    let net = server.net_stats();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(idle_thread.join().expect("idle connector"));

    let mut traces = vec![(
        "manager".to_string(),
        events_to_jsonl(&server_rec.events()).expect("manager trace"),
    )];
    for (i, rec) in client_recs.iter().enumerate() {
        traces.push((
            format!("worker-{i}"),
            events_to_jsonl(&rec.events()).expect("worker trace"),
        ));
    }
    let refs: Vec<(&str, &str)> = traces
        .iter()
        .map(|(name, jsonl)| (name.as_str(), jsonl.as_str()))
        .collect();
    (report, net, stitch(&refs).expect("stitch"))
}

#[test]
fn readiness_and_scan_reactors_are_bitwise_identical_at_1024_connections() {
    // The tentpole parity contract: with the same seed, harsh faults, an
    // adversary in the roster, and 1024 sockets on the reactor (16 real
    // workers + 1008 idle connections the readiness backend must skip),
    // the scan and readiness backends must be indistinguishable in every
    // protocol-visible way — classification sets, transport accounting,
    // the global model, socket counters, and the stitched trace bytes.
    let n = 16;
    let idle = 1008;
    let mut behaviors = vec![WorkerBehavior::Honest; n];
    behaviors[5] = WorkerBehavior::ReplayPrevious;
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = 1;
    config.train_samples = (n + 1) * 4;
    config.test_samples = 16;
    config = config.with_faults(aggressive_faults(0xFACADE));

    let (scan_report, scan_net, scan_trace) =
        run_with_backend(rpol::server::ReactorBackend::Scan, config, &behaviors, idle);
    let (ready_report, ready_net, ready_trace) = run_with_backend(
        rpol::server::ReactorBackend::Readiness,
        config,
        &behaviors,
        idle,
    );

    assert_eq!(scan_report.epochs.len(), ready_report.epochs.len());
    for (s, r) in scan_report.epochs.iter().zip(&ready_report.epochs) {
        assert_eq!(s.report.accepted, r.report.accepted, "accepted set");
        assert_eq!(s.report.rejected, r.report.rejected, "rejected set");
        assert_eq!(s.report.quarantined, r.report.quarantined, "quarantine");
        assert_eq!(s.report.verdicts, r.report.verdicts, "verdicts");
        assert_eq!(s.report.transport, r.report.transport, "TransportStats");
        assert_eq!(s.transport_time, r.transport_time, "simulated clock");
        assert_eq!(s.report.comm, r.report.comm, "CommStats");
        assert_eq!(
            s.test_accuracy.to_bits(),
            r.test_accuracy.to_bits(),
            "global model must evolve identically across backends"
        );
    }

    // Socket counters agree except the backend-dependent buffer-pool
    // trio (different service batching ⇒ different recycling) and the
    // timing-racy disconnect tally: zero both out, then compare whole.
    let neutral = |mut net: rpol::server::NetStats| {
        net.buf_pool_hits = 0;
        net.buf_pool_misses = 0;
        net.buf_pool_bytes_reused = 0;
        net.disconnects = 0;
        net
    };
    assert_eq!(neutral(scan_net), neutral(ready_net), "NetStats");
    assert_eq!(
        scan_net.accepted,
        (n + idle) as u64,
        "the idle floor and every worker were accepted"
    );
    assert!(
        scan_net.corrupt_frames > 0,
        "harsh faults must put ghosts on the wire"
    );
    assert!(
        !scan_report.epochs[0].report.quarantined.is_empty()
            || !scan_report.epochs[0].report.rejected.is_empty(),
        "fixture must exercise non-accept classifications"
    );

    assert_eq!(
        scan_trace, ready_trace,
        "stitched traces must be byte-identical across reactor backends"
    );
}
