//! Adaptive LSH calibration (§V-C).
//!
//! Reproduction errors drift across epochs, optimizers and hardware, so
//! the manager re-estimates the tolerance bound `α` every epoch: it runs
//! its *own* i.i.d. sub-task once on each of the pool's top-2 GPUs — the
//! pairing that maximizes observed errors — replaying each checkpoint
//! segment on the second GPU from the first GPU's checkpoints, exactly
//! mirroring verification. Then
//!
//! * `α` = mean + standard deviation of the per-checkpoint distances,
//! * `β` = `x·α + y` (defaults `x = 5`, `y = 0`),
//! * LSH parameters solve Eq. 6 under `k·l ≤ K_lsh`.

use crate::tasks::TaskConfig;
use crate::trainer::{epoch_segments, LocalTrainer};
use crate::verify::euclidean;
use rpol_exec::Executor;
use rpol_lsh::tuning::{tune, TuningConfig, TuningOutcome};
use rpol_lsh::{LshFamily, LshParams};
use rpol_nn::data::SyntheticImages;
use rpol_obs::{span, Recorder};
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::stats::RunningStats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The per-epoch calibration broadcast: distance bounds plus the LSH
/// family parameters and seed every worker must use for its commitment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Epoch this calibration applies to.
    pub epoch: u64,
    /// Reproduction-error tolerance `α`.
    pub alpha: f32,
    /// Spoof-rejection threshold `β = x·α + y`.
    pub beta: f32,
    /// Optimal LSH parameters for `(α, β)`.
    pub params: LshParams,
    /// Seed from which workers and manager derive the identical family.
    pub family_seed: u64,
    /// Theoretical operating point of the tuned family.
    pub tuning: TuningOutcome,
    /// Largest single per-checkpoint error observed during calibration.
    pub max_observed_error: f32,
    /// Mean of the calibration errors (they are normal per §VII-C, so
    /// mean/std parameterize the Eq. 5 density `p_repr`).
    pub mean_error: f32,
    /// Standard deviation of the calibration errors.
    pub std_error: f32,
}

impl CalibrationResult {
    /// Materializes the epoch's LSH family for a `dim`-dimensional model.
    pub fn family(&self, dim: usize) -> LshFamily {
        LshFamily::generate(dim, self.params, self.family_seed)
    }

    /// The Eq. 5 *expected* false-negative rate under the measured error
    /// distribution: `∫₀^β p_repr(c)·(1 − Pr_lsh(c)) dc` with `p_repr`
    /// the normal density fitted to the calibration errors (§VII-C found
    /// reproduction errors normal). This refines the worst-case proxy
    /// `1 − Pr_lsh(α)` reported in [`TuningOutcome`].
    pub fn expected_fnr(&self) -> f64 {
        let (mean, std) = (self.mean_error as f64, (self.std_error as f64).max(1e-12));
        rpol_lsh::probability::expected_fnr(
            move |c| rpol_tensor::stats::norm_pdf((c - mean) / std),
            self.beta as f64,
            self.params.r as f64,
            self.params.k,
            self.params.l,
            512,
        )
    }

    /// The Eq. 5 expected false-positive rate for spoof distances modelled
    /// as normal around `spoof_mean` with deviation `spoof_std` (measured
    /// from an attack study such as Fig. 5):
    /// `∫_β^∞ p_spoof(c)·Pr_lsh(c) dc`.
    ///
    /// # Panics
    ///
    /// Panics unless `spoof_mean > β` (a spoof distribution centred inside
    /// the acceptance region is not a spoof model).
    pub fn expected_fpr(&self, spoof_mean: f32, spoof_std: f32) -> f64 {
        assert!(
            spoof_mean > self.beta,
            "spoof distances must centre beyond beta"
        );
        let (mean, std) = (spoof_mean as f64, (spoof_std as f64).max(1e-12));
        rpol_lsh::probability::expected_fpr(
            move |c| rpol_tensor::stats::norm_pdf((c - mean) / std),
            self.beta as f64,
            mean + 6.0 * std,
            self.params.r as f64,
            self.params.k,
            self.params.l,
            512,
        )
    }
}

/// Calibration policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPolicy {
    /// Multiplier `x` in `β = x·α + y` (paper experiments use 5).
    pub beta_x: f32,
    /// Offset `y` in `β = x·α + y`.
    pub beta_y: f32,
    /// Replay of a segment can be perturbed by a *constant-magnitude*
    /// event — a single ReLU gate flipping for one batch sample changes
    /// that step's gradient by `O(‖Δθ_segment‖ / batch)` regardless of how
    /// small the hardware noise is. β is therefore floored at
    /// `progress_floor · max‖Δθ_segment‖` so these rare flips never reject
    /// honest workers. Spoof distances sit near `‖Δθ_segment‖` itself
    /// (Fig. 5), an order of magnitude above the floor.
    pub progress_floor: f32,
    /// Compute budget `K_lsh` on `k·l` (paper: 16).
    pub k_lsh: usize,
}

impl Default for CalibrationPolicy {
    fn default() -> Self {
        Self {
            beta_x: 5.0,
            beta_y: 0.0,
            progress_floor: 0.05,
            k_lsh: 16,
        }
    }
}

/// The manager-side calibrator: owns the manager's i.i.d. shard and the
/// top-2 GPU profiles.
pub struct Calibrator<'a> {
    config: &'a TaskConfig,
    shard: &'a SyntheticImages,
    policy: CalibrationPolicy,
    gpus: (GpuModel, GpuModel),
    recorder: Arc<Recorder>,
    quantized: bool,
}

impl<'a> Calibrator<'a> {
    /// Creates a calibrator using the pool's top-2 registered GPUs.
    pub fn new(
        config: &'a TaskConfig,
        shard: &'a SyntheticImages,
        policy: CalibrationPolicy,
        gpus: (GpuModel, GpuModel),
    ) -> Self {
        Self {
            config,
            shard,
            policy,
            gpus,
            recorder: rpol_obs::noop().clone(),
            quantized: false,
        }
    }

    /// Calibrates on the RPoLv3 quantized trajectory: the sub-task's
    /// checkpoints are snapped to the bf16 lattice and every replay is
    /// snapped the same way, so `α` and `β` absorb the quantization error
    /// under exactly the conditions verification later reproduces.
    #[must_use]
    pub fn quantized(mut self, on: bool) -> Self {
        self.quantized = on;
        self
    }

    /// Attaches a recorder; the calibrator then emits a
    /// `rpol.calibrate.trace` span around its sub-task training run and
    /// one `rpol.calibrate.unit` span per `(replay, segment)` replay
    /// measurement. Fields are deterministic, so traces stay
    /// multiset-identical across thread counts.
    #[must_use]
    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = rec;
        self
    }

    /// Runs the calibration sub-task for one epoch.
    ///
    /// Trains from `global_weights` for `steps` on GPU A, then replays each
    /// segment on GPU B from GPU A's checkpoints; the per-checkpoint
    /// distances are the measured reproduction errors. The trained result
    /// is *useful work* — the caller may aggregate it like any worker
    /// update (the paper notes the sub-task "is not useless work").
    ///
    /// Returns the calibration plus GPU A's trained final weights.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn calibrate(
        &self,
        global_weights: &[f32],
        nonce: u64,
        steps: usize,
        epoch: u64,
    ) -> (CalibrationResult, Vec<f32>) {
        self.calibrate_with(global_weights, nonce, steps, epoch, None)
    }

    /// Like [`calibrate`], optionally fanning the replay measurements out
    /// over a persistent executor.
    ///
    /// Each of the `2 × segments` replay units is independent: it replays
    /// one segment from GPU A's checkpoint with a **fresh** noise injector
    /// seeded per replay pass — exactly the conditions a verifier later
    /// reproduces, where every sampled segment starts from a freshly
    /// cloned injector. Distances are reduced into the running statistics
    /// in `(replay pass, segment)` index order on the calling thread, so
    /// the result is bitwise identical whether the units run serially or
    /// on any number of pool threads.
    ///
    /// [`calibrate`]: Calibrator::calibrate
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn calibrate_with(
        &self,
        global_weights: &[f32],
        nonce: u64,
        steps: usize,
        epoch: u64,
        exec: Option<&Executor>,
    ) -> (CalibrationResult, Vec<f32>) {
        assert!(steps > 0, "empty calibration run");
        // Run A: train on the faster GPU.
        let mut model_a = self.config.build_model_like(global_weights);
        let mut trainer_a = LocalTrainer::new(
            self.config,
            self.shard,
            NoiseInjector::new(self.gpus.0, epoch.wrapping_mul(0x9E37).wrapping_add(1)),
        );
        let trace = {
            let _g = span!(self.recorder, "rpol.calibrate.trace", epoch, steps);
            if self.quantized {
                trainer_a.run_epoch_quantized(&mut model_a, nonce, steps)
            } else {
                trainer_a.run_epoch(&mut model_a, nonce, steps)
            }
        };

        // Replay every segment on both top-2 GPUs (the paper's "execute
        // the sub-task twice on the current top-2 best-performant GPUs"),
        // measuring per-checkpoint distances exactly as verification
        // would. Two independent replays per segment double the sample
        // count behind the tail estimate for α.
        let units: Vec<(u64, GpuModel, usize)> = [self.gpus.1, self.gpus.0]
            .into_iter()
            .enumerate()
            .flat_map(|(replay_idx, gpu)| {
                (0..trace.segments.len()).map(move |j| (replay_idx as u64, gpu, j))
            })
            .collect();
        let measure = |&(replay_idx, gpu, j): &(u64, GpuModel, usize)| -> f32 {
            let _g = span!(
                self.recorder,
                "rpol.calibrate.unit",
                epoch,
                replay = replay_idx,
                segment = j
            );
            let mut model = self.config.build_model_like(global_weights);
            let mut trainer = LocalTrainer::new(
                self.config,
                self.shard,
                NoiseInjector::new(gpu, epoch.wrapping_mul(0x9E37).wrapping_add(2 + replay_idx)),
            );
            let replayed = if self.quantized {
                trainer.replay_segment_quantized(
                    &mut model,
                    &trace.checkpoints[j],
                    nonce,
                    trace.segments[j],
                )
            } else {
                trainer.replay_segment(&mut model, &trace.checkpoints[j], nonce, trace.segments[j])
            };
            euclidean(&replayed, &trace.checkpoints[j + 1])
        };
        let distances: Vec<f32> = match exec {
            Some(exec) => exec.run_indexed(units.len(), |i| measure(&units[i])),
            None => units.iter().map(measure).collect(),
        };
        let mut stats = RunningStats::new();
        for &dist in &distances {
            stats.push(dist);
        }

        // §V-C: "α is set as the measured maximum reproduction error plus
        // the standard deviation" — the max (not the mean) is what makes
        // β = 5α cover the heavy tail of replay divergence.
        let alpha = (stats.max() + stats.std_dev()).max(1e-9);
        // Gate-flip floor: see `CalibrationPolicy::progress_floor`.
        let max_progress = trace
            .segments
            .iter()
            .enumerate()
            .map(|(j, _)| euclidean(&trace.checkpoints[j], &trace.checkpoints[j + 1]))
            .fold(0.0f32, f32::max);
        let beta = (self.policy.beta_x * alpha + self.policy.beta_y)
            .max(self.policy.progress_floor * max_progress);
        let tuning =
            tune(&TuningConfig::new(alpha as f64, beta as f64).with_budget(self.policy.k_lsh));
        let result = CalibrationResult {
            epoch,
            alpha,
            beta,
            params: tuning.params,
            family_seed: 0xCA11_B000 ^ epoch,
            tuning,
            max_observed_error: stats.max(),
            mean_error: stats.mean(),
            std_error: stats.std_dev(),
        };
        (result, trace.final_weights().to_vec())
    }

    /// Segment layout of a calibration epoch (same as any worker epoch).
    pub fn segments(&self, steps: usize) -> Vec<crate::trainer::Segment> {
        epoch_segments(steps, self.config.checkpoint_interval)
    }
}

impl TaskConfig {
    /// Builds a bare task model and loads the provided flat weights
    /// if they match the bare geometry; if the weights include the
    /// AMLayer prefix, the caller should build the encoded model instead.
    pub(crate) fn build_model_like(&self, weights: &[f32]) -> rpol_nn::model::Sequential {
        let mut model = self.build_model();
        if model.param_count() == weights.len() {
            model.load_params(weights);
            return model;
        }
        // Encoded geometry: rebuild with a placeholder address, then load —
        // the frozen prefix is overwritten by the checkpoint's true values.
        let mut encoded = self.build_encoded_model(&rpol_crypto::Address::from_seed(0));
        assert_eq!(
            encoded.param_count(),
            weights.len(),
            "weight vector matches neither bare nor encoded model geometry"
        );
        encoded.load_params(weights);
        encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::rng::Pcg32;

    fn setup() -> (TaskConfig, SyntheticImages) {
        let cfg = TaskConfig::tiny();
        let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(2));
        (cfg, data)
    }

    #[test]
    fn calibration_produces_sane_bounds() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (cal, trained) = calibrator.calibrate(&global, 9, 6, 1);
        assert!(cal.alpha > 0.0);
        // β is x·α lifted to the gate-flip floor when that is larger.
        assert!(cal.beta >= 5.0 * cal.alpha - 1e-6);
        assert!(cal.params.total_hashes() <= 16);
        assert!(cal.tuning.pr_alpha > cal.tuning.pr_beta);
        assert_eq!(trained.len(), global.len());
        assert_ne!(trained, global, "calibration sub-task should train");
        // α should cover the maximum observed error in most runs (it is
        // mean + std; the max can exceed it slightly, β must cover it).
        assert!(cal.beta > cal.max_observed_error);
    }

    #[test]
    fn quantized_calibration_covers_the_lattice_trajectory() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2())
                .quantized(true);
        let global = cfg.build_model().flatten_params();
        let (cal, trained) = calibrator.calibrate(&global, 9, 6, 1);
        assert!(cal.alpha > 0.0);
        assert!(cal.beta > cal.max_observed_error);
        // The trained sub-task result lives on the bf16 lattice, like any
        // RPoLv3 worker checkpoint.
        assert!(rpol_tensor::quant::is_bf16_lattice(&trained));
    }

    #[test]
    fn eq5_expected_rates_are_tight() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (cal, _) = calibrator.calibrate(&global, 9, 6, 1);
        // Expected FNR under the fitted density refines (is at most) the
        // worst-case proxy, and honest errors sit far below β, so it is
        // near zero.
        let fnr = cal.expected_fnr();
        assert!(fnr <= cal.tuning.fnr_bound() + 1e-9, "{fnr}");
        assert!(fnr < 0.25, "expected FNR suspiciously high: {fnr}");
        // Spoofs an order of magnitude beyond β almost never match.
        let fpr = cal.expected_fpr(cal.beta * 10.0, cal.beta);
        assert!(fpr < 0.05, "expected FPR too high: {fpr}");
    }

    #[test]
    fn family_is_shared_given_result() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (cal, _) = calibrator.calibrate(&global, 9, 4, 2);
        let f1 = cal.family(100);
        let f2 = cal.family(100);
        assert_eq!(f1, f2, "workers and manager must derive identical families");
    }

    #[test]
    fn different_epochs_different_calibrations() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (c1, _) = calibrator.calibrate(&global, 9, 4, 1);
        let (c2, _) = calibrator.calibrate(&global, 9, 4, 2);
        assert_ne!(c1.family_seed, c2.family_seed);
        // Alphas differ because the GPU noise draws differ per epoch.
        assert_ne!(c1.alpha, c2.alpha);
    }

    #[test]
    fn executor_calibration_is_bitwise_identical_to_serial() {
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (serial, trained_serial) = calibrator.calibrate(&global, 9, 6, 1);
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let (parallel, trained_parallel) =
                calibrator.calibrate_with(&global, 9, 6, 1, Some(&exec));
            assert_eq!(parallel, serial, "{threads} threads");
            assert_eq!(trained_parallel, trained_serial, "{threads} threads");
        }
    }

    #[test]
    fn honest_cross_gpu_errors_below_beta() {
        // The crux of robustness: a worker on GA10 verified from G3090
        // must land under β estimated by the calibrator.
        let (cfg, data) = setup();
        let calibrator =
            Calibrator::new(&cfg, &data, CalibrationPolicy::default(), GpuModel::top2());
        let global = cfg.build_model().flatten_params();
        let (cal, _) = calibrator.calibrate(&global, 9, 6, 3);

        // Simulate an honest worker + verification on a different shard of
        // the same task (i.i.d.).
        let worker_data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(5));
        let mut model = cfg.build_model_like(&global);
        let mut worker =
            LocalTrainer::new(&cfg, &worker_data, NoiseInjector::new(GpuModel::GA10, 77));
        let trace = worker.run_epoch(&mut model, 13, 6);
        let mut verify_model = cfg.build_model();
        let mut verifier =
            LocalTrainer::new(&cfg, &worker_data, NoiseInjector::new(GpuModel::G3090, 88));
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed =
                verifier.replay_segment(&mut verify_model, &trace.checkpoints[j], 13, *seg);
            let dist = euclidean(&replayed, &trace.checkpoints[j + 1]);
            assert!(
                dist < cal.beta,
                "honest checkpoint {j} rejected: dist {dist} >= beta {}",
                cal.beta
            );
        }
    }
}
