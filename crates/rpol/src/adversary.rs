//! Adversarial worker behaviours (§III-B threat model, §VII-D attacker,
//! §VII-E Adv1/Adv2) and the address-replacing attack (§VII-B).

use crate::amlayer::{AmLayer, AmLayerSpec};
use crate::tasks::TaskConfig;
use rpol_crypto::Address;
use serde::{Deserialize, Serialize};

/// How a pool worker behaves during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerBehavior {
    /// Trains every step faithfully.
    Honest,
    /// **Adv1**: submits the previous global model unchanged, fabricating
    /// checkpoints that all equal the epoch's input weights (a replay /
    /// free-riding attack).
    ReplayPrevious,
    /// **Adv2**: honestly trains the first `honest_fraction` of the
    /// epoch's steps, then spoofs the remaining checkpoints with the
    /// momentum-extrapolation forgery of Eq. 12.
    PartialSpoof {
        /// Fraction of steps trained honestly (paper: 10% in Fig. 6,
        /// one third in Fig. 5).
        honest_fraction: f32,
        /// Exponential-descent coefficient `λ ∈ [0, 1]` of Eq. 12.
        lambda: f32,
    },
    /// A fail-stop **fault**, not an attack: the worker trains honestly
    /// until `epoch`, where it crashes after `after_steps` training steps
    /// and never communicates again. Under the fault-injecting transport
    /// it receives that epoch's task but never submits; every later
    /// exchange times out and the pool quarantines it. Without a fault
    /// profile configured, the crash is unobservable (the in-process pool
    /// models no channel to fail) and the worker behaves honestly.
    CrashAt {
        /// The epoch during which the worker dies.
        epoch: u64,
        /// Steps it completes in that epoch before dying.
        after_steps: usize,
    },
    /// An honest but slow worker: every transport exchange on its link
    /// takes `slowdown` × the nominal network latency. Moderate values
    /// cost retries; extreme values exceed the per-request timeout budget
    /// and the worker misses the commitment deadline (quarantined for the
    /// epoch, not rejected).
    Straggler {
        /// Latency multiplier (≥ 1).
        slowdown: f32,
    },
}

impl WorkerBehavior {
    /// Whether this behaviour is dishonest (tries to earn unearned
    /// credit). Fail-stop crashes and stragglers are *faulty*, not
    /// adversarial — verification must never reject them as cheaters.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            WorkerBehavior::ReplayPrevious | WorkerBehavior::PartialSpoof { .. }
        )
    }

    /// Whether this behaviour models a benign fault (crash/straggler)
    /// rather than honest-and-healthy or adversarial operation.
    pub fn is_faulty(&self) -> bool {
        matches!(
            self,
            WorkerBehavior::CrashAt { .. } | WorkerBehavior::Straggler { .. }
        )
    }

    /// The paper's Adv2 configuration for Fig. 6: 10% honest training,
    /// exponential spoofing with λ = 0.5.
    pub fn adv2_default() -> Self {
        WorkerBehavior::PartialSpoof {
            honest_fraction: 0.10,
            lambda: 0.5,
        }
    }
}

/// The Eq. 12 spoof: extrapolates the next checkpoint from the history of
/// previous checkpoints by exponentially weighted momentum,
///
/// ```text
/// c_{i+1} = c_i + Σ_j K_j · (c_{i−j} − c_{i−j−1}) / Σ_j K_j,   K_j = λ^j.
/// ```
///
/// With fewer than two checkpoints there is no difference history; the
/// spoof degenerates to repeating the last checkpoint.
///
/// # Panics
///
/// Panics if `history` is empty or `lambda` is outside `[0, 1]`.
pub fn spoof_next_checkpoint(history: &[Vec<f32>], lambda: f32) -> Vec<f32> {
    assert!(!history.is_empty(), "spoof needs at least one checkpoint");
    assert!(
        (0.0..=1.0).contains(&lambda),
        "lambda must be in [0, 1], got {lambda}"
    );
    let last = history.last().expect("nonempty");
    if history.len() < 2 {
        return last.clone();
    }
    let dim = last.len();
    let mut momentum = vec![0.0f32; dim];
    let mut weight_sum = 0.0f32;
    // j = 0 pairs (c_i, c_{i-1}), j = 1 pairs (c_{i-1}, c_{i-2}), ...
    for j in 0..history.len() - 1 {
        let k_j = lambda.powi(j as i32);
        // λ = 0 zeroes all but the most recent difference; guard the
        // degenerate 0^0 handled by powi (= 1), so j = 0 always counts.
        if k_j == 0.0 {
            break;
        }
        let newer = &history[history.len() - 1 - j];
        let older = &history[history.len() - 2 - j];
        for ((m, &a), &b) in momentum.iter_mut().zip(newer.iter()).zip(older.iter()) {
            *m += k_j * (a - b);
        }
        weight_sum += k_j;
    }
    last.iter()
        .zip(&momentum)
        .map(|(&c, &m)| c + m / weight_sum)
        .collect()
}

/// The §VII-B address-replacing attack: strip the model's AMLayer weights
/// and substitute the canonical AMLayer of `thief` — stealing a trained
/// model by re-encoding its ownership.
///
/// Returns the forged flat weight vector (same length).
///
/// # Panics
///
/// Panics if `flat` is shorter than the AMLayer prefix.
pub fn replace_amlayer(config: &TaskConfig, flat: &[f32], thief: &Address) -> Vec<f32> {
    let spec = config.amlayer_spec();
    let prefix = AmLayer::weight_count(spec);
    assert!(
        flat.len() >= prefix,
        "weight vector too short for an AMLayer prefix"
    );
    let forged_stack = AmLayer::derive_weight_stack(thief, spec, config.lipschitz_c);
    let mut forged = flat.to_vec();
    let mut offset = 0;
    for kernel in forged_stack {
        forged[offset..offset + kernel.len()].copy_from_slice(kernel.data());
        offset += kernel.len();
        // The frozen zero bias after each kernel is already zero.
        offset += spec.channels;
    }
    forged
}

/// Number of leading weights occupied by the AMLayer for a task.
pub fn amlayer_prefix_len(spec: AmLayerSpec) -> usize {
    AmLayer::weight_count(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spoof_extrapolates_linear_motion() {
        // Checkpoints moving at constant velocity: the spoof continues it.
        let history: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32, 2.0 * i as f32]).collect();
        let next = spoof_next_checkpoint(&history, 0.5);
        assert!((next[0] - 4.0).abs() < 1e-5, "next = {next:?}");
        assert!((next[1] - 8.0).abs() < 1e-5);
    }

    #[test]
    fn lambda_zero_uses_latest_difference_only() {
        let history = vec![vec![0.0], vec![10.0], vec![11.0]];
        let next = spoof_next_checkpoint(&history, 0.0);
        assert!((next[0] - 12.0).abs() < 1e-5, "next = {next:?}");
    }

    #[test]
    fn lambda_one_averages_all_differences() {
        let history = vec![vec![0.0], vec![10.0], vec![11.0]];
        // Differences: 1 (latest), 10 (older); mean = 5.5 → 16.5.
        let next = spoof_next_checkpoint(&history, 1.0);
        assert!((next[0] - 16.5).abs() < 1e-4, "next = {next:?}");
    }

    #[test]
    fn single_checkpoint_degenerates_to_copy() {
        let history = vec![vec![3.0, 4.0]];
        assert_eq!(spoof_next_checkpoint(&history, 0.5), vec![3.0, 4.0]);
    }

    #[test]
    fn address_replacement_changes_prefix_only() {
        let cfg = TaskConfig::tiny();
        let owner = Address::from_seed(1);
        let thief = Address::from_seed(2);
        let model = cfg.build_encoded_model(&owner);
        let flat = model.flatten_params();
        let forged = replace_amlayer(&cfg, &flat, &thief);
        assert_eq!(forged.len(), flat.len());
        let prefix = amlayer_prefix_len(cfg.amlayer_spec());
        // Kernel prefix changed...
        assert_ne!(
            &forged[..prefix - cfg.spec.channels],
            &flat[..prefix - cfg.spec.channels]
        );
        // ...trainable suffix untouched.
        assert_eq!(&forged[prefix..], &flat[prefix..]);
        // Ownership verification flips accordingly.
        assert!(cfg.verify_model_owner(&forged, &thief, cfg.lipschitz_c));
        assert!(!cfg.verify_model_owner(&forged, &owner, cfg.lipschitz_c));
    }

    #[test]
    fn behaviour_flags() {
        assert!(!WorkerBehavior::Honest.is_adversarial());
        assert!(WorkerBehavior::ReplayPrevious.is_adversarial());
        assert!(WorkerBehavior::adv2_default().is_adversarial());
        // Crashes and stragglers are faults, not attacks.
        let crash = WorkerBehavior::CrashAt {
            epoch: 1,
            after_steps: 2,
        };
        let slow = WorkerBehavior::Straggler { slowdown: 8.0 };
        assert!(!crash.is_adversarial() && crash.is_faulty());
        assert!(!slow.is_adversarial() && slow.is_faulty());
        assert!(!WorkerBehavior::Honest.is_faulty());
        assert!(!WorkerBehavior::ReplayPrevious.is_faulty());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_rejected() {
        spoof_next_checkpoint(&[vec![0.0]], 1.5);
    }
}
