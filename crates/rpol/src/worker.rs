//! Pool workers: honest training and the cheating strategies of §VII.

use crate::adversary::{spoof_next_checkpoint, WorkerBehavior};
use crate::commitment::EpochCommitment;
use crate::tasks::TaskConfig;
use crate::trainer::{epoch_segments, LocalTrainer, Segment};
use crate::verify::ProofProvider;
use rpol_crypto::Address;
use rpol_lsh::LshFamily;
use rpol_nn::data::SyntheticImages;
use rpol_nn::model::Sequential;
use rpol_sim::gpu::{GpuModel, NoiseInjector};

/// Which commitment (if any) a worker produces for the epoch.
#[derive(Debug, Clone, Copy)]
pub enum CommitMode<'a> {
    /// No commitment, no checkpoint storage — the insecure baseline.
    Skip,
    /// RPoLv1: raw-hash commitment over checkpoints.
    V1,
    /// RPoLv2: LSH commitment with the epoch's calibrated family.
    V2(&'a LshFamily),
    /// RPoLv3: quantized lattice commitment with the epoch's calibrated
    /// family. Training itself moves onto the bf16 lattice (weights snap
    /// at every checkpoint boundary), so commitments and openings shrink
    /// to 2 bytes per weight without losing exactness.
    V3(&'a LshFamily),
}

/// What a worker uploads at the end of an epoch (§V-B): its local result
/// plus the commitment over all checkpoints — *before* any sampling
/// decision is revealed.
#[derive(Debug, Clone)]
pub struct EpochSubmission {
    /// The submitting worker's index in the pool.
    pub worker_id: usize,
    /// The worker's final model weights for the epoch.
    pub final_weights: Vec<f32>,
    /// Commitment over the ordered checkpoint sequence (`None` under
    /// [`CommitMode::Skip`]).
    pub commitment: Option<EpochCommitment>,
    /// Bytes uploaded for this submission (weights + commitment). V3
    /// final weights are counted at their packed 2-bytes-per-weight size.
    pub upload_bytes: u64,
    /// Bytes the worker's digest pipeline hashed to build the commitment
    /// (see [`EpochCommitment::bytes_hashed`]); 0 under
    /// [`CommitMode::Skip`].
    pub commit_bytes_hashed: u64,
}

/// A pool worker: owns a data shard, a GPU profile, and a (possibly
/// adversarial) behaviour.
///
/// # Examples
///
/// ```
/// use rpol::worker::{CommitMode, PoolWorker};
/// use rpol::adversary::WorkerBehavior;
/// use rpol::tasks::TaskConfig;
/// use rpol_crypto::Address;
/// use rpol_nn::data::SyntheticImages;
/// use rpol_sim::gpu::GpuModel;
/// use rpol_tensor::rng::Pcg32;
///
/// let cfg = TaskConfig::tiny();
/// let shard = SyntheticImages::generate(&cfg.spec, 32, &mut Pcg32::seed_from(0));
/// let mut worker = PoolWorker::new(
///     0, &cfg, &Address::from_seed(9), shard, GpuModel::GA10, WorkerBehavior::Honest,
/// );
/// let global = cfg.build_encoded_model(&Address::from_seed(9)).flatten_params();
/// let submission = worker.run_epoch(&cfg, &global, 7, 4, 1, CommitMode::V1);
/// assert_eq!(submission.final_weights.len(), global.len());
/// ```
pub struct PoolWorker {
    /// Pool-assigned index.
    pub id: usize,
    /// Reward address of this worker.
    pub address: Address,
    /// Registered GPU model (drives both compute speed and
    /// reproduction-error magnitude).
    pub gpu: GpuModel,
    behavior: WorkerBehavior,
    shard: SyntheticImages,
    model: Sequential,
    /// Checkpoints of the most recent epoch (the worker's local "proof"
    /// storage that openings are served from).
    checkpoints: Vec<Vec<f32>>,
    segments: Vec<Segment>,
}

impl PoolWorker {
    /// Creates a worker for a task coordinated by `manager` (whose address
    /// defines the model's AMLayer geometry).
    pub fn new(
        id: usize,
        config: &TaskConfig,
        manager: &Address,
        shard: SyntheticImages,
        gpu: GpuModel,
        behavior: WorkerBehavior,
    ) -> Self {
        Self {
            id,
            address: Address::from_seed(0xF00D_0000 ^ id as u64),
            gpu,
            behavior,
            shard,
            model: config.build_encoded_model(manager),
            checkpoints: Vec::new(),
            segments: Vec::new(),
        }
    }

    /// The worker's behaviour.
    pub fn behavior(&self) -> WorkerBehavior {
        self.behavior
    }

    /// The worker's data shard size.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// The worker's shard (the manager holds a copy too — it created the
    /// shards — so verification can replay against identical data).
    pub fn shard(&self) -> &SyntheticImages {
        &self.shard
    }

    /// Bytes of checkpoint storage currently held (§VII-E storage
    /// overhead).
    pub fn storage_bytes(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.len() as u64 * 4).sum()
    }

    /// Segment layout of the last epoch.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Runs one epoch per the worker's behaviour and returns the
    /// submission. `mode` selects the commitment scheme.
    pub fn run_epoch(
        &mut self,
        config: &TaskConfig,
        global_weights: &[f32],
        nonce: u64,
        total_steps: usize,
        epoch: u64,
        mode: CommitMode<'_>,
    ) -> EpochSubmission {
        let segments = epoch_segments(total_steps, config.checkpoint_interval);
        let run_seed = (epoch << 20) ^ (self.id as u64) << 4 ^ nonce;
        // RPoLv3 trains on the bf16 lattice: every protocol-visible state
        // (epoch input, checkpoints, spoofed extrapolations) is snapped,
        // honest and adversarial alike — an off-lattice opening is
        // rejected as malformed before any replay.
        let quantized = matches!(mode, CommitMode::V3(_));
        let checkpoints = match self.behavior {
            // Crash and straggler faults train honestly: the crash cuts off
            // *communication* (modelled by the transport layer, which stops
            // calling this worker), and the straggler is merely slow.
            WorkerBehavior::Honest
            | WorkerBehavior::CrashAt { .. }
            | WorkerBehavior::Straggler { .. } => {
                self.model.load_params(global_weights);
                let mut trainer =
                    LocalTrainer::new(config, &self.shard, NoiseInjector::new(self.gpu, run_seed));
                if quantized {
                    trainer
                        .run_epoch_quantized(&mut self.model, nonce, total_steps)
                        .checkpoints
                } else {
                    trainer
                        .run_epoch(&mut self.model, nonce, total_steps)
                        .checkpoints
                }
            }
            WorkerBehavior::ReplayPrevious => {
                // Adv1: zero effort — every "checkpoint" is the input.
                let mut input = global_weights.to_vec();
                if quantized {
                    rpol_tensor::quant::snap_to_bf16(&mut input);
                }
                vec![input; segments.len() + 1]
            }
            WorkerBehavior::PartialSpoof {
                honest_fraction,
                lambda,
            } => {
                // Ceil: an Adv2 that "trains 10% of the steps" trains at
                // least one segment, giving its Eq. 12 extrapolation a
                // real momentum history (and making its fake updates
                // actively poisonous rather than degenerate no-ops).
                let honest_segments = if honest_fraction > 0.0 {
                    ((segments.len() as f32 * honest_fraction).ceil() as usize)
                        .clamp(1, segments.len())
                } else {
                    0
                };
                let mut input = global_weights.to_vec();
                if quantized {
                    rpol_tensor::quant::snap_to_bf16(&mut input);
                }
                self.model.load_params(&input);
                let mut trainer =
                    LocalTrainer::new(config, &self.shard, NoiseInjector::new(self.gpu, run_seed));
                let mut checkpoints = vec![input];
                for seg in &segments[..honest_segments] {
                    trainer.run_segment(&mut self.model, nonce, *seg);
                    let mut cp = self.model.flatten_params();
                    if quantized {
                        rpol_tensor::quant::snap_to_bf16(&mut cp);
                        self.model.load_params(&cp);
                    }
                    checkpoints.push(cp);
                }
                // Spoof the rest by Eq. 12 extrapolation.
                for _ in honest_segments..segments.len() {
                    let mut next = spoof_next_checkpoint(&checkpoints, lambda);
                    if quantized {
                        rpol_tensor::quant::snap_to_bf16(&mut next);
                    }
                    checkpoints.push(next);
                }
                checkpoints
            }
        };

        let commitment = match mode {
            CommitMode::Skip => None,
            CommitMode::V1 => Some(EpochCommitment::commit_v1(&checkpoints)),
            CommitMode::V2(f) => Some(EpochCommitment::commit_v2(&checkpoints, f)),
            CommitMode::V3(f) => Some(EpochCommitment::commit_v3(&checkpoints, f)),
        };
        let final_weights = checkpoints.last().expect("nonempty").clone();
        let commit_bytes = commitment.as_ref().map_or(0, EpochCommitment::wire_size);
        let hashes_per_group = match mode {
            CommitMode::V2(f) | CommitMode::V3(f) => f.params().k,
            _ => 0,
        };
        let commit_bytes_hashed = commitment
            .as_ref()
            .map_or(0, |c| c.bytes_hashed(final_weights.len(), hashes_per_group));
        // V3 ships its lattice weights packed (2 bytes each, an upper
        // bound: the hi-plane RLE can only shrink further).
        let weight_bytes = if quantized {
            final_weights.len() * 2
        } else {
            final_weights.len() * 4
        };
        let upload_bytes = (weight_bytes + commit_bytes) as u64;
        // Baseline workers keep no proof storage.
        self.checkpoints = if matches!(mode, CommitMode::Skip) {
            Vec::new()
        } else {
            checkpoints
        };
        self.segments = segments;
        EpochSubmission {
            worker_id: self.id,
            final_weights,
            commitment,
            upload_bytes,
            commit_bytes_hashed,
        }
    }
}

impl ProofProvider for PoolWorker {
    /// In-process opening: the worker's local storage never fails, and the
    /// resident checkpoint is served as a borrow — no copy per opening.
    /// The transport layer wraps this in a lossy channel whose failures
    /// *do* surface as [`crate::verify::ProofUnavailable`].
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, crate::verify::ProofUnavailable> {
        Ok(std::borrow::Cow::Borrowed(&self.checkpoints[index]))
    }
}

impl std::fmt::Debug for PoolWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PoolWorker(id {}, {} on {:?}, {} checkpoints)",
            self.id,
            self.gpu,
            self.behavior,
            self.checkpoints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::rng::Pcg32;

    fn setup(behavior: WorkerBehavior) -> (TaskConfig, PoolWorker, Vec<f32>) {
        let cfg = TaskConfig::tiny();
        let manager = Address::from_seed(9);
        let shard = SyntheticImages::generate(&cfg.spec, 32, &mut Pcg32::seed_from(3));
        let worker = PoolWorker::new(0, &cfg, &manager, shard, GpuModel::GA10, behavior);
        let global = cfg.build_encoded_model(&manager).flatten_params();
        (cfg, worker, global)
    }

    #[test]
    fn honest_worker_makes_progress() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::Honest);
        let sub = worker.run_epoch(&cfg, &global, 1, 4, 0, CommitMode::V1);
        assert_ne!(sub.final_weights, global);
        let commitment = sub.commitment.as_ref().expect("committed");
        assert_eq!(commitment.len(), worker.segments().len() + 1);
        assert!(worker.storage_bytes() > 0);
    }

    #[test]
    fn honest_worker_preserves_amlayer() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::Honest);
        let manager = Address::from_seed(9);
        let sub = worker.run_epoch(&cfg, &global, 1, 4, 0, CommitMode::V1);
        assert!(cfg.verify_model_owner(&sub.final_weights, &manager, cfg.lipschitz_c));
    }

    #[test]
    fn replay_adversary_does_nothing() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::ReplayPrevious);
        let sub = worker.run_epoch(&cfg, &global, 1, 4, 0, CommitMode::V1);
        assert_eq!(sub.final_weights, global);
        // All committed checkpoints are the global weights.
        for j in 0..sub.commitment.as_ref().expect("committed").len() {
            assert_eq!(worker.open_checkpoint(j).expect("local"), global);
        }
    }

    #[test]
    fn partial_spoofer_trains_then_extrapolates() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::PartialSpoof {
            honest_fraction: 0.5,
            lambda: 0.5,
        });
        // 8 steps, interval 2 → 4 segments; 2 honest, 2 spoofed.
        let sub = worker.run_epoch(&cfg, &global, 1, 8, 0, CommitMode::V1);
        assert_eq!(worker.segments().len(), 4);
        assert_ne!(sub.final_weights, global);
        // Honest prefix differs from spoofed checkpoints: checkpoint 2 was
        // trained, checkpoint 3 extrapolated.
        let c2 = worker.open_checkpoint(2).expect("local");
        let c3 = worker.open_checkpoint(3).expect("local");
        assert_ne!(c2, c3);
    }

    #[test]
    fn proof_provider_serves_committed_checkpoints() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::Honest);
        let sub = worker.run_epoch(&cfg, &global, 5, 4, 0, CommitMode::V1);
        // Opening 0 must be the epoch input.
        assert_eq!(worker.open_checkpoint(0).expect("local"), global);
        let last = worker
            .open_checkpoint(sub.commitment.as_ref().expect("committed").len() - 1)
            .expect("local");
        assert_eq!(last, sub.final_weights);
    }

    #[test]
    fn v3_worker_checkpoints_live_on_the_lattice() {
        use rpol_lsh::{LshFamily, LshParams};
        for behavior in [
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::PartialSpoof {
                honest_fraction: 0.5,
                lambda: 0.5,
            },
        ] {
            let (cfg, mut worker, global) = setup(behavior);
            let dim = global.len();
            let family = LshFamily::generate(dim, LshParams::new(1.0, 4, 4), 11);
            let sub = worker.run_epoch(&cfg, &global, 1, 8, 0, CommitMode::V3(&family));
            assert!(
                rpol_tensor::quant::is_bf16_lattice(&sub.final_weights),
                "{behavior:?} final weights off the lattice"
            );
            let n = sub.commitment.as_ref().expect("committed").len();
            for j in 0..n {
                assert!(
                    rpol_tensor::quant::is_bf16_lattice(&worker.open_checkpoint(j).expect("local")),
                    "{behavior:?} checkpoint {j} off the lattice"
                );
            }
            assert!(sub.commit_bytes_hashed > 0);
            // Packed weights: upload accounting charges 2 bytes per weight.
            let v1_equivalent = (dim * 4) as u64;
            assert!(sub.upload_bytes < v1_equivalent + sub.commitment.unwrap().wire_size() as u64);
        }
    }

    #[test]
    fn commit_bytes_hashed_tracks_mode() {
        use rpol_lsh::{LshFamily, LshParams};
        let (cfg, mut worker, global) = setup(WorkerBehavior::Honest);
        let dim = global.len();
        let sub_v1 = worker.run_epoch(&cfg, &global, 1, 4, 0, CommitMode::V1);
        let n = sub_v1.commitment.as_ref().expect("committed").len() as u64;
        assert_eq!(sub_v1.commit_bytes_hashed, n * dim as u64 * 4);
        let family = LshFamily::generate(dim, LshParams::new(1.0, 4, 4), 11);
        let sub_v3 = worker.run_epoch(&cfg, &global, 2, 4, 1, CommitMode::V3(&family));
        assert_eq!(sub_v3.commit_bytes_hashed, n * (dim as u64 * 2 + 4 * 4 * 8));
        let skip = worker.run_epoch(&cfg, &global, 3, 4, 2, CommitMode::Skip);
        assert_eq!(skip.commit_bytes_hashed, 0);
    }

    #[test]
    fn upload_accounts_commitment_bytes() {
        let (cfg, mut worker, global) = setup(WorkerBehavior::Honest);
        let sub = worker.run_epoch(&cfg, &global, 5, 4, 0, CommitMode::V1);
        assert!(sub.upload_bytes > (sub.final_weights.len() * 4) as u64);
    }
}
