//! Hierarchical committee sharding: the two-tier verification topology
//! that takes the pool from table-scale to 10⁴–10⁶ workers.
//!
//! The flat manager replays sampled batches for every worker, so its
//! memory and replay time grow linearly with pool size. Here workers are
//! deterministically partitioned into committees by rendezvous (highest-
//! random-weight) hashing — churn moves only O(1/C) of the roster — and
//! each committee's sub-manager runs the existing sampled-replay
//! verification over its members, emitting a **Merkle-committed verdict
//! batch**: one canonical leaf per member verdict, tree built with
//! `rpol_crypto::merkle`. The top manager ingests only committee roots
//! plus per-committee stats, then spot-audits each committee by
//! re-sampling `q_top` verdicts — checking Merkle inclusion proofs and
//! re-replaying the audited samples itself. The soundness algebra of
//! Theorem 2 applies per tier; DESIGN.md §15 derives the composed bound.
//!
//! Everything in this module is a pure deterministic function of its
//! inputs: partitioning, leaf encoding, and audit index selection never
//! touch the manager's RNG stream, which is what keeps hierarchical runs
//! bitwise-identical to flat runs at equal sampling parameters.

use crate::verify::{RejectReason, VerificationOutcome, WorkerVerdict};
use rpol_crypto::merkle::{MerkleProof, MerkleTree};
use rpol_crypto::Digest;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Two-tier verification parameters: how many committees the roster is
/// sharded into and how many verdicts the top manager re-audits per
/// committee batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Number of committees `C` the roster is rendezvous-partitioned into.
    pub committees: usize,
    /// Verdicts the top manager spot-audits per committee (`q_top`): each
    /// audit verifies a Merkle inclusion proof and re-replays the audited
    /// worker's samples. Clamped to the committee's verdict count.
    pub q_top: usize,
}

impl Hierarchy {
    /// Creates a hierarchy config, rejecting degenerate parameters.
    ///
    /// # Errors
    ///
    /// `committees == 0` (no committee to assign workers to).
    pub fn new(committees: usize, q_top: usize) -> Result<Self, String> {
        if committees == 0 {
            return Err("--committees must be at least 1".to_string());
        }
        Ok(Self { committees, q_top })
    }

    /// Validates the config against a concrete roster: `q_top` may not
    /// exceed the verdict count of the *smallest* non-empty committee —
    /// an audit of more verdicts than a batch holds is a configuration
    /// error, not something to silently clamp at scale.
    ///
    /// # Errors
    ///
    /// Describes the offending parameter.
    pub fn validate(&self, n_workers: usize, seed: u64) -> Result<(), String> {
        if self.committees == 0 {
            return Err("--committees must be at least 1".to_string());
        }
        let smallest = partition(seed, n_workers, self.committees)
            .iter()
            .filter(|members| !members.is_empty())
            .map(|members| members.len())
            .min()
            .unwrap_or(0);
        if self.q_top > smallest {
            return Err(format!(
                "--committee-audit {} exceeds the smallest committee's verdict \
                 count ({smallest}) for {n_workers} workers in {} committees",
                self.q_top, self.committees
            ));
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: the cheap statistically-strong mixer behind the
/// rendezvous weights and audit PRF. Cryptographic strength is not needed
/// here — assignment must only be deterministic and balanced; commitment
/// binding comes from the Merkle tree, not from the partition.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The rendezvous weight of `(worker, committee)` under `seed`.
fn hrw_weight(seed: u64, worker: usize, committee: usize) -> u64 {
    mix64(
        mix64(seed ^ 0x434F_4D4D_5254_4545) // "COMMRTEE"
            ^ mix64(worker as u64 ^ 0x574B)
            ^ mix64(committee as u64 ^ 0x4354),
    )
}

/// The committee `worker` lands in: the committee with the highest
/// rendezvous weight. Adding or removing a committee reassigns only the
/// workers whose maximum moved — O(1/C) of the roster in expectation —
/// unlike modular assignment, which reshuffles almost everyone.
///
/// # Panics
///
/// Panics if `committees == 0`.
pub fn rendezvous_committee(seed: u64, worker: usize, committees: usize) -> usize {
    assert!(committees > 0, "need at least one committee");
    (0..committees)
        .max_by_key(|&c| (hrw_weight(seed, worker, c), std::cmp::Reverse(c)))
        .expect("nonempty range")
}

/// Partitions workers `0..n` into `committees` member lists, each sorted
/// ascending. Committees can be empty when `committees > n`.
///
/// # Panics
///
/// Panics if `committees == 0`.
pub fn partition(seed: u64, n: usize, committees: usize) -> Vec<Vec<usize>> {
    assert!(committees > 0, "need at least one committee");
    let mut members = vec![Vec::new(); committees];
    for w in 0..n {
        members[rendezvous_committee(seed, w, committees)].push(w);
    }
    members
}

/// Groups delivered participants by rendezvous committee: `result[c]`
/// holds committee `c`'s participants in member (worker-id) order.
/// Committees whose members all failed to deliver come back empty —
/// they still occupy their slot so callers can account every committee.
///
/// # Panics
///
/// Panics if `committees == 0` (via [`partition`]).
pub(crate) fn select_present<'a>(
    seed: u64,
    n: usize,
    committees: usize,
    participants: &[crate::manager::Participant<'a>],
) -> Vec<Vec<crate::manager::Participant<'a>>> {
    let pos: std::collections::HashMap<usize, usize> = participants
        .iter()
        .enumerate()
        .map(|(i, p)| (p.id, i))
        .collect();
    partition(seed, n, committees)
        .into_iter()
        .map(|members| {
            members
                .iter()
                .filter_map(|w| pos.get(w))
                .map(|&i| participants[i])
                .collect()
        })
        .collect()
}

/// Canonical verdict-leaf tags. One byte per outcome variant; the encoding
/// is exact (f32 fields travel as raw LE bits), so decode∘encode is the
/// identity and two verdicts encode identically iff they are equal.
const LEAF_ACCEPTED: u8 = 0x01;
const LEAF_ACCEPTED_DOUBLE_CHECKED: u8 = 0x02;
const LEAF_REJECT_INPUT: u8 = 0x03;
const LEAF_REJECT_OUTPUT: u8 = 0x04;
const LEAF_REJECT_DISTANCE: u8 = 0x05;
const LEAF_REJECT_MALFORMED: u8 = 0x06;
const LEAF_UNAVAILABLE: u8 = 0x07;

/// Encodes one `(worker, verdict)` pair as the canonical Merkle leaf:
///
/// ```text
/// worker:u64 | proof_bytes:u64 | replayed_steps:u64 | count:u32
///   then per outcome: sample:u32 | tag:u8 [| distance:f32le | beta:f32le]
/// ```
///
/// All integers little-endian. The encoding is injective over well-formed
/// verdicts, so a committee cannot equivocate: any change to a verdict
/// changes its leaf, hence the batch root.
pub fn encode_verdict_leaf(worker: usize, verdict: &WorkerVerdict) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + verdict.outcomes.len() * 13);
    out.extend_from_slice(&(worker as u64).to_le_bytes());
    out.extend_from_slice(&verdict.proof_bytes.to_le_bytes());
    out.extend_from_slice(&verdict.replayed_steps.to_le_bytes());
    out.extend_from_slice(&(verdict.outcomes.len() as u32).to_le_bytes());
    for &(sample, outcome) in &verdict.outcomes {
        out.extend_from_slice(&(sample as u32).to_le_bytes());
        match outcome {
            VerificationOutcome::Accepted { double_checked } => {
                out.push(if double_checked {
                    LEAF_ACCEPTED_DOUBLE_CHECKED
                } else {
                    LEAF_ACCEPTED
                });
            }
            VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch) => {
                out.push(LEAF_REJECT_INPUT);
            }
            VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch) => {
                out.push(LEAF_REJECT_OUTPUT);
            }
            VerificationOutcome::Rejected(RejectReason::DistanceExceeded { distance, beta }) => {
                out.push(LEAF_REJECT_DISTANCE);
                out.extend_from_slice(&distance.to_bits().to_le_bytes());
                out.extend_from_slice(&beta.to_bits().to_le_bytes());
            }
            VerificationOutcome::Rejected(RejectReason::MalformedWeights) => {
                out.push(LEAF_REJECT_MALFORMED);
            }
            VerificationOutcome::Unavailable => out.push(LEAF_UNAVAILABLE),
        }
    }
    out
}

/// Decodes a canonical verdict leaf. Exact inverse of
/// [`encode_verdict_leaf`]; trailing bytes are rejected.
///
/// # Errors
///
/// A static description of the malformation.
pub fn decode_verdict_leaf(bytes: &[u8]) -> Result<(usize, WorkerVerdict), &'static str> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], &'static str> {
        let end = pos.checked_add(n).ok_or("leaf length overflow")?;
        let slice = bytes.get(pos..end).ok_or("truncated verdict leaf")?;
        pos = end;
        Ok(slice)
    };
    let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
    let u32_of = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
    let worker = u64_of(take(8)?) as usize;
    let proof_bytes = u64_of(take(8)?);
    let replayed_steps = u64_of(take(8)?);
    let count = u32_of(take(4)?) as usize;
    // A verdict holds at most one outcome per sampled checkpoint; a count
    // beyond the remaining bytes is hostile, not just truncated.
    if count > bytes.len() {
        return Err("verdict outcome count exceeds leaf length");
    }
    let mut outcomes = Vec::with_capacity(count);
    for _ in 0..count {
        let sample = u32_of(take(4)?) as usize;
        let tag = take(1)?[0];
        let outcome = match tag {
            LEAF_ACCEPTED => VerificationOutcome::Accepted {
                double_checked: false,
            },
            LEAF_ACCEPTED_DOUBLE_CHECKED => VerificationOutcome::Accepted {
                double_checked: true,
            },
            LEAF_REJECT_INPUT => {
                VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch)
            }
            LEAF_REJECT_OUTPUT => {
                VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch)
            }
            LEAF_REJECT_DISTANCE => {
                let distance = f32::from_bits(u32_of(take(4)?));
                let beta = f32::from_bits(u32_of(take(4)?));
                VerificationOutcome::Rejected(RejectReason::DistanceExceeded { distance, beta })
            }
            LEAF_REJECT_MALFORMED => VerificationOutcome::Rejected(RejectReason::MalformedWeights),
            LEAF_UNAVAILABLE => VerificationOutcome::Unavailable,
            _ => return Err("unknown verdict outcome tag"),
        };
        outcomes.push((sample, outcome));
    }
    if pos != bytes.len() {
        return Err("trailing bytes after verdict leaf");
    }
    Ok((
        worker,
        WorkerVerdict {
            outcomes,
            proof_bytes,
            replayed_steps,
        },
    ))
}

/// A committee's Merkle-committed verdict batch — the only thing the top
/// manager ingests from a sub-manager besides byte counts: the root binds
/// every member verdict, the verdict list is the opening the top manager
/// spot-audits against it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitteeBatch {
    /// Epoch the batch belongs to.
    pub epoch: u64,
    /// The committee's index in `0..C`.
    pub committee: usize,
    /// Merkle root over the canonical verdict leaves, in member order.
    pub root: Digest,
    /// The member verdicts, in ascending worker order.
    pub verdicts: Vec<(usize, WorkerVerdict)>,
    /// Commitment bytes the sub-manager had resident while verifying this
    /// committee (drives the pool's peak-memory accounting).
    pub commit_bytes: u64,
}

impl CommitteeBatch {
    /// Builds a batch from member verdicts, committing to them with a
    /// Merkle tree over the canonical leaf encodings.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty (empty committees emit no batch).
    pub fn from_verdicts(
        epoch: u64,
        committee: usize,
        verdicts: Vec<(usize, WorkerVerdict)>,
        commit_bytes: u64,
    ) -> Self {
        assert!(!verdicts.is_empty(), "empty committee batch");
        let root = Self::tree_of(&verdicts).root();
        Self {
            epoch,
            committee,
            root,
            verdicts,
            commit_bytes,
        }
    }

    /// The Merkle tree over the batch's canonical leaves.
    pub fn tree(&self) -> MerkleTree {
        Self::tree_of(&self.verdicts)
    }

    fn tree_of(verdicts: &[(usize, WorkerVerdict)]) -> MerkleTree {
        let leaves: Vec<Vec<u8>> = verdicts
            .iter()
            .map(|(w, v)| encode_verdict_leaf(*w, v))
            .collect();
        let refs: Vec<&[u8]> = leaves.iter().map(|l| l.as_slice()).collect();
        MerkleTree::from_leaves(&refs)
    }

    /// Whether the stored root matches the verdict list — the first thing
    /// the top manager checks on ingest (a mismatch is equivocation).
    pub fn root_consistent(&self) -> bool {
        self.tree().root() == self.root
    }

    /// An inclusion proof for the verdict at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        self.tree().prove(index)
    }

    /// Verifies that `(worker, verdict)` sits at `proof.leaf_index` under
    /// this batch's root.
    pub fn verify_inclusion(
        &self,
        proof: &MerkleProof,
        worker: usize,
        verdict: &WorkerVerdict,
    ) -> bool {
        proof.verify(self.root, &encode_verdict_leaf(worker, verdict))
    }

    /// Total proof bytes across the batch's verdicts.
    pub fn proof_bytes(&self) -> u64 {
        self.verdicts.iter().map(|(_, v)| v.proof_bytes).sum()
    }

    /// Total replayed steps across the batch's verdicts.
    pub fn replayed_steps(&self) -> u64 {
        self.verdicts.iter().map(|(_, v)| v.replayed_steps).sum()
    }
}

/// The top manager's audit selection: `q_top` distinct verdict positions
/// in `0..leaf_count`, drawn from a PRF keyed on `(seed, epoch,
/// committee)` — deliberately **not** the manager's RNG, whose stream must
/// stay identical between flat and hierarchical runs. Returned sorted.
pub fn audit_indices(
    seed: u64,
    epoch: u64,
    committee: usize,
    q_top: usize,
    leaf_count: usize,
) -> Vec<usize> {
    let q = q_top.min(leaf_count);
    if q == 0 {
        return Vec::new();
    }
    let mut rng = Pcg32::new(
        mix64(seed ^ 0x4155_4449_545F_5052), // "AUDIT_PR"
        mix64(epoch ^ mix64(committee as u64)) | 1,
    );
    // Partial Fisher–Yates: the first q slots of a virtual 0..leaf_count
    // shuffle, tracked sparsely so audits stay O(q) even at 10⁶ leaves.
    let mut swapped = std::collections::HashMap::new();
    let mut picked = Vec::with_capacity(q);
    for i in 0..q {
        let j = i + (rng.next_u64() % (leaf_count - i) as u64) as usize;
        let vi = *swapped.get(&i).unwrap_or(&i);
        let vj = *swapped.get(&j).unwrap_or(&j);
        picked.push(vj);
        swapped.insert(j, vi);
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdict(seed: u32) -> WorkerVerdict {
        WorkerVerdict {
            outcomes: vec![
                (
                    seed as usize,
                    VerificationOutcome::Accepted {
                        double_checked: seed.is_multiple_of(2),
                    },
                ),
                (
                    seed as usize + 3,
                    VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
                        distance: 0.25 + seed as f32,
                        beta: 0.125,
                    }),
                ),
            ],
            proof_bytes: 1000 + seed as u64,
            replayed_steps: 7 + seed as u64,
        }
    }

    #[test]
    fn partition_covers_every_worker_once() {
        let parts = partition(42, 1000, 7);
        assert_eq!(parts.len(), 7);
        let mut seen = vec![false; 1000];
        for members in &parts {
            assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted members");
            for &w in members {
                assert!(!seen[w], "worker {w} assigned twice");
                seen[w] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every worker assigned");
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let parts = partition(7, 10_000, 16);
        let expect = 10_000 / 16;
        for (c, members) in parts.iter().enumerate() {
            assert!(
                members.len() > expect / 2 && members.len() < expect * 2,
                "committee {c} holds {} workers (expected ~{expect})",
                members.len()
            );
        }
    }

    #[test]
    fn churn_moves_few_workers_when_committee_count_grows() {
        // Rendezvous property: going from C to C+1 committees moves only
        // the workers whose new committee won their rendezvous — about
        // n/(C+1), not the near-n a modular partition would move.
        let n = 4000;
        let before: Vec<usize> = (0..n).map(|w| rendezvous_committee(5, w, 8)).collect();
        let after: Vec<usize> = (0..n).map(|w| rendezvous_committee(5, w, 9)).collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Expectation is n/9 ≈ 444; allow generous slack, but far below
        // the ~n * 8/9 a modular scheme would reshuffle.
        assert!(moved < n / 4, "churn moved {moved} of {n} workers");
        assert!(moved > 0, "growing C must move someone");
    }

    #[test]
    fn verdict_leaf_roundtrips_exactly() {
        for seed in 0..6 {
            let verdict = sample_verdict(seed);
            let leaf = encode_verdict_leaf(seed as usize * 11, &verdict);
            let (worker, decoded) = decode_verdict_leaf(&leaf).expect("roundtrip");
            assert_eq!(worker, seed as usize * 11);
            assert_eq!(decoded, verdict);
        }
    }

    #[test]
    fn verdict_leaf_rejects_truncation_and_trailing() {
        let leaf = encode_verdict_leaf(3, &sample_verdict(1));
        for cut in 0..leaf.len() {
            assert!(decode_verdict_leaf(&leaf[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = leaf.clone();
        extended.push(0);
        assert!(decode_verdict_leaf(&extended).is_err());
    }

    #[test]
    fn batch_commits_and_audits() {
        let verdicts: Vec<(usize, WorkerVerdict)> =
            (0..5).map(|w| (w, sample_verdict(w as u32))).collect();
        let batch = CommitteeBatch::from_verdicts(2, 1, verdicts, 4096);
        assert!(batch.root_consistent());
        for i in 0..5 {
            let proof = batch.prove(i);
            let (w, v) = &batch.verdicts[i];
            assert!(batch.verify_inclusion(&proof, *w, v));
            // A swapped verdict fails inclusion.
            let other = &batch.verdicts[(i + 1) % 5];
            assert!(!batch.verify_inclusion(&proof, other.0, &other.1));
        }
    }

    #[test]
    fn tampered_batch_root_is_inconsistent() {
        let verdicts: Vec<(usize, WorkerVerdict)> =
            (0..4).map(|w| (w, sample_verdict(w as u32))).collect();
        let mut batch = CommitteeBatch::from_verdicts(0, 0, verdicts, 0);
        batch.verdicts[2].1.proof_bytes ^= 1;
        assert!(!batch.root_consistent());
    }

    #[test]
    fn audit_indices_distinct_sorted_deterministic() {
        for leaf_count in [1usize, 2, 5, 33, 1000] {
            for q in [0usize, 1, 3, 40] {
                let a = audit_indices(9, 4, 2, q, leaf_count);
                let b = audit_indices(9, 4, 2, q, leaf_count);
                assert_eq!(a, b, "deterministic");
                assert_eq!(a.len(), q.min(leaf_count));
                assert!(a.windows(2).all(|w| w[0] < w[1]), "distinct sorted: {a:?}");
                assert!(a.iter().all(|&i| i < leaf_count));
            }
        }
        // Different committees audit different positions (almost surely).
        let x = audit_indices(9, 4, 0, 3, 1000);
        let y = audit_indices(9, 4, 1, 3, 1000);
        assert_ne!(x, y);
    }

    #[test]
    fn hierarchy_validation_rejects_degenerate_configs() {
        assert!(Hierarchy::new(0, 1).is_err());
        let h = Hierarchy::new(4, 100).expect("valid shape");
        assert!(h.validate(8, 7).is_err(), "q_top larger than committees");
        let h = Hierarchy::new(2, 1).expect("valid");
        assert!(h.validate(8, 7).is_ok());
    }
}
