//! The address-encoded mapping layer (AMLayer, §V-A).
//!
//! The pool manager prepends an address-derived mapping block to the task
//! model: a stack of residual convolutions whose weights are a
//! deterministic PRF expansion of its blockchain address, each spectrally
//! normalized (power iteration, Eq. 4) so every residual map has Lipschitz
//! constant `c < 1` — making each block an invertible 1-1 mapping (no
//! information loss, Behrmann et al.) and the stack a composition of
//! invertible maps. The layer is frozen during training; any consensus
//! node can recompute it from the claimed address and reject blocks whose
//! models encode someone else.
//!
//! Two deliberate deviations from the paper's prose (DESIGN.md §6):
//!
//! * §VII-B describes a 3-in/64-out convolution, but an invertible
//!   *residual* map needs equal input/output dimensionality; we keep
//!   `channels → channels`.
//! * Because the identity skip passes the raw input through, a *single*
//!   residual block with small `c` contributes too little for an
//!   address swap to destroy accuracy. The default is therefore a stack
//!   of [`AmLayerSpec::DEFAULT_DEPTH`] blocks at `c = 0.8`: still
//!   invertible block-by-block, but the thief's perturbation compounds
//!   across the stack, reproducing the paper's Table I collapse (an
//!   ~50-point accuracy drop at mini-model scale; the clean-accuracy cost
//!   of a few points is a miniaturization artifact — see EXPERIMENTS.md).

use rpol_crypto::{Address, Prf};
use rpol_nn::conv::Conv2d;
use rpol_nn::layer::{Layer, Param};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Geometry of an AMLayer: `depth` stacked square-kernel residual
/// convolutions over `channels`-channel images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmLayerSpec {
    /// Image channels (input == output for invertibility).
    pub channels: usize,
    /// Kernel size (paper: 3, padding 1, stride 1).
    pub kernel: usize,
    /// Number of stacked residual blocks.
    pub depth: usize,
}

impl AmLayerSpec {
    /// Default stack depth (see the module docs).
    pub const DEFAULT_DEPTH: usize = 2;

    /// The default geometry: `depth` 3×3 residual convolutions, padding 1.
    pub fn for_channels(channels: usize) -> Self {
        Self {
            channels,
            kernel: 3,
            depth: Self::DEFAULT_DEPTH,
        }
    }

    /// Overrides the stack depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "AMLayer needs at least one block");
        self.depth = depth;
        self
    }
}

/// Cache key: the full generation input. `c` is keyed by its exact bit
/// pattern so two floats that round-trip differently never alias.
type StackKey = (Address, AmLayerSpec, u32);

/// Process-wide memo of derived weight stacks. Derivation is a pure
/// function of the key (PRF expansion + 30 power-iteration rounds per
/// block), so a cached stack is bitwise-identical to a fresh one — the
/// `cached_stack_is_bitwise_identical_to_generate` property test holds
/// this invariant.
static STACK_CACHE: OnceLock<Mutex<HashMap<StackKey, Arc<Vec<Tensor>>>>> = OnceLock::new();
static STACK_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static STACK_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Entry bound: a pool run touches a handful of `(address, spec, c)`
/// triples; anything past this is a leak (e.g. a fuzzer sweeping
/// addresses), so drop the lot rather than grow without bound.
const STACK_CACHE_CAP: usize = 128;

/// Process-lifetime count of weight stacks served from the cache.
pub fn stack_cache_hits() -> u64 {
    STACK_CACHE_HITS.load(Ordering::Relaxed)
}

/// Process-lifetime count of weight stacks derived from scratch.
pub fn stack_cache_misses() -> u64 {
    STACK_CACHE_MISSES.load(Ordering::Relaxed)
}

/// The address-encoded mapping layer:
/// `y = (1 + Conv_d) ∘ … ∘ (1 + Conv_1)(x)` with every `‖Conv_i‖ ≤ c < 1`.
///
/// # Examples
///
/// ```
/// use rpol::amlayer::{AmLayer, AmLayerSpec};
/// use rpol_crypto::Address;
/// use rpol_nn::layer::Layer;
/// use rpol_tensor::Tensor;
///
/// let addr = Address::from_seed(42);
/// let mut layer = AmLayer::generate(&addr, AmLayerSpec::for_channels(3), 0.9);
/// let x = Tensor::ones(&[1, 3, 8, 8]);
/// let y = layer.forward(&x, false);
/// assert_eq!(y.shape(), x.shape());
/// assert!(layer.verify_encodes(&addr));
/// ```
pub struct AmLayer {
    address: Address,
    spec: AmLayerSpec,
    lipschitz_c: f32,
    blocks: Vec<Conv2d>,
}

impl AmLayer {
    /// Number of power-iteration rounds for the spectral-norm estimate.
    const POWER_ITERS: usize = 30;

    /// Generates the AMLayer for `address` with per-block scaling
    /// coefficient `c`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < c < 1`.
    pub fn generate(address: &Address, spec: AmLayerSpec, c: f32) -> Self {
        assert!(
            c > 0.0 && c < 1.0,
            "Lipschitz coefficient must be in (0, 1), got {c}"
        );
        let blocks = Self::cached_weight_stack(address, spec, c)
            .iter()
            .map(|weight| {
                let bias = Tensor::zeros(&[spec.channels]);
                let mut conv = Conv2d::from_parts(weight.clone(), bias, (spec.kernel - 1) / 2);
                // Freeze: the AMLayer never trains.
                conv.visit_params_mut(&mut |p| p.frozen = true);
                conv
            })
            .collect();
        Self {
            address: *address,
            spec,
            lipschitz_c: c,
            blocks,
        }
    }

    /// Memoized lookup of the weight stack for `(address, spec, c)`.
    ///
    /// The first request per key pays the full derivation (PRF expansion
    /// plus [`Self::POWER_ITERS`] power-iteration rounds per block);
    /// every later request — layer generation for `test_accuracy`'s
    /// encoded model, flat-prefix commitment checks on the replay path,
    /// consensus re-verification — is a map lookup returning a shared
    /// handle to the identical tensors.
    pub fn cached_weight_stack(address: &Address, spec: AmLayerSpec, c: f32) -> Arc<Vec<Tensor>> {
        let key = (*address, spec, c.to_bits());
        let cache = STACK_CACHE.get_or_init(Default::default);
        if let Some(stack) = cache.lock().expect("amlayer cache poisoned").get(&key) {
            STACK_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            if rpol_obs::global_enabled() {
                rpol_obs::global().counter_add("rpol.amlayer.cache_hits", 1);
            }
            return stack.clone();
        }
        // Derive outside the lock: misses are rare and expensive, and two
        // racing derivations of the same key produce identical tensors.
        STACK_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        if rpol_obs::global_enabled() {
            rpol_obs::global().counter_add("rpol.amlayer.cache_misses", 1);
        }
        let stack = Arc::new(Self::derive_weight_stack(address, spec, c));
        let mut map = cache.lock().expect("amlayer cache poisoned");
        if map.len() >= STACK_CACHE_CAP {
            map.clear();
        }
        map.entry(key).or_insert_with(|| stack.clone());
        stack
    }

    /// Recomputes the spectrally normalized kernel of every block from
    /// scratch — the public verification path used by consensus nodes,
    /// and the uncached oracle the memo above is property-tested against.
    pub fn derive_weight_stack(address: &Address, spec: AmLayerSpec, c: f32) -> Vec<Tensor> {
        let prf = Prf::new(address.as_bytes());
        (0..spec.depth)
            .map(|block| {
                let mut rng = Pcg32::seed_from(prf.derive_seed(0xA31A + block as u64));
                let ch = spec.channels;
                let k = spec.kernel;
                let mut weight = Tensor::randn(&[ch, ch, k, k], &mut rng);
                // Kaiming-style scale before normalization keeps power
                // iteration numerically comfortable.
                weight.scale((2.0 / (ch * k * k) as f32).sqrt());
                let sigma = Self::spectral_norm(&weight, &mut rng);
                // Eq. 4: scale to c/σ̃ when that shrinks the layer.
                if c / sigma < 1.0 {
                    weight.scale(c / sigma);
                }
                weight
            })
            .collect()
    }

    /// Estimates the maximum singular value of a conv kernel reshaped to
    /// `[out, in·k·k]` by power iteration (the standard spectral-norm
    /// surrogate for convolutions).
    fn spectral_norm(weight: &Tensor, rng: &mut Pcg32) -> f32 {
        let out = weight.shape().dim(0);
        let cols: usize = weight.shape().dims()[1..].iter().product();
        let w = weight.reshape(&[out, cols]);
        let wt = w.transpose();
        let mut v = Tensor::randn(&[cols], rng);
        let mut sigma = 0.0f32;
        for _ in 0..Self::POWER_ITERS {
            let u = w.matvec(&v);
            let un = u.norm().max(1e-12);
            let u = &u * (1.0 / un);
            let v2 = wt.matvec(&u);
            sigma = v2.norm();
            v = &v2 * (1.0 / sigma.max(1e-12));
        }
        sigma.max(1e-12)
    }

    /// The encoded blockchain address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// The per-block Lipschitz scaling coefficient `c` (submitted on chain
    /// with the model).
    pub fn lipschitz_c(&self) -> f32 {
        self.lipschitz_c
    }

    /// The layer's geometry.
    pub fn spec(&self) -> AmLayerSpec {
        self.spec
    }

    /// Whether this layer's weights equal the canonical expansion of
    /// `address` — what a consensus node checks before paying out.
    pub fn verify_encodes(&self, address: &Address) -> bool {
        let expected = Self::cached_weight_stack(address, self.spec, self.lipschitz_c);
        self.blocks
            .iter()
            .zip(expected.iter())
            .all(|(block, kernel)| block.weight().value == *kernel)
    }

    /// Verifies that the leading weights of a flattened model vector are
    /// the canonical AMLayer expansion of `address`. Returns `false` when
    /// the vector is too short.
    pub fn verify_flat_prefix(flat: &[f32], address: &Address, spec: AmLayerSpec, c: f32) -> bool {
        if !(0.0..1.0).contains(&c) || c <= 0.0 {
            return false;
        }
        if flat.len() < Self::weight_count(spec) {
            return false;
        }
        let kernels = Self::cached_weight_stack(address, spec, c);
        let bias_len = spec.channels;
        let mut offset = 0;
        for kernel in kernels.iter() {
            let n = kernel.len();
            // RPoLv3 models live on the bf16 lattice: every protocol-visible
            // weight (frozen AMLayer prefix included) is snapped. Ownership
            // must survive that quantization, so a prefix equal to the
            // *lattice image* of the canonical expansion also verifies. The
            // image is still address-specific — truncation is deterministic,
            // so a different address yields a different image.
            let window = &flat[offset..offset + n];
            let exact = window == kernel.data();
            if !exact {
                let snapped = window
                    .iter()
                    .zip(kernel.data())
                    .all(|(&w, &k)| w.to_bits() == k.to_bits() & 0xFFFF_0000);
                if !snapped {
                    return false;
                }
            }
            offset += n;
            // The frozen zero bias follows each kernel in the flattening.
            if flat[offset..offset + bias_len].iter().any(|&b| b != 0.0) {
                return false;
            }
            offset += bias_len;
        }
        true
    }

    /// Parameter count of the whole stack (kernels + biases), all frozen.
    pub fn weight_count(spec: AmLayerSpec) -> usize {
        spec.depth * (spec.channels * spec.channels * spec.kernel * spec.kernel + spec.channels)
    }

    /// Empirically estimates each block's residual-map Lipschitz ratio on
    /// random input pairs; used by tests and the Table I harness to
    /// confirm Eq. 3 block by block.
    pub fn empirical_block_lipschitz(
        &mut self,
        trials: usize,
        hw: usize,
        rng: &mut Pcg32,
    ) -> Vec<f32> {
        let channels = self.spec.channels;
        self.blocks
            .iter_mut()
            .map(|block| {
                let mut worst = 0.0f32;
                for _ in 0..trials {
                    let x1 = Tensor::randn(&[1, channels, hw, hw], rng);
                    let x2 = Tensor::randn(&[1, channels, hw, hw], rng);
                    let f1 = block.forward(&x1, false);
                    let f2 = block.forward(&x2, false);
                    let num = f1.euclidean_distance(&f2);
                    let den = x1.euclidean_distance(&x2).max(1e-12);
                    worst = worst.max(num / den);
                }
                worst
            })
            .collect()
    }
}

impl std::fmt::Debug for AmLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AmLayer(addr {}, c {}, {} blocks, {} weights)",
            self.address,
            self.lipschitz_c,
            self.spec.depth,
            Self::weight_count(self.spec)
        )
    }
}

impl Layer for AmLayer {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for block in &mut self.blocks {
            let fx = block.forward(&x, train);
            assert_eq!(
                fx.shape(),
                x.shape(),
                "AMLayer blocks must preserve shape (equal channels, same-size conv)"
            );
            x = &fx + &x;
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Chain through the stack in reverse; parameter gradients are
        // accumulated but never applied (frozen).
        let mut g = grad_out.clone();
        for block in self.blocks.iter_mut().rev() {
            let dconv = block.backward(&g);
            g = &dconv + &g;
        }
        g
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for block in &self.blocks {
            block.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for block in &mut self.blocks {
            block.visit_params_mut(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AmLayerSpec {
        AmLayerSpec::for_channels(3)
    }

    fn flat_of(layer: &AmLayer) -> Vec<f32> {
        let mut flat = Vec::new();
        layer.visit_params(&mut |p| flat.extend_from_slice(p.value.data()));
        flat
    }

    #[test]
    fn generation_is_deterministic() {
        let addr = Address::from_seed(7);
        let a = AmLayer::generate(&addr, spec(), 0.9);
        let b = AmLayer::generate(&addr, spec(), 0.9);
        assert_eq!(flat_of(&a), flat_of(&b));
    }

    #[test]
    fn different_addresses_different_layers() {
        let a = AmLayer::generate(&Address::from_seed(1), spec(), 0.9);
        let b = AmLayer::generate(&Address::from_seed(2), spec(), 0.9);
        assert_ne!(flat_of(&a), flat_of(&b));
    }

    #[test]
    fn blocks_differ_within_the_stack() {
        let layer = AmLayer::generate(&Address::from_seed(3), spec(), 0.9);
        let stack = AmLayer::derive_weight_stack(&Address::from_seed(3), spec(), 0.9);
        assert_eq!(stack.len(), AmLayerSpec::DEFAULT_DEPTH);
        assert_ne!(stack[0], stack[1]);
        assert_eq!(layer.blocks.len(), stack.len());
    }

    #[test]
    fn ownership_survives_lattice_quantization() {
        // RPoLv3 snaps every weight to the bf16 lattice; the snapped
        // prefix must still verify for the true owner and still fail for
        // anyone else.
        let addr = Address::from_seed(17);
        let layer = AmLayer::generate(&addr, spec(), 0.9);
        let mut flat = flat_of(&layer);
        rpol_tensor::quant::snap_to_bf16(&mut flat);
        assert!(AmLayer::verify_flat_prefix(&flat, &addr, spec(), 0.9));
        assert!(!AmLayer::verify_flat_prefix(
            &flat,
            &Address::from_seed(18),
            spec(),
            0.9
        ));
        // A lattice vector that is *not* the owner's image fails too.
        flat[0] = f32::from_bits(flat[0].to_bits() ^ 0x0001_0000);
        assert!(!AmLayer::verify_flat_prefix(&flat, &addr, spec(), 0.9));
    }

    #[test]
    fn verification_accepts_own_address_only() {
        let addr = Address::from_seed(3);
        let layer = AmLayer::generate(&addr, spec(), 0.9);
        assert!(layer.verify_encodes(&addr));
        assert!(!layer.verify_encodes(&Address::from_seed(4)));
    }

    #[test]
    fn block_lipschitz_constraint_holds() {
        let mut rng = Pcg32::seed_from(5);
        let mut layer = AmLayer::generate(&Address::from_seed(5), spec(), 0.9);
        for (i, ratio) in layer
            .empirical_block_lipschitz(40, 8, &mut rng)
            .into_iter()
            .enumerate()
        {
            assert!(ratio < 1.0, "block {i} empirical Lipschitz {ratio} >= 1");
            assert!(
                ratio > 0.05,
                "block {i} suspiciously close to zero: {ratio}"
            );
        }
    }

    #[test]
    fn params_are_frozen() {
        let layer = AmLayer::generate(&Address::from_seed(6), spec(), 0.9);
        let mut all_frozen = true;
        layer.visit_params(&mut |p| all_frozen &= p.frozen);
        assert!(all_frozen);
        assert_eq!(layer.param_count(), AmLayer::weight_count(spec()));
    }

    #[test]
    fn forward_preserves_shape_and_information() {
        let mut layer = AmLayer::generate(&Address::from_seed(8), spec(), 0.9);
        let mut rng = Pcg32::seed_from(9);
        let x1 = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let x2 = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y1 = layer.forward(&x1, false);
        let y2 = layer.forward(&x2, false);
        assert_eq!(y1.shape(), x1.shape());
        // Composition of invertible residuals: distinct inputs stay
        // distinct with margin ≥ Π(1−c) per block.
        let dist_in = x1.euclidean_distance(&x2);
        let dist_out = y1.euclidean_distance(&y2);
        assert!(dist_out > 1e-4 * dist_in, "information collapsed");
    }

    #[test]
    fn swapping_addresses_perturbs_features_strongly() {
        // The attack surface: the thief's stack output differs from the
        // owner's by a magnitude comparable to the input itself.
        let mut rng = Pcg32::seed_from(11);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let mut owner = AmLayer::generate(&Address::from_seed(1), spec(), 0.9);
        let mut thief = AmLayer::generate(&Address::from_seed(2), spec(), 0.9);
        let diff = owner
            .forward(&x, false)
            .euclidean_distance(&thief.forward(&x, false));
        assert!(
            diff > 0.5 * x.norm(),
            "swap perturbation too weak: {diff} vs input {}",
            x.norm()
        );
    }

    #[test]
    fn flat_prefix_verification() {
        let addr = Address::from_seed(10);
        let layer = AmLayer::generate(&addr, spec(), 0.9);
        let mut flat = flat_of(&layer);
        flat.extend_from_slice(&[1.0, 2.0, 3.0]); // task-model weights
        assert!(AmLayer::verify_flat_prefix(&flat, &addr, spec(), 0.9));
        assert!(!AmLayer::verify_flat_prefix(
            &flat,
            &Address::from_seed(11),
            spec(),
            0.9
        ));
        // Tampered prefix fails — first block and a later block.
        let mut t1 = flat.clone();
        t1[0] += 1e-3;
        assert!(!AmLayer::verify_flat_prefix(&t1, &addr, spec(), 0.9));
        let per_block = spec().channels * spec().channels * 9 + spec().channels;
        let mut t2 = flat.clone();
        t2[per_block + 3] += 1e-3;
        assert!(!AmLayer::verify_flat_prefix(&t2, &addr, spec(), 0.9));
        // Wrong c fails.
        assert!(!AmLayer::verify_flat_prefix(&flat, &addr, spec(), 0.5));
    }

    #[test]
    #[should_panic(expected = "Lipschitz coefficient")]
    fn invalid_c_rejected() {
        AmLayer::generate(&Address::from_seed(0), spec(), 1.5);
    }

    #[test]
    fn cache_hit_after_first_use() {
        let addr = Address::from_seed(0xCAFE);
        let fresh = AmLayer::derive_weight_stack(&addr, spec(), 0.77);
        let first = AmLayer::cached_weight_stack(&addr, spec(), 0.77);
        let hits_before = stack_cache_hits();
        let second = AmLayer::cached_weight_stack(&addr, spec(), 0.77);
        assert_eq!(*first, fresh, "cached stack differs from fresh derivation");
        assert_eq!(*second, fresh);
        assert!(
            stack_cache_hits() > hits_before,
            "second lookup of the same key must be a cache hit"
        );
        // Distinct c bit patterns are distinct keys.
        let other = AmLayer::cached_weight_stack(&addr, spec(), 0.78);
        assert_ne!(*other, fresh);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Satellite: across addresses, geometries, and coefficients, the
        /// memoized stack is bitwise-identical to an uncached derivation —
        /// both on the miss path (first call) and the hit path (second).
        #[test]
        fn cached_stack_is_bitwise_identical_to_generate(
            seed in proptest::prelude::any::<u64>(),
            channels in 1usize..4,
            depth in 1usize..3,
            c_mill in 100u32..950,
        ) {
            let addr = Address::from_seed(seed);
            let spec = AmLayerSpec::for_channels(channels).with_depth(depth);
            let c = c_mill as f32 / 1000.0;
            let oracle = AmLayer::derive_weight_stack(&addr, spec, c);
            let miss_or_hit = AmLayer::cached_weight_stack(&addr, spec, c);
            let hit = AmLayer::cached_weight_stack(&addr, spec, c);
            proptest::prop_assert_eq!(&*miss_or_hit, &oracle);
            proptest::prop_assert_eq!(&*hit, &oracle);
            // The generated layer's flattened params embed the same bits.
            let layer = AmLayer::generate(&addr, spec, c);
            let flat = flat_of(&layer);
            proptest::prop_assert!(AmLayer::verify_flat_prefix(&flat, &addr, spec, c));
        }
    }
}
