//! Sample-count analysis: Theorem 2 (soundness) of §VI.
//!
//! For an adversary with honesty ratio `h_A` (fraction of honestly trained
//! checkpoints) and an LSH false-positive ceiling `Pr_lsh(β)`, one sampled
//! checkpoint passes with probability at most
//! `p₁ = h_A + (1 − h_A)·Pr_lsh(β)`, so `q` independent samples bound the
//! evasion probability by `p₁^q`. Inverting gives the minimum sample count
//! for a target soundness error (Eq. 8).

use serde::{Deserialize, Serialize};

/// Per-sample pass probability `h_A + (1 − h_A)·Pr_lsh(β)` for an
/// adversary.
///
/// # Panics
///
/// Panics unless both arguments are probabilities in `[0, 1]`.
pub fn per_sample_pass_probability(honesty_ratio: f64, pr_lsh_beta: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&honesty_ratio),
        "honesty ratio must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&pr_lsh_beta),
        "Pr_lsh(beta) must be in [0, 1]"
    );
    honesty_ratio + (1.0 - honesty_ratio) * pr_lsh_beta
}

/// Evasion probability (soundness error) for `q` sampled checkpoints:
/// `(h_A + (1 − h_A)·Pr_lsh(β))^q`.
///
/// # Panics
///
/// Panics if `q == 0` or the probabilities are invalid.
pub fn evasion_probability(q: u32, honesty_ratio: f64, pr_lsh_beta: f64) -> f64 {
    assert!(q > 0, "need at least one sample");
    per_sample_pass_probability(honesty_ratio, pr_lsh_beta).powi(q as i32)
}

/// Minimum `q` achieving soundness error at most `pr_err` (Eq. 8):
/// `q ≥ log(pr_err) / log(h_A + (1 − h_A)·Pr_lsh(β))`.
///
/// # Examples
///
/// ```
/// use rpol::sampling::samples_for_soundness;
///
/// // The paper's worked example: 1% soundness error, Pr_lsh(β) = 5%.
/// assert_eq!(samples_for_soundness(0.01, 0.10, 0.05), Some(3));
/// assert_eq!(samples_for_soundness(0.01, 0.90, 0.05), Some(47));
/// ```
///
/// Returns `None` when the adversary is fully honest (`p₁ = 1`), in which
/// case no finite sample count separates it from honesty — nor needs to.
///
/// # Panics
///
/// Panics unless `0 < pr_err < 1` and the probabilities are valid.
pub fn samples_for_soundness(pr_err: f64, honesty_ratio: f64, pr_lsh_beta: f64) -> Option<u32> {
    assert!(
        pr_err > 0.0 && pr_err < 1.0,
        "soundness error must be in (0, 1)"
    );
    let p1 = per_sample_pass_probability(honesty_ratio, pr_lsh_beta);
    if p1 >= 1.0 {
        return None;
    }
    let q = (pr_err.ln() / p1.ln()).ceil();
    Some(q.max(1.0) as u32)
}

/// A row of the soundness table: the paper's worked example grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoundnessPoint {
    /// Adversary honesty ratio `h_A`.
    pub honesty_ratio: f64,
    /// Required sample count `q`.
    pub q: u32,
    /// Achieved soundness error at that `q`.
    pub achieved_error: f64,
}

/// Computes the Theorem 2 sample counts across a grid of honesty ratios
/// (the paper evaluates `h_A ∈ {10%, 90%}` at `Pr_err = 1%`,
/// `Pr_lsh(β) = 5%`, obtaining `q = 3` and `q = 47`).
pub fn soundness_table(pr_err: f64, pr_lsh_beta: f64, ratios: &[f64]) -> Vec<SoundnessPoint> {
    ratios
        .iter()
        .map(|&h| {
            let q = samples_for_soundness(pr_err, h, pr_lsh_beta)
                .expect("h < 1 always yields finite q");
            SoundnessPoint {
                honesty_ratio: h,
                q,
                achieved_error: evasion_probability(q, h, pr_lsh_beta),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_q3_and_q47() {
        // Pr_err = 1%, Pr_lsh(β) = 5%: h = 10% → 3 samples, h = 90% → 47.
        assert_eq!(samples_for_soundness(0.01, 0.10, 0.05), Some(3));
        assert_eq!(samples_for_soundness(0.01, 0.90, 0.05), Some(47));
    }

    #[test]
    fn paper_example_soundness_at_q3() {
        // §VI: at q = 3 with h = 90%, the soundness error is ≈ 74.12%.
        let p = evasion_probability(3, 0.90, 0.05);
        assert!((p - 0.7412).abs() < 0.001, "p = {p}");
    }

    #[test]
    fn more_samples_tighter_soundness() {
        let e3 = evasion_probability(3, 0.5, 0.05);
        let e10 = evasion_probability(10, 0.5, 0.05);
        assert!(e10 < e3);
    }

    #[test]
    fn fully_honest_needs_no_separation() {
        assert_eq!(samples_for_soundness(0.01, 1.0, 0.05), None);
    }

    #[test]
    fn fully_dishonest_cheapest_to_catch() {
        let q0 = samples_for_soundness(0.01, 0.0, 0.05).expect("finite");
        let q9 = samples_for_soundness(0.01, 0.9, 0.05).expect("finite");
        assert!(q0 < q9);
        assert_eq!(q0, 2); // 0.05^2 = 0.25% < 1%
    }

    #[test]
    fn table_is_monotone_in_honesty() {
        let table = soundness_table(0.01, 0.05, &[0.1, 0.3, 0.5, 0.7, 0.9]);
        assert!(table.windows(2).all(|w| w[0].q <= w[1].q));
        for p in &table {
            assert!(p.achieved_error <= 0.01 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        evasion_probability(0, 0.5, 0.05);
    }
}
