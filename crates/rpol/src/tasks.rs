//! Task model architectures and training configuration.
//!
//! The paper's tasks are ResNet18/CIFAR-10 and ResNet50/CIFAR-100; this
//! reproduction trains CPU-sized "mini" counterparts on the synthetic
//! CIFAR stand-ins (DESIGN.md §2). The architectures keep the structural
//! ingredients that matter to RPoL — convolutions, residual blocks, a
//! classifier head, ten-of-thousands of weights — at laptop scale.

use crate::amlayer::{AmLayer, AmLayerSpec};
use rpol_crypto::Address;
use rpol_nn::activation::Relu;
use rpol_nn::conv::Conv2d;
use rpol_nn::data::ImageSpec;
use rpol_nn::dense::Dense;
use rpol_nn::dropout::Dropout;
use rpol_nn::layer::Flatten;
use rpol_nn::model::Sequential;
use rpol_nn::norm::LayerNorm;
use rpol_nn::optim::OptimizerSpec;
use rpol_nn::pool::{AvgPool2, MaxPool2};
use rpol_nn::residual::Residual;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// The task architectures of the paper's evaluation, miniaturized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelArch {
    /// Stand-in for ResNet18: one conv stem + one residual block.
    MiniResNet18,
    /// Stand-in for ResNet50: wider stem + two residual blocks.
    MiniResNet50,
    /// Stand-in for VGG16 (Table II's communication-heavy model): plain
    /// conv stacks with max pooling, LayerNorm and dropout — no residual
    /// connections, more parameters in the dense head.
    MiniVgg16,
}

impl ModelArch {
    /// Builds the (AMLayer-free) task model for a dataset spec.
    ///
    /// Weight initialization is seeded: every consensus node building the
    /// same task from the same seed gets identical initial weights, which
    /// RPoL's replay verification requires.
    pub fn build(&self, spec: &ImageSpec, seed: u64) -> Sequential {
        let mut rng = Pcg32::seed_from(seed);
        if let ModelArch::MiniVgg16 = self {
            return Self::build_mini_vgg(spec, &mut rng);
        }
        let (stem, blocks) = match self {
            ModelArch::MiniResNet18 => (8, 1),
            ModelArch::MiniResNet50 => (12, 2),
            ModelArch::MiniVgg16 => unreachable!("handled above"),
        };
        let mut layers: Vec<Box<dyn rpol_nn::layer::Layer>> = Vec::new();
        layers.push(Box::new(Conv2d::new(spec.channels, stem, 3, 1, &mut rng)));
        layers.push(Box::new(Relu::new()));
        for _ in 0..blocks {
            layers.push(Box::new(Residual::new(Box::new(Conv2d::new(
                stem, stem, 3, 1, &mut rng,
            )))));
            layers.push(Box::new(Relu::new()));
        }
        layers.push(Box::new(AvgPool2::new()));
        layers.push(Box::new(Flatten::new()));
        let feat = stem * (spec.height / 2) * (spec.width / 2);
        layers.push(Box::new(Dense::new(feat, 32, &mut rng)));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Dense::new(32, spec.classes, &mut rng)));
        Sequential::new(layers)
    }

    /// VGG-style stack: conv/conv/maxpool, then a dropout-regularized,
    /// LayerNorm-stabilized dense head (proportionally heavier in dense
    /// parameters, like the original VGG16).
    fn build_mini_vgg(spec: &ImageSpec, rng: &mut Pcg32) -> Sequential {
        let stem = 10;
        let layers: Vec<Box<dyn rpol_nn::layer::Layer>> = vec![
            Box::new(Conv2d::new(spec.channels, stem, 3, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(stem, stem, 3, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(
                stem * (spec.height / 2) * (spec.width / 2),
                64,
                rng,
            )),
            Box::new(LayerNorm::new(64)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.2, 0xD20)),
            Box::new(Dense::new(64, 48, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(48, spec.classes, rng)),
        ];
        Sequential::new(layers)
    }

    /// Human-readable name mirroring the paper's task labels.
    pub fn name(&self) -> &'static str {
        match self {
            ModelArch::MiniResNet18 => "mini-ResNet18",
            ModelArch::MiniResNet50 => "mini-ResNet50",
            ModelArch::MiniVgg16 => "mini-VGG16",
        }
    }
}

/// Full configuration of a pool training task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Architecture to train.
    pub arch: ModelArch,
    /// Dataset geometry.
    pub spec: ImageSpec,
    /// Model-init seed (shared by all consensus nodes for a task).
    pub init_seed: u64,
    /// Mini-batch size (paper default 128; scaled down here).
    pub batch_size: usize,
    /// Checkpoint interval `i` in steps (paper default 5).
    pub checkpoint_interval: usize,
    /// Optimizer (paper default SGDM 0.1/0.9).
    pub optimizer: OptimizerSpec,
    /// AMLayer Lipschitz coefficient `c`. The paper uses 0.5 with its
    /// 3→64 mapping layer; our invertible-residual geometry (DESIGN.md
    /// deviation 2) passes the raw input through the skip connection, so
    /// the default is raised to 0.8 to give the encoded path a comparable
    /// share of the downstream features (still `< 1`, preserving
    /// invertibility).
    pub lipschitz_c: f32,
    /// Number of stacked AMLayer residual blocks (see
    /// [`crate::amlayer::AmLayerSpec`]).
    pub amlayer_depth: usize,
}

impl TaskConfig {
    /// Task A of the paper: (mini-)ResNet18 on the CIFAR-10 stand-in.
    pub fn task_a() -> Self {
        Self {
            arch: ModelArch::MiniResNet18,
            spec: ImageSpec::cifar10_like(),
            init_seed: 0xA,
            batch_size: 16,
            checkpoint_interval: 5,
            // SGDM like the paper; lr scaled to the mini task (0.1 on the
            // full-size task corresponds to a tamer step here, and keeps
            // segment replay in the linearly-divergent regime).
            optimizer: OptimizerSpec::SgdMomentum {
                lr: 0.05,
                momentum: 0.9,
            },
            lipschitz_c: 0.8,
            amlayer_depth: AmLayerSpec::DEFAULT_DEPTH,
        }
    }

    /// Task B of the paper: (mini-)ResNet50 on the CIFAR-100 stand-in.
    pub fn task_b() -> Self {
        Self {
            arch: ModelArch::MiniResNet50,
            spec: ImageSpec::cifar100_like(),
            init_seed: 0xB,
            batch_size: 16,
            checkpoint_interval: 5,
            optimizer: OptimizerSpec::SgdMomentum {
                lr: 0.05,
                momentum: 0.9,
            },
            lipschitz_c: 0.8,
            amlayer_depth: AmLayerSpec::DEFAULT_DEPTH,
        }
    }

    /// Task C: (mini-)VGG16 on the CIFAR-10 stand-in — the
    /// communication-heavy architecture of Table II.
    pub fn task_c() -> Self {
        Self {
            arch: ModelArch::MiniVgg16,
            spec: ImageSpec::cifar10_like(),
            init_seed: 0xC,
            batch_size: 16,
            checkpoint_interval: 5,
            optimizer: OptimizerSpec::SgdMomentum {
                lr: 0.05,
                momentum: 0.9,
            },
            lipschitz_c: 0.8,
            amlayer_depth: AmLayerSpec::DEFAULT_DEPTH,
        }
    }

    /// A minimal configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            arch: ModelArch::MiniResNet18,
            spec: ImageSpec::tiny(),
            init_seed: 0x7,
            batch_size: 4,
            checkpoint_interval: 2,
            optimizer: OptimizerSpec::paper_default(),
            lipschitz_c: 0.8,
            amlayer_depth: AmLayerSpec::DEFAULT_DEPTH,
        }
    }

    /// Builds the bare task model (no AMLayer).
    pub fn build_model(&self) -> Sequential {
        self.arch.build(&self.spec, self.init_seed)
    }

    /// Builds the address-encoded model: AMLayer for `address` in front of
    /// the task model (§V-A).
    pub fn build_encoded_model(&self, address: &Address) -> Sequential {
        let mut model = self.build_model();
        let am = AmLayer::generate(address, self.amlayer_spec(), self.lipschitz_c);
        model.push_front(Box::new(am));
        model
    }

    /// The AMLayer geometry for this task.
    pub fn amlayer_spec(&self) -> AmLayerSpec {
        AmLayerSpec::for_channels(self.spec.channels).with_depth(self.amlayer_depth)
    }

    /// Verifies that a flattened encoded-model weight vector encodes
    /// `address` — the consensus-side ownership check.
    pub fn verify_model_owner(&self, flat: &[f32], address: &Address, c: f32) -> bool {
        AmLayer::verify_flat_prefix(flat, address, self.amlayer_spec(), c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_nn::loss::softmax_cross_entropy;
    use rpol_tensor::Tensor;

    #[test]
    fn architectures_build_and_run() {
        for arch in [
            ModelArch::MiniResNet18,
            ModelArch::MiniResNet50,
            ModelArch::MiniVgg16,
        ] {
            let spec = ImageSpec::cifar10_like();
            let mut model = arch.build(&spec, 1);
            let x = Tensor::ones(&[2, spec.channels, spec.height, spec.width]);
            let y = model.forward(&x, false);
            assert_eq!(y.shape().dims(), &[2, spec.classes]);
            assert!(model.param_count() > 1000, "{}", arch.name());
        }
    }

    #[test]
    fn resnet50_is_larger() {
        let spec = ImageSpec::cifar10_like();
        assert!(
            ModelArch::MiniResNet50.build(&spec, 1).param_count()
                > ModelArch::MiniResNet18.build(&spec, 1).param_count()
        );
    }

    #[test]
    fn same_seed_same_model() {
        let spec = ImageSpec::tiny();
        let a = ModelArch::MiniResNet18.build(&spec, 9);
        let b = ModelArch::MiniResNet18.build(&spec, 9);
        assert_eq!(a.flatten_params(), b.flatten_params());
        let c = ModelArch::MiniResNet18.build(&spec, 10);
        assert_ne!(a.flatten_params(), c.flatten_params());
    }

    #[test]
    fn encoded_model_trains_and_verifies() {
        let cfg = TaskConfig::tiny();
        let addr = Address::from_seed(77);
        let mut model = cfg.build_encoded_model(&addr);
        let flat = model.flatten_params();
        assert!(cfg.verify_model_owner(&flat, &addr, cfg.lipschitz_c));
        assert!(!cfg.verify_model_owner(&flat, &Address::from_seed(78), cfg.lipschitz_c));

        // One training step must leave the AMLayer prefix untouched.
        let x = Tensor::ones(&[4, cfg.spec.channels, cfg.spec.height, cfg.spec.width]);
        let labels = vec![0, 1, 2, 3];
        let mut opt = cfg.optimizer.build();
        let logits = model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        model.backward(&grad);
        model.step(opt.as_mut());
        let flat2 = model.flatten_params();
        assert!(cfg.verify_model_owner(&flat2, &addr, cfg.lipschitz_c));
        assert_ne!(flat, flat2, "trainable weights should move");
    }

    #[test]
    fn encoded_model_param_count() {
        let cfg = TaskConfig::tiny();
        let plain = cfg.build_model().param_count();
        let encoded = cfg
            .build_encoded_model(&Address::from_seed(1))
            .param_count();
        assert_eq!(encoded - plain, AmLayer::weight_count(cfg.amlayer_spec()));
    }
}
