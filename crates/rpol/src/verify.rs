//! Sampled replay verification with LSH fuzzy matching and the
//! double-check fallback (§V-B verification, §V-C optimization).
//!
//! RPoLv3 adds a two-tier accept rule over the quantized commitment: the
//! replayed (and lattice-snapped) weights' LSH signature is compared
//! group-by-group against the committed entry, and the **count** of
//! agreeing groups decides. Two or more agreeing groups is a confident
//! accept; one agreeing group is a *borderline* match that routes through
//! the raw-weight escape hatch (fetch the output, bind it exactly via the
//! packed-image digest, distance-check); zero is the ordinary
//! double-check. Every path either tightens or equals RPoLv2's acceptance
//! region, so Theorem 2's soundness bound carries over unchanged.

use crate::commitment::EpochCommitment;
use crate::tasks::TaskConfig;
use crate::trainer::{LocalTrainer, Segment};
use rpol_crypto::commitment::Commitment as _;
use rpol_crypto::sha256::sha256_f32;
use rpol_lsh::LshFamily;
use rpol_nn::data::SyntheticImages;
use rpol_nn::model::Sequential;
use rpol_obs::{event, span, Recorder};
use rpol_sim::gpu::NoiseInjector;
use rpol_tensor::scratch::ScratchArena;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A checkpoint opening could not be obtained: the link to the worker is
/// dead, the retry budget ran out, or the response failed to decode
/// permanently. This is a **transport** verdict, not a verification one —
/// the manager quarantines the worker for the epoch instead of flagging
/// it as a cheater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofUnavailable {
    /// The checkpoint index whose opening failed.
    pub index: usize,
}

impl std::fmt::Display for ProofUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint {} opening unavailable", self.index)
    }
}

impl std::error::Error for ProofUnavailable {}

/// Serves checkpoint openings on demand — implemented by pool workers.
///
/// Honest workers return their stored checkpoints; adversaries return
/// whatever they committed to (they cannot do better: the commitment binds
/// them before sampling decisions are revealed). Under the fault-injecting
/// transport a fetch can *fail* ([`ProofUnavailable`]): the worker crashed
/// or its link exhausted the retry budget. Local in-process providers are
/// infallible and always return `Ok`.
pub trait ProofProvider {
    /// The committed weights of checkpoint `index`.
    ///
    /// In-process providers that keep their checkpoints resident return a
    /// [`Cow::Borrowed`] view, so the hot replay loop never copies a
    /// weight vector it already holds; transport-backed providers decode
    /// into an owned buffer and return [`Cow::Owned`].
    ///
    /// # Errors
    ///
    /// [`ProofUnavailable`] when the opening cannot be fetched (dead or
    /// exhausted transport link) — never for a *wrong* opening, which is
    /// a verification failure, not a transport one.
    fn open_checkpoint(&self, index: usize) -> Result<Cow<'_, [f32]>, ProofUnavailable>;
}

/// Why a sampled checkpoint was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The opened input weights do not match the commitment.
    InputCommitmentMismatch,
    /// The opened output weights do not match the commitment.
    OutputCommitmentMismatch,
    /// Replayed weights are farther than `β` from the claimed output.
    DistanceExceeded {
        /// Measured Euclidean distance between replayed and claimed.
        distance: f32,
        /// The tolerance in force.
        beta: f32,
    },
    /// An opened checkpoint contained non-finite weights (NaN/∞) — a
    /// numerically hostile payload rejected before replay.
    MalformedWeights,
}

/// Outcome of verifying one sampled checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VerificationOutcome {
    /// The checkpoint verified.
    Accepted {
        /// Whether the raw-weight double-check was needed (RPoLv2 only:
        /// an LSH mismatch on honest weights, i.e. an LSH false negative).
        double_checked: bool,
    },
    /// The checkpoint failed verification.
    Rejected(RejectReason),
    /// The opening could not be fetched over the transport (dead link,
    /// retry budget exhausted). Neither an accept nor a cheating verdict:
    /// the worker is quarantined for the epoch, not rejected.
    Unavailable,
}

impl VerificationOutcome {
    /// Whether the checkpoint passed.
    pub fn is_accepted(&self) -> bool {
        matches!(self, VerificationOutcome::Accepted { .. })
    }
}

/// Outcome of verifying a single sampled segment, with the cost it
/// incurred. The unit the executor schedules: one worker's verification
/// decomposes into one `SampleVerdict` per sampled checkpoint, merged back
/// into a [`WorkerVerdict`] in sample-index order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleVerdict {
    /// The sampled checkpoint index.
    pub sample: usize,
    /// How the sample verified.
    pub outcome: VerificationOutcome,
    /// Proof bytes this sample required (raw weight openings).
    pub proof_bytes: u64,
    /// Training steps replayed for this sample.
    pub replayed_steps: u64,
}

/// Result of verifying all sampled checkpoints of one worker's epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerVerdict {
    /// Per-sample outcomes, in sample order.
    pub outcomes: Vec<(usize, VerificationOutcome)>,
    /// Bytes the worker had to upload for proofs (raw weight openings).
    pub proof_bytes: u64,
    /// Training steps the manager re-executed.
    pub replayed_steps: u64,
}

impl WorkerVerdict {
    /// Whether every sampled checkpoint verified (the worker is credited).
    pub fn all_accepted(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_accepted())
    }

    /// Whether the verdict is really a transport failure: some sampled
    /// opening could not be fetched at all. Callers must treat this as
    /// "quarantine for the epoch", never as "caught cheating".
    pub fn transport_failed(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(_, o)| matches!(o, VerificationOutcome::Unavailable))
    }

    /// Merges per-sample verdicts (in sample-index order) into a worker
    /// verdict, reproducing the serial early-stop contract: verdicts after
    /// the first [`VerificationOutcome::Unavailable`] are discarded, and
    /// their proof bytes and replayed steps are not counted — exactly what
    /// a serial verifier would have skipped against a dead link.
    pub fn from_samples(verdicts: impl IntoIterator<Item = SampleVerdict>) -> Self {
        let mut outcomes = Vec::new();
        let mut proof_bytes = 0u64;
        let mut replayed_steps = 0u64;
        for v in verdicts {
            let stop = matches!(v.outcome, VerificationOutcome::Unavailable);
            proof_bytes += v.proof_bytes;
            replayed_steps += v.replayed_steps;
            outcomes.push((v.sample, v.outcome));
            if stop {
                break;
            }
        }
        WorkerVerdict {
            outcomes,
            proof_bytes,
            replayed_steps,
        }
    }

    /// Number of double-check fallbacks triggered.
    pub fn double_checks(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    VerificationOutcome::Accepted {
                        double_checked: true
                    }
                )
            })
            .count()
    }
}

/// The manager-side verifier for one epoch of one worker.
///
/// Holds everything needed to replay: the task config, the worker's shard
/// and nonce, the distance tolerance `β`, and (for RPoLv2) the epoch's LSH
/// family.
pub struct Verifier<'a> {
    config: &'a TaskConfig,
    shard: &'a SyntheticImages,
    nonce: u64,
    beta: f32,
    /// LSH family for RPoLv2; `None` selects RPoLv1 raw verification.
    family: Option<&'a LshFamily>,
    noise: NoiseInjector,
    /// Weight-sized scratch buffers carried across the per-sample replay
    /// trainers, so verifying a whole sample set allocates the flatten
    /// staging buffers once instead of twice per training step.
    arena: ScratchArena,
    /// Observability handle (replay spans, double-check events). Defaults
    /// to the shared no-op recorder.
    rec: &'a Recorder,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier.
    ///
    /// # Panics
    ///
    /// Panics unless `beta > 0`.
    pub fn new(
        config: &'a TaskConfig,
        shard: &'a SyntheticImages,
        nonce: u64,
        beta: f32,
        family: Option<&'a LshFamily>,
        noise: NoiseInjector,
    ) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Self::with_arena(
            config,
            shard,
            nonce,
            beta,
            family,
            noise,
            ScratchArena::new(),
        )
    }

    /// Like [`new`], but seeded with an existing scratch arena, so a
    /// manager verifying many workers on one thread carries the warmed
    /// weight-sized buffers from verifier to verifier. Reclaim it with
    /// [`into_arena`].
    ///
    /// [`new`]: Verifier::new
    /// [`into_arena`]: Verifier::into_arena
    ///
    /// # Panics
    ///
    /// Panics unless `beta > 0`.
    pub fn with_arena(
        config: &'a TaskConfig,
        shard: &'a SyntheticImages,
        nonce: u64,
        beta: f32,
        family: Option<&'a LshFamily>,
        noise: NoiseInjector,
        arena: ScratchArena,
    ) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Self {
            config,
            shard,
            nonce,
            beta,
            family,
            noise,
            arena,
            rec: rpol_obs::noop().as_ref(),
        }
    }

    /// Attaches an observability recorder: each replayed segment becomes a
    /// `rpol.verify.replay_segment` span, double-check fallbacks and
    /// transport-failed openings become events.
    pub fn with_recorder(mut self, rec: &'a Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Consumes the verifier, returning its scratch arena for reuse.
    pub fn into_arena(self) -> ScratchArena {
        self.arena
    }

    /// Verifies the sampled checkpoint indices of one worker.
    ///
    /// `segments[j]` transforms checkpoint `j` into checkpoint `j+1`;
    /// sample index `j` therefore refers to the segment between committed
    /// checkpoints `j` and `j+1`.
    ///
    /// # Panics
    ///
    /// Panics if a sample index has no successor checkpoint in the
    /// commitment (programming error in the sampler).
    pub fn verify_samples(
        &mut self,
        model: &mut Sequential,
        commitment: &EpochCommitment,
        segments: &[Segment],
        samples: &[usize],
        provider: &dyn ProofProvider,
    ) -> WorkerVerdict {
        let mut verdicts = Vec::with_capacity(samples.len());
        for &j in samples {
            let v = self.verify_sample(model, commitment, segments, j, provider);
            // A fetch failure means the link is dead or exhausted — later
            // fetches would fail too, so record one Unavailable and stop.
            let stop = matches!(v.outcome, VerificationOutcome::Unavailable);
            verdicts.push(v);
            if stop {
                break;
            }
        }
        WorkerVerdict::from_samples(verdicts)
    }

    /// Verifies a single sampled checkpoint index — the segment-granular
    /// unit the executor schedules independently. Behaves exactly like one
    /// iteration of [`verify_samples`]: same spans, events, byte
    /// accounting, and replay numerics. Sample outcomes are independent of
    /// each other (the replay noise stream is cloned per sample), so
    /// verdicts computed on different threads merge back losslessly via
    /// [`WorkerVerdict::from_samples`].
    ///
    /// [`verify_samples`]: Verifier::verify_samples
    ///
    /// # Panics
    ///
    /// Panics if `index` has no successor checkpoint in the commitment
    /// (programming error in the sampler).
    pub fn verify_sample(
        &mut self,
        model: &mut Sequential,
        commitment: &EpochCommitment,
        segments: &[Segment],
        index: usize,
        provider: &dyn ProofProvider,
    ) -> SampleVerdict {
        let j = index;
        assert!(j + 1 < commitment.len(), "sample {j} beyond commitment");
        let model_bytes = (model.param_count() * 4) as u64;
        let mut proof_bytes = 0u64;
        let mut replayed_steps = 0u64;
        let rec = self.rec;
        let segment = segments[j];
        let _sample_span = span!(
            rec,
            "rpol.verify.replay_segment",
            sample = j,
            steps = segment.steps
        );
        let verdict =
            |outcome: VerificationOutcome, proof_bytes: u64, replayed_steps: u64| SampleVerdict {
                sample: j,
                outcome,
                proof_bytes,
                replayed_steps,
            };
        let input = match provider.open_checkpoint(j) {
            Ok(weights) => weights,
            Err(_) => {
                event!(rec, "rpol.verify.unavailable", sample = j);
                return verdict(
                    VerificationOutcome::Unavailable,
                    proof_bytes,
                    replayed_steps,
                );
            }
        };
        // V3 openings travel as packed bf16 images: 2 bytes per weight
        // instead of 4 (lattice checkpoints round-trip losslessly).
        proof_bytes += if matches!(commitment, EpochCommitment::V3(_)) {
            model_bytes / 2
        } else {
            model_bytes
        };

        // Step 0: refuse numerically hostile payloads outright — a
        // NaN/∞ checkpoint would otherwise poison the replay. Under
        // RPoLv3 an opened checkpoint must additionally sit *on* the bf16
        // lattice: the protocol trains on lattice points, and lattice
        // membership is what upgrades the packed-image digest to an exact
        // binding (off-lattice weights could share an image).
        if !input.iter().all(|w| w.is_finite())
            || (matches!(commitment, EpochCommitment::V3(_))
                && !rpol_tensor::quant::is_bf16_lattice(&input))
        {
            return verdict(
                VerificationOutcome::Rejected(RejectReason::MalformedWeights),
                proof_bytes,
                replayed_steps,
            );
        }

        // Step 1: the opened input must match the commitment.
        if !self.check_commitment(commitment, j, &input) {
            return verdict(
                VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch),
                proof_bytes,
                replayed_steps,
            );
        }

        // Step 2: replay the segment from the opened input. The replay
        // trainer borrows the verifier's scratch arena so consecutive
        // samples reuse the same weight-sized staging buffers.
        let mut trainer = LocalTrainer::with_arena(
            self.config,
            self.shard,
            self.noise.clone(),
            std::mem::take(&mut self.arena),
        );
        let mut replayed = trainer.replay_segment(model, &input, self.nonce, segment);
        self.arena = trainer.into_arena();
        replayed_steps += segment.steps as u64;
        // RPoLv3 workers snap to the lattice at every segment boundary;
        // the replay mirrors that so signatures and distances compare
        // lattice point against lattice point.
        if matches!(commitment, EpochCommitment::V3(_)) {
            rpol_tensor::quant::snap_to_bf16(&mut replayed);
        }

        // Step 3: compare with the committed output.
        let outcome = match (commitment, self.family) {
            (EpochCommitment::V1(list), _) => {
                // Raw scheme: fetch the output weights too.
                let output = match provider.open_checkpoint(j + 1) {
                    Ok(weights) => weights,
                    Err(_) => {
                        event!(rec, "rpol.verify.unavailable", sample = j);
                        return verdict(
                            VerificationOutcome::Unavailable,
                            proof_bytes,
                            replayed_steps,
                        );
                    }
                };
                proof_bytes += model_bytes;
                if !list.verify(j + 1, &sha256_f32(&output), &()) {
                    VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch)
                } else if !output.iter().all(|w| w.is_finite()) {
                    VerificationOutcome::Rejected(RejectReason::MalformedWeights)
                } else {
                    let distance = euclidean(&replayed, &output);
                    if distance < self.beta {
                        VerificationOutcome::Accepted {
                            double_checked: false,
                        }
                    } else {
                        VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
                            distance,
                            beta: self.beta,
                        })
                    }
                }
            }
            (EpochCommitment::V2(lsh_commit), Some(family)) => {
                let replayed_sig = family.hash(&replayed);
                if replayed_sig.matches_digests(lsh_commit.entry(j + 1)) {
                    VerificationOutcome::Accepted {
                        double_checked: false,
                    }
                } else {
                    // Double-check: fetch raw output, re-bind to the
                    // commitment, and fall back to a distance check so
                    // LSH false negatives never penalize honesty.
                    event!(rec, "rpol.verify.double_check", sample = j);
                    let output = match provider.open_checkpoint(j + 1) {
                        Ok(weights) => weights,
                        Err(_) => {
                            event!(rec, "rpol.verify.unavailable", sample = j);
                            return verdict(
                                VerificationOutcome::Unavailable,
                                proof_bytes,
                                replayed_steps,
                            );
                        }
                    };
                    proof_bytes += model_bytes;
                    let output_sig = family.hash(&output);
                    if !output.iter().all(|w| w.is_finite()) {
                        VerificationOutcome::Rejected(RejectReason::MalformedWeights)
                    } else if output_sig.group_digests() != lsh_commit.entry(j + 1) {
                        VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch)
                    } else {
                        let distance = euclidean(&replayed, &output);
                        if distance < self.beta {
                            VerificationOutcome::Accepted {
                                double_checked: true,
                            }
                        } else {
                            VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
                                distance,
                                beta: self.beta,
                            })
                        }
                    }
                }
            }
            (EpochCommitment::V3(qc), Some(family)) => {
                // Two-tier accept: count agreeing groups against the
                // committed entry instead of any-match. ≥ 2 groups is a
                // confident accept; 1 is a borderline match that must
                // survive the raw-weight escape hatch; 0 is the ordinary
                // double-check. Both sub-2 paths fetch the output, bind it
                // exactly via the packed-image digest, and distance-check —
                // a strictly tighter acceptance region than RPoLv2's.
                let sig = family.hash(&replayed);
                let agreeing = sig.matching_group_count(qc.entry(j + 1));
                if agreeing >= 2 {
                    VerificationOutcome::Accepted {
                        double_checked: false,
                    }
                } else {
                    if agreeing == 1 {
                        event!(rec, "rpol.verify.escape_hatch", sample = j);
                    }
                    event!(rec, "rpol.verify.double_check", sample = j);
                    let output = match provider.open_checkpoint(j + 1) {
                        Ok(weights) => weights,
                        Err(_) => {
                            event!(rec, "rpol.verify.unavailable", sample = j);
                            return verdict(
                                VerificationOutcome::Unavailable,
                                proof_bytes,
                                replayed_steps,
                            );
                        }
                    };
                    // V3 openings travel packed: 2 bytes per weight.
                    proof_bytes += model_bytes / 2;
                    if !output.iter().all(|w| w.is_finite())
                        || !rpol_tensor::quant::is_bf16_lattice(&output)
                    {
                        VerificationOutcome::Rejected(RejectReason::MalformedWeights)
                    } else if quant_digest_of(&output) != *qc.quant_digest(j + 1) {
                        VerificationOutcome::Rejected(RejectReason::OutputCommitmentMismatch)
                    } else {
                        let distance = euclidean(&replayed, &output);
                        if distance < self.beta {
                            VerificationOutcome::Accepted {
                                double_checked: true,
                            }
                        } else {
                            VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
                                distance,
                                beta: self.beta,
                            })
                        }
                    }
                }
            }
            (EpochCommitment::V2(_), None) => {
                panic!("RPoLv2 commitment but no LSH family configured")
            }
            (EpochCommitment::V3(_), None) => {
                panic!("RPoLv3 commitment but no LSH family configured")
            }
        };
        verdict(outcome, proof_bytes, replayed_steps)
    }

    /// Checks an opened checkpoint against the commitment at `index`.
    fn check_commitment(
        &self,
        commitment: &EpochCommitment,
        index: usize,
        weights: &[f32],
    ) -> bool {
        match (commitment, self.family) {
            (EpochCommitment::V1(list), _) => list.verify(index, &sha256_f32(weights), &()),
            (EpochCommitment::V2(lsh_commit), Some(family)) => {
                // Exact binding: the worker computed these digests from
                // exactly these weights, so all groups must agree.
                family.hash(weights).group_digests() == lsh_commit.entry(index)
            }
            (EpochCommitment::V3(qc), _) => {
                // Exact binding at half the bytes: the opened checkpoint is
                // lattice-enforced upstream, so its packed 2-byte image
                // determines the f32 weights uniquely and the image digest
                // binds as strongly as V1's raw digest.
                quant_digest_of(weights) == *qc.quant_digest(index)
            }
            (EpochCommitment::V2(_), None) => {
                panic!("RPoLv2 commitment but no LSH family configured")
            }
        }
    }
}

/// SHA-256 of the packed bf16 image — the RPoLv3 checkpoint digest.
fn quant_digest_of(weights: &[f32]) -> rpol_crypto::Digest {
    rpol_crypto::sha256(&rpol_crypto::bytes::bf16_as_le_bytes(weights))
}

/// Euclidean distance between two weight vectors, accumulated in f64.
///
/// Runs four independent f64 accumulator lanes over 4-wide chunks so the
/// sum has no loop-carried dependency on a single register — the hot
/// distance check of every replay comparison. The lane split changes the
/// floating-point summation *order* versus a sequential fold, so results
/// may differ from the scalar oracle in the last few ulps; the distance
/// thresholds in force (`β`, calibration `α`) are orders of magnitude
/// wider. Training-side checkpoint numerics (`trainer::distance`) are
/// pinned elsewhere and do not route through this function.
pub(crate) fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "weight vector length mismatch");
    let mut acc = [0.0f64; 4];
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let tail_a = chunks_a.remainder();
    let tail_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for lane in 0..4 {
            let d = (ca[lane] - cb[lane]) as f64;
            acc[lane] += d * d;
        }
    }
    let mut tail = 0.0f64;
    for (&x, &y) in tail_a.iter().zip(tail_b) {
        let d = (x - y) as f64;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail).sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::LocalTrainer;
    use rpol_lsh::LshParams;
    use rpol_sim::gpu::GpuModel;
    use rpol_tensor::rng::Pcg32;

    struct VecProvider(Vec<Vec<f32>>);

    impl ProofProvider for VecProvider {
        fn open_checkpoint(&self, index: usize) -> Result<Cow<'_, [f32]>, ProofUnavailable> {
            Ok(Cow::Borrowed(&self.0[index]))
        }
    }

    /// A provider whose link dies after serving `alive` openings.
    struct FlakyProvider {
        checkpoints: Vec<Vec<f32>>,
        alive: std::cell::Cell<usize>,
    }

    impl ProofProvider for FlakyProvider {
        fn open_checkpoint(&self, index: usize) -> Result<Cow<'_, [f32]>, ProofUnavailable> {
            let left = self.alive.get();
            if left == 0 {
                return Err(ProofUnavailable { index });
            }
            self.alive.set(left - 1);
            Ok(Cow::Borrowed(&self.checkpoints[index]))
        }
    }

    fn honest_trace(
        cfg: &TaskConfig,
        data: &SyntheticImages,
        nonce: u64,
    ) -> crate::trainer::EpochTrace {
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(cfg, data, NoiseInjector::new(GpuModel::GA10, 11));
        trainer.run_epoch(&mut model, nonce, 6)
    }

    fn setup() -> (TaskConfig, SyntheticImages) {
        let cfg = TaskConfig::tiny();
        let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
        (cfg, data)
    }

    #[test]
    fn v1_accepts_honest_worker() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 3);
        let commitment = EpochCommitment::commit_v1(&trace.checkpoints);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            3,
            0.5, // generous beta for the tiny task
            None,
            NoiseInjector::new(GpuModel::G3090, 99),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1, 2],
            &VecProvider(trace.checkpoints.clone()),
        );
        assert!(verdict.all_accepted(), "{:?}", verdict.outcomes);
        assert_eq!(verdict.replayed_steps, 6);
        assert!(verdict.proof_bytes > 0);
    }

    #[test]
    fn v1_rejects_fabricated_output() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 3);
        // The worker commits to a fabricated checkpoint 2 (random garbage
        // far from the training trajectory).
        let mut forged = trace.checkpoints.clone();
        for w in forged[2].iter_mut() {
            *w += 0.5;
        }
        let commitment = EpochCommitment::commit_v1(&forged);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            3,
            0.5,
            None,
            NoiseInjector::new(GpuModel::G3090, 99),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[1],
            &VecProvider(forged),
        );
        assert!(!verdict.all_accepted());
        assert!(matches!(
            verdict.outcomes[0].1,
            VerificationOutcome::Rejected(RejectReason::DistanceExceeded { .. })
        ));
    }

    #[test]
    fn v1_rejects_commitment_mismatch() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 3);
        let commitment = EpochCommitment::commit_v1(&trace.checkpoints);
        // The worker later tries to open different weights than committed.
        let mut swapped = trace.checkpoints.clone();
        swapped[0][0] += 1.0;
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            3,
            0.5,
            None,
            NoiseInjector::new(GpuModel::G3090, 99),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(swapped),
        );
        assert_eq!(
            verdict.outcomes[0].1,
            VerificationOutcome::Rejected(RejectReason::InputCommitmentMismatch)
        );
    }

    #[test]
    fn v2_accepts_honest_worker_and_saves_bytes() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        // Wide bucket: honest reproduction errors land in the same bucket.
        let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 4), 7);
        let commitment = EpochCommitment::commit_v2(&trace.checkpoints, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.5,
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1, 2],
            &VecProvider(trace.checkpoints.clone()),
        );
        assert!(verdict.all_accepted(), "{:?}", verdict.outcomes);
        // Without double-checks, v2 ships only the input per sample:
        // 3 inputs = 3 model payloads (v1 would ship 6).
        let model_bytes = (dim * 4) as u64;
        assert!(
            verdict.proof_bytes <= 3 * model_bytes + verdict.double_checks() as u64 * model_bytes,
            "proof bytes {}",
            verdict.proof_bytes
        );
    }

    #[test]
    fn v2_rejects_spoofed_output() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(0.05, 4, 4), 7);
        let mut forged = trace.checkpoints.clone();
        for w in forged[1].iter_mut() {
            *w += 0.3;
        }
        let commitment = EpochCommitment::commit_v2(&forged, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.05, // tight beta: the forgery is far outside
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(forged),
        );
        assert!(!verdict.all_accepted());
    }

    #[test]
    fn v2_rejects_nan_input_before_replay() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 4), 7);
        // The worker commits to NaN-poisoned checkpoints and opens them.
        let mut forged = trace.checkpoints.clone();
        forged[0][0] = f32::NAN;
        forged[1][3] = f32::NAN;
        let commitment = EpochCommitment::commit_v2(&forged, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.5,
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(forged),
        );
        assert_eq!(
            verdict.outcomes[0].1,
            VerificationOutcome::Rejected(RejectReason::MalformedWeights)
        );
        // And crucially: no replay was spent on the hostile sample.
        assert_eq!(verdict.replayed_steps, 0);
    }

    #[test]
    fn dead_link_yields_unavailable_not_rejection() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 3);
        let commitment = EpochCommitment::commit_v1(&trace.checkpoints);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            3,
            0.5,
            None,
            NoiseInjector::new(GpuModel::G3090, 99),
        );
        // The link serves one opening (sample 0's input) then dies mid-way
        // through the V1 output fetch.
        let provider = FlakyProvider {
            checkpoints: trace.checkpoints.clone(),
            alive: std::cell::Cell::new(1),
        };
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1, 2],
            &provider,
        );
        assert!(verdict.transport_failed());
        assert!(!verdict.all_accepted());
        // One Unavailable outcome, then the loop stopped: no later samples
        // were attempted against the dead link.
        assert_eq!(verdict.outcomes.len(), 1);
        assert_eq!(verdict.outcomes[0], (0, VerificationOutcome::Unavailable));
        // No rejection reason anywhere — this worker is not a cheater.
        assert!(!verdict
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, VerificationOutcome::Rejected(_))));
    }

    /// The sequential-fold oracle the 4-lane `euclidean` must agree with
    /// (up to summation-order rounding).
    fn euclidean_scalar(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt() as f32
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn euclidean_matches_scalar_oracle(seed in 0u64..1_000, len in 0usize..67) {
            let mut rng = Pcg32::seed_from(seed ^ 0xD15_7A4C);
            let a: Vec<f32> = (0..len).map(|_| rng.next_normal()).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.next_normal()).collect();
            let lanes = euclidean(&a, &b);
            let oracle = euclidean_scalar(&a, &b);
            let tol = 1e-5_f32 * oracle.max(1.0);
            proptest::prop_assert!(
                (lanes - oracle).abs() <= tol,
                "lanes {lanes} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn euclidean_handles_tail_and_empty() {
        assert_eq!(euclidean(&[], &[]), 0.0);
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0f32, 2.0, 3.0, 4.0, 7.0];
        assert_eq!(euclidean(&a, &b), 2.0);
    }

    #[test]
    fn verify_sample_agrees_with_verify_samples() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 3);
        let commitment = EpochCommitment::commit_v1(&trace.checkpoints);
        let provider = VecProvider(trace.checkpoints.clone());
        let mk = || {
            Verifier::new(
                &cfg,
                &data,
                3,
                0.5,
                None,
                NoiseInjector::new(GpuModel::G3090, 99),
            )
        };
        let mut model = cfg.build_model();
        let batch = mk().verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1, 2],
            &provider,
        );
        // Each sample through its own verifier (as the executor schedules
        // them) merges into a bitwise-identical worker verdict.
        let singles: Vec<SampleVerdict> = [0usize, 1, 2]
            .iter()
            .map(|&j| {
                let mut model = cfg.build_model();
                mk().verify_sample(&mut model, &commitment, &trace.segments, j, &provider)
            })
            .collect();
        let merged = WorkerVerdict::from_samples(singles);
        assert_eq!(merged.outcomes, batch.outcomes);
        assert_eq!(merged.proof_bytes, batch.proof_bytes);
        assert_eq!(merged.replayed_steps, batch.replayed_steps);
    }

    #[test]
    fn from_samples_truncates_at_first_unavailable() {
        let mk = |sample, outcome| SampleVerdict {
            sample,
            outcome,
            proof_bytes: 10,
            replayed_steps: 2,
        };
        let merged = WorkerVerdict::from_samples(vec![
            mk(
                0,
                VerificationOutcome::Accepted {
                    double_checked: false,
                },
            ),
            mk(1, VerificationOutcome::Unavailable),
            mk(
                2,
                VerificationOutcome::Accepted {
                    double_checked: false,
                },
            ),
        ]);
        assert_eq!(merged.outcomes.len(), 2);
        assert!(merged.transport_failed());
        // Speculative work after the dead link is not billed.
        assert_eq!(merged.proof_bytes, 20);
        assert_eq!(merged.replayed_steps, 4);
    }

    fn quantized_trace(
        cfg: &TaskConfig,
        data: &SyntheticImages,
        nonce: u64,
    ) -> crate::trainer::EpochTrace {
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(cfg, data, NoiseInjector::new(GpuModel::GA10, 11));
        trainer.run_epoch_quantized(&mut model, nonce, 6)
    }

    #[test]
    fn v3_accepts_honest_quantized_worker() {
        let (cfg, data) = setup();
        let trace = quantized_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 4), 7);
        let commitment = EpochCommitment::commit_v3(&trace.checkpoints, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.5,
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1, 2],
            &VecProvider(trace.checkpoints.clone()),
        );
        assert!(verdict.all_accepted(), "{:?}", verdict.outcomes);
        // V3 proofs travel packed: at most 2 bytes per weight per opening.
        let packed = (dim * 2) as u64;
        assert!(
            verdict.proof_bytes <= (3 + verdict.double_checks() as u64) * packed,
            "proof bytes {}",
            verdict.proof_bytes
        );
    }

    #[test]
    fn v3_rejects_off_lattice_opening_as_malformed() {
        let (cfg, data) = setup();
        let trace = quantized_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 4), 7);
        let commitment = EpochCommitment::commit_v3(&trace.checkpoints, &family);
        // The worker opens weights a sub-lattice nudge away from what it
        // committed — same packed image, different f32s. Lattice
        // enforcement must refuse before any digest comparison.
        let mut opened = trace.checkpoints.clone();
        opened[0][0] = f32::from_bits(opened[0][0].to_bits() | 1);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.5,
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(opened),
        );
        assert_eq!(
            verdict.outcomes[0].1,
            VerificationOutcome::Rejected(RejectReason::MalformedWeights)
        );
        assert_eq!(verdict.replayed_steps, 0);
    }

    #[test]
    fn v3_rejects_spoofed_output() {
        let (cfg, data) = setup();
        let trace = quantized_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(0.05, 4, 4), 7);
        let mut forged = trace.checkpoints.clone();
        for w in forged[1].iter_mut() {
            *w += 0.25;
        }
        rpol_tensor::quant::snap_to_bf16(&mut forged[1]);
        let commitment = EpochCommitment::commit_v3(&forged, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.05,
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(forged),
        );
        assert!(!verdict.all_accepted());
    }

    #[test]
    fn v3_escape_hatch_catches_single_group_collision() {
        // A single agreeing LSH group is NOT enough to accept under V3.
        // Construct a commitment whose entry for the sampled segment's
        // output agrees with the honest replay in exactly one group but
        // whose actual committed output is far away: RPoLv2's any-match
        // rule would accept on the colliding group alone; RPoLv3 routes
        // the borderline match through the raw-weight escape hatch, where
        // the exact packed-image binding + distance check expose it.
        let (cfg, data) = setup();
        let trace = quantized_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 4), 7);

        // The far-away "output" the cheater actually serves.
        let mut far = trace.checkpoints[1].clone();
        for w in far.iter_mut() {
            *w += 0.4;
        }
        rpol_tensor::quant::snap_to_bf16(&mut far);
        let honest_entry = family.hash(&trace.checkpoints[1]).group_digests();
        let far_entry = family.hash(&far).group_digests();
        // Entry j+1: one group copied from the honest signature (the
        // collision), the rest from the far output.
        let mut collided = far_entry.clone();
        collided[2] = honest_entry[2];
        assert_eq!(
            family
                .hash(&trace.checkpoints[1])
                .matching_group_count(&collided),
            1,
            "construction must collide in exactly one group"
        );
        // The colliding entry would satisfy RPoLv2's any-match rule.
        assert!(family
            .hash(&trace.checkpoints[1])
            .matches_digests(&collided));

        let honest = EpochCommitment::commit_v3(&trace.checkpoints, &family);
        let (entries, digests) = match &honest {
            EpochCommitment::V3(qc) => {
                let mut entries: Vec<Vec<rpol_crypto::Digest>> =
                    (0..qc.len()).map(|i| qc.entry(i).to_vec()).collect();
                let mut digests = qc.quant_digests().to_vec();
                entries[1] = collided;
                digests[1] = rpol_crypto::sha256(&rpol_crypto::bytes::bf16_as_le_bytes(&far));
                (entries, digests)
            }
            _ => unreachable!(),
        };
        let commitment = EpochCommitment::V3(crate::commitment::QuantCommitment::from_parts(
            entries, digests,
        ));
        let mut opened = trace.checkpoints.clone();
        opened[1] = far;

        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.05, // the far output is 0.4·√dim away — well past beta
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 42),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0],
            &VecProvider(opened),
        );
        assert!(
            matches!(
                verdict.outcomes[0].1,
                VerificationOutcome::Rejected(RejectReason::DistanceExceeded { .. })
            ),
            "escape hatch must reject the single-group collision: {:?}",
            verdict.outcomes
        );
    }

    #[test]
    fn v2_double_check_rescues_lsh_false_negative() {
        let (cfg, data) = setup();
        let trace = honest_trace(&cfg, &data, 5);
        let dim = trace.checkpoints[0].len();
        // Absurdly narrow buckets: even tiny reproduction errors miss,
        // forcing the double-check path for an honest worker.
        let family = LshFamily::generate(dim, LshParams::new(1e-6, 8, 2), 7);
        let commitment = EpochCommitment::commit_v2(&trace.checkpoints, &family);
        let mut model = cfg.build_model();
        let mut verifier = Verifier::new(
            &cfg,
            &data,
            5,
            0.5, // generous beta: the distance check passes
            Some(&family),
            NoiseInjector::new(GpuModel::G3090, 43),
        );
        let verdict = verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            &[0, 1],
            &VecProvider(trace.checkpoints.clone()),
        );
        assert!(verdict.all_accepted(), "{:?}", verdict.outcomes);
        assert!(
            verdict.double_checks() > 0,
            "expected double-checks with degenerate LSH"
        );
    }
}
