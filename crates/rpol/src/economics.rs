//! Economic soundness: Theorem 3 of §VI.
//!
//! Workers join the pool for profit, so the decisive question is not
//! "can a cheater ever pass" but "can cheating be profitable". Theorem 3
//! bounds the adversary's expected net gain per submission (Eq. 9) and
//! derives the minimum sample count that makes `G_A ≤ 0` (Eq. 11) — far
//! smaller than the information-theoretic count of Theorem 2 (the paper's
//! example: 2–3 samples instead of 47).

use crate::sampling::{evasion_probability, per_sample_pass_probability};
use serde::{Deserialize, Serialize};

/// Cost/benefit parameters of Eq. 9, normalized so one successfully
/// verified epoch submission earns reward 1.
///
/// # Examples
///
/// ```
/// use rpol::economics::EconomicModel;
///
/// let m = EconomicModel::paper_example();
/// // Three samples deter every adversary the paper considers.
/// assert_eq!(m.samples_to_deter(0.90), 3);
/// assert!(m.adversary_gain(0.90, 3) < 0.0);
/// assert!(m.honest_gain(3) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EconomicModel {
    /// Computation cost of one fully honest epoch (paper: 0.88, the 2022
    /// electricity-to-income ratio of Bitcoin mining).
    pub c_train: f64,
    /// Computation cost of mounting the spoofing attack for an epoch
    /// (paper sets 0 as the adversary-optimal case).
    pub c_spoof: f64,
    /// Communication cost of shipping one set of model weights.
    pub c_transfer: f64,
    /// LSH matching probability at `α` (honest results match).
    pub pr_lsh_alpha: f64,
    /// LSH matching probability at `β` (spoofed results match).
    pub pr_lsh_beta: f64,
}

impl EconomicModel {
    /// The paper's worked example: `C_train = 0.88`, `C_spoof = 0`,
    /// `Pr_lsh(α) = 95%`, `Pr_lsh(β) = 5%`, transfer cost maximizing the
    /// attacker's gain (`C_t = 0`).
    pub fn paper_example() -> Self {
        Self {
            c_train: 0.88,
            c_spoof: 0.0,
            c_transfer: 0.0,
            pr_lsh_alpha: 0.95,
            pr_lsh_beta: 0.05,
        }
    }

    /// Expected net gain `G_A` of an adversary with honesty ratio `h_A`
    /// under `q` sampled checkpoints (Eq. 9, upper bound).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `honesty_ratio` is not a probability.
    pub fn adversary_gain(&self, honesty_ratio: f64, q: u32) -> f64 {
        assert!(q > 0, "need at least one sample");
        let h = honesty_ratio;
        let reward = evasion_probability(q, h, self.pr_lsh_beta);
        let double_check_rate =
            h * (1.0 - self.pr_lsh_alpha) + (1.0 - h) * (1.0 - self.pr_lsh_beta);
        reward
            - (h * self.c_train
                + self.c_spoof
                + q as f64 * self.c_transfer
                + q as f64 * self.c_transfer * double_check_rate)
    }

    /// Expected net gain of an honest worker under the same accounting:
    /// reward 1 (always verified, by the double-check guarantee) minus
    /// training and transfer costs.
    pub fn honest_gain(&self, q: u32) -> f64 {
        1.0 - (self.c_train
            + q as f64 * self.c_transfer
            + q as f64 * self.c_transfer * (1.0 - self.pr_lsh_alpha))
    }

    /// Minimum `q` such that `max(G_A) ≤ 0` (Eq. 11):
    /// `q ≥ log(h·C_train + C_spoof) / log(h + (1 − h)·Pr_lsh(β))`.
    ///
    /// Returns `None` when cheating is *never* profitable at any `q ≥ 1`
    /// is impossible to determine because the bound degenerates —
    /// specifically when `h·C_train + C_spoof ≥ 1` (cheating already costs
    /// more than the maximal reward; `q = 1` suffices).
    ///
    /// # Panics
    ///
    /// Panics if `honesty_ratio` is not in `[0, 1)` — a fully honest
    /// worker is not an adversary.
    pub fn samples_to_deter(&self, honesty_ratio: f64) -> u32 {
        assert!(
            (0.0..1.0).contains(&honesty_ratio),
            "adversary honesty ratio must be in [0, 1)"
        );
        let cost = honesty_ratio * self.c_train + self.c_spoof;
        if cost >= 1.0 {
            // The attack is unprofitable even when it always succeeds.
            return 1;
        }
        if cost <= 0.0 {
            // Free attacks can't be priced out; fall back to driving the
            // reward below any fixed epsilon — callers wanting an
            // information-theoretic bound should use Theorem 2 instead.
            return u32::MAX;
        }
        let p1 = per_sample_pass_probability(honesty_ratio, self.pr_lsh_beta);
        let q = (cost.ln() / p1.ln()).ceil().max(1.0);
        q as u32
    }

    /// The smallest `q` deterring *every* honesty ratio on a grid — what a
    /// pool manager actually configures (the paper settles on 3).
    pub fn samples_to_deter_all(&self, ratios: &[f64]) -> u32 {
        ratios
            .iter()
            .map(|&h| self.samples_to_deter(h))
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_q2_and_q3() {
        // §VI: h = 10% → 2 samples; h = 90% → 3 samples.
        let m = EconomicModel::paper_example();
        assert_eq!(m.samples_to_deter(0.10), 2);
        assert_eq!(m.samples_to_deter(0.90), 3);
    }

    #[test]
    fn q3_deters_the_paper_grid() {
        let m = EconomicModel::paper_example();
        let grid: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
        let q = m.samples_to_deter_all(&grid);
        assert_eq!(q, 3);
        for &h in &grid {
            assert!(
                m.adversary_gain(h, q) <= 1e-9,
                "h = {h}: gain {}",
                m.adversary_gain(h, q)
            );
        }
    }

    #[test]
    fn paper_narrative_at_q3_h90() {
        // "the probability of winning the mining rewards is only 0.74,
        // while the computation costs are larger than 0.9 times those of
        // one honest worker" — so the net gain is negative.
        let m = EconomicModel::paper_example();
        let gain = m.adversary_gain(0.90, 3);
        assert!(gain < 0.0, "gain = {gain}");
        // And the honest worker still profits.
        assert!(m.honest_gain(3) > 0.0);
    }

    #[test]
    fn honest_beats_adversary_under_deterrence() {
        let m = EconomicModel::paper_example();
        for h in [0.0, 0.25, 0.5, 0.75, 0.99] {
            let q = 3;
            assert!(
                m.honest_gain(q) > m.adversary_gain(h, q),
                "h = {h}: honesty must dominate"
            );
        }
    }

    #[test]
    fn transfer_costs_only_hurt_the_adversary_more() {
        // ∂G_A/∂C_t < 0 (the observation the proof uses to set C_t = 0 as
        // the adversary's best case).
        let mut m = EconomicModel::paper_example();
        let g0 = m.adversary_gain(0.5, 3);
        m.c_transfer = 0.01;
        let g1 = m.adversary_gain(0.5, 3);
        assert!(g1 < g0);
    }

    #[test]
    fn expensive_attacks_need_one_sample() {
        let m = EconomicModel {
            c_spoof: 1.2,
            ..EconomicModel::paper_example()
        };
        assert_eq!(m.samples_to_deter(0.5), 1);
    }

    #[test]
    fn free_attacks_cannot_be_priced_out() {
        let m = EconomicModel {
            c_train: 0.0,
            ..EconomicModel::paper_example()
        };
        assert_eq!(m.samples_to_deter(0.0), u32::MAX);
    }
}
