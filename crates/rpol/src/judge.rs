//! Consensus-side model judging: connects the PoUW chain substrate to the
//! task architectures and AMLayer verification of this crate.
//!
//! Consensus nodes must (a) score a submitted model's generalization on
//! the released test set and (b) check that the model's AMLayer encodes
//! the proposer's address (§V-A). [`TaskJudge`] implements
//! [`rpol_chain::consensus::ModelJudge`] for any [`TaskConfig`].

use crate::tasks::TaskConfig;
use rpol_chain::consensus::ModelJudge;
use rpol_crypto::Address;
use rpol_nn::data::SyntheticImages;
use rpol_nn::metrics::accuracy;

/// Judges proposals for one training task.
///
/// # Examples
///
/// ```
/// use rpol::judge::TaskJudge;
/// use rpol::tasks::TaskConfig;
/// use rpol_chain::consensus::ModelJudge;
/// use rpol_crypto::Address;
///
/// let cfg = TaskConfig::tiny();
/// let judge = TaskJudge::new(cfg);
/// let addr = Address::from_seed(3);
/// let weights = cfg.build_encoded_model(&addr).flatten_params();
/// assert!(judge.verify_owner(&weights, &addr, cfg.lipschitz_c));
/// assert!(!judge.verify_owner(&weights, &Address::from_seed(4), cfg.lipschitz_c));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TaskJudge {
    config: TaskConfig,
}

impl TaskJudge {
    /// Creates a judge for a task.
    pub fn new(config: TaskConfig) -> Self {
        Self { config }
    }

    /// The judged task's configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.config
    }
}

impl ModelJudge for TaskJudge {
    fn score(&self, weights: &[f32], test: &SyntheticImages) -> f32 {
        // Rebuild the encoded geometry with a placeholder address; the
        // submitted weights (including the real AMLayer) overwrite it.
        let mut model = self.config.build_encoded_model(&Address::from_seed(0));
        if weights.len() != model.param_count() {
            // Malformed submission: zero generalization.
            return 0.0;
        }
        model.load_params(weights);
        let (inputs, labels) = test.full_batch();
        let logits = model.forward(&inputs, false);
        accuracy(&logits, &labels)
    }

    fn verify_owner(&self, weights: &[f32], claimed: &Address, lipschitz_c: f32) -> bool {
        if !(0.0..1.0).contains(&lipschitz_c) || lipschitz_c <= 0.0 {
            return false;
        }
        self.config
            .verify_model_owner(weights, claimed, lipschitz_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::replace_amlayer;
    use rpol_tensor::rng::Pcg32;

    #[test]
    fn score_rejects_malformed_weights() {
        let judge = TaskJudge::new(TaskConfig::tiny());
        let test =
            SyntheticImages::generate(&TaskConfig::tiny().spec, 16, &mut Pcg32::seed_from(1));
        assert_eq!(judge.score(&[0.0; 3], &test), 0.0);
    }

    #[test]
    fn score_runs_on_wellformed_weights() {
        let cfg = TaskConfig::tiny();
        let judge = TaskJudge::new(cfg);
        let test = SyntheticImages::generate(&cfg.spec, 16, &mut Pcg32::seed_from(1));
        let weights = cfg
            .build_encoded_model(&Address::from_seed(1))
            .flatten_params();
        let acc = judge.score(&weights, &test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn stolen_model_flagged_by_owner_check() {
        let cfg = TaskConfig::tiny();
        let judge = TaskJudge::new(cfg);
        let owner = Address::from_seed(1);
        let thief = Address::from_seed(2);
        let weights = cfg.build_encoded_model(&owner).flatten_params();
        // Thief submits the stolen weights under their own address: fails.
        assert!(!judge.verify_owner(&weights, &thief, cfg.lipschitz_c));
        // Thief re-encodes the AMLayer: ownership flips, but accuracy pays
        // the price (exercised in the Table I harness).
        let forged = replace_amlayer(&cfg, &weights, &thief);
        assert!(judge.verify_owner(&forged, &thief, cfg.lipschitz_c));
    }

    #[test]
    fn bad_lipschitz_rejected() {
        let cfg = TaskConfig::tiny();
        let judge = TaskJudge::new(cfg);
        let weights = cfg
            .build_encoded_model(&Address::from_seed(1))
            .flatten_params();
        assert!(!judge.verify_owner(&weights, &Address::from_seed(1), 1.5));
        assert!(!judge.verify_owner(&weights, &Address::from_seed(1), 0.0));
    }
}
