//! The manager as a real socket service (DESIGN.md §14).
//!
//! [`PoolServer`] binds a TCP (or Unix) listener, speaks the checksummed
//! frame protocol from [`wire`], and drives the same epoch pipeline as
//! the simulated transport path — task broadcast, submission collection,
//! sampled-proof verification — against workers connected over real
//! sockets ([`crate::client::WorkerClient`]).
//!
//! # Robustness
//!
//! * **Backpressure** — every connection owns a bounded outbox; a peer
//!   that stops draining is disconnected rather than buffered without
//!   limit, and reads are budgeted per sweep so one firehose connection
//!   cannot starve the rest.
//! * **Load shedding** — submissions past the in-flight budget are
//!   refused with [`NetControl::Busy`] and the worker is quarantined for
//!   the epoch (uncredited, never convicted).
//! * **Slowloris defence** — connections that dawdle through the
//!   handshake or go idle past the deadline are swept.
//! * **Eviction** — at the connection cap, the oldest-idle established
//!   connection is evicted in favour of the newcomer; if nothing is idle
//!   enough, the newcomer gets a `Busy { PoolFull }`.
//!
//! # Chaos proxy
//!
//! The seeded fault-injecting [`Transport`] sits *in front of* the real
//! socket: the sender runs [`Transport::chaos_frames`] to obtain the
//! ghost frames (corrupted / truncated duplicates the lossy link would
//! have produced) plus the delivered-or-exhausted outcome, writes the
//! ghosts and (on success) the pristine frame, and the receiver
//! re-derives the identical stats and clock charges from the exchange
//! coordinates and payload length alone via [`Transport::chaos_outcome`].
//! Control frames (`0x30` block) never ride the chaos link — they model
//! the service, not the network — which is what lets the socket path
//! reproduce the simulated path's quarantine decisions bit for bit under
//! the same fault seed (`tests/net_parity.rs`).
//!
//! # Scheduling
//!
//! The reactor is a nonblocking sweep ([`NetCore::pump`]) behind a mutex:
//! any thread that is waiting on the network — the epoch driver or a
//! verification task parked in [`ProofProvider::open_checkpoint`] —
//! drives the sweep itself (cooperative pumping, deadlock-free at any
//! executor width). During the training window, when the driver has
//! nothing else to do, a flag-bounded pump job is detached onto the
//! pool's persistent executor ([`Executor::spawn`]) so the socket stays
//! responsive without a dedicated OS thread.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::adversary::WorkerBehavior;
use crate::manager::{CommStats, Participant};
use crate::poll;
use crate::pool::{EpochRecord, MiningPool, PoolConfig, PoolReport, Scheme};
use crate::transport::{FaultConfig, LinkState, MsgKind, Transport, TransportStats};
use crate::verify::{ProofProvider, ProofUnavailable};
use crate::wire::{
    self, BufPool, BusyReason, FamilySpec, FrameAssembler, NetControl, PayloadClass,
};
use crate::worker::{CommitMode, EpochSubmission};
use rpol_exec::Executor;
use rpol_obs::{event, Recorder, TraceContext, Value};
use rpol_sim::SimClock;
use serde::Serialize;

/// Wire discriminant for a [`Scheme`] in [`NetControl::CommitSpec`].
pub(crate) fn scheme_code(scheme: Scheme) -> u8 {
    match scheme {
        Scheme::Baseline => 0,
        Scheme::RPoLv1 => 1,
        Scheme::RPoLv2 => 2,
        Scheme::RPoLv3 => 3,
    }
}

/// Inverse of [`scheme_code`].
pub(crate) fn scheme_from_code(code: u8) -> Option<Scheme> {
    match code {
        0 => Some(Scheme::Baseline),
        1 => Some(Scheme::RPoLv1),
        2 => Some(Scheme::RPoLv2),
        3 => Some(Scheme::RPoLv3),
        _ => None,
    }
}

/// Where the manager listens (or a worker connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A TCP `host:port` address. Port `0` asks the OS for a free port.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl BindAddr {
    /// Parses an address string: a `unix:` prefix selects a Unix socket,
    /// anything else is a TCP `host:port`.
    pub fn parse(s: &str) -> Self {
        match s.strip_prefix("unix:") {
            Some(path) => BindAddr::Unix(PathBuf::from(path)),
            None => BindAddr::Tcp(s.to_string()),
        }
    }

    /// An OS-assigned loopback TCP address.
    pub fn loopback() -> Self {
        BindAddr::Tcp("127.0.0.1:0".to_string())
    }
}

/// A nonblocking listener over either address family.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &BindAddr) -> io::Result<Self> {
        match addr {
            BindAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            BindAddr::Unix(path) => {
                // A stale socket file from a previous run would fail the
                // bind; this service owns the path.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// The bound address in the same syntax [`BindAddr::parse`] accepts.
    fn local_display(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string()),
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }

    fn accept(&self) -> io::Result<NetStream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                s.set_nodelay(true)?;
                Ok(NetStream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                Ok(NetStream::Unix(s))
            }
        }
    }

    fn raw_fd(&self) -> i32 {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream over either address family.
pub(crate) enum NetStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl NetStream {
    fn raw_fd(&self) -> i32 {
        match self {
            NetStream::Tcp(s) => s.as_raw_fd(),
            NetStream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write_vectored(bufs),
            NetStream::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// Which reactor drives [`NetCore::pump`]'s connection sweep.
///
/// Both backends are wire-identical: accept/reject/quarantine decisions,
/// [`NetStats`] (minus the backend-dependent buffer-pool counters), and
/// stitched traces match bit for bit under the same seed and faults
/// (`tests/net_parity.rs`). They differ only in per-pump cost: `Scan`
/// touches every connection (O(all)), `Readiness` touches only
/// connections with kernel readiness, buffered frames, pending outboxes,
/// or due timers (O(active)).
/// Idle parking quantum for `NetCore::pump_or_wait`: `epoll_wait`
/// timeouts have millisecond resolution, so one millisecond is the
/// shortest real kernel wait. Parked waiters wake early the instant the
/// kernel has an event for them — the quantum only bounds how long an
/// *idle* reactor sleeps between timer checks.
const PUMP_PARK: Duration = Duration::from_millis(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorBackend {
    /// Portable scan loop: every pump reads every connection.
    Scan,
    /// Readiness-driven pump fed by the epoll shim ([`crate::poll`]),
    /// falling back to `Scan` where the shim is unavailable.
    Readiness,
}

impl ReactorBackend {
    /// The preferred backend for this build: `Readiness` when the epoll
    /// shim exists (x86_64 Linux with the `epoll` feature), else `Scan`.
    pub fn preferred() -> Self {
        if poll::READINESS_AVAILABLE {
            ReactorBackend::Readiness
        } else {
            ReactorBackend::Scan
        }
    }

    /// Parses `"scan"` / `"readiness"` (as the CLI `--backend` flag and
    /// the `RPOL_NET_BACKEND` environment variable spell them).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scan" => Some(ReactorBackend::Scan),
            "readiness" => Some(ReactorBackend::Readiness),
            _ => None,
        }
    }

    /// The canonical lowercase name (inverse of [`parse`](Self::parse)).
    pub fn name(self) -> &'static str {
        match self {
            ReactorBackend::Scan => "scan",
            ReactorBackend::Readiness => "readiness",
        }
    }
}

/// Service limits and deadlines for [`PoolServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connection-table cap; past it the oldest-idle connection is
    /// evicted, or the newcomer refused with `Busy { PoolFull }`.
    pub max_connections: usize,
    /// Submissions buffered at once before further ones are shed with
    /// `Busy { Shedding }`.
    pub max_inflight: usize,
    /// Frames a connection's outbox may hold before the peer is declared
    /// too slow and disconnected (backpressure bound).
    pub outbox_frames: usize,
    /// Bytes one connection may read per sweep (fairness budget).
    pub read_budget_bytes: usize,
    /// Complete frames one connection may parse and route per sweep (the
    /// companion fairness bound): a peer that pre-buffered thousands of
    /// tiny frames yields the reactor after this many, and frames left in
    /// its assembler parse on the next sweep **without waiting for more
    /// bytes from the peer**.
    pub max_frames_per_conn_per_pump: usize,
    /// Largest accepted frame (payload + header).
    pub max_frame_bytes: usize,
    /// A connection must complete the handshake within this deadline.
    pub handshake_timeout: Duration,
    /// Established connections silent past this deadline are swept
    /// (heartbeats reset the clock).
    pub idle_timeout: Duration,
    /// Minimum idleness before an established connection may be evicted
    /// to admit a newcomer at the connection cap.
    pub evict_min_idle: Duration,
    /// Wall-clock deadline on each epoch phase's network wait.
    pub phase_timeout: Duration,
    /// How long [`PoolServer::run`] waits for the full roster to connect.
    pub connect_deadline: Duration,
    /// Verify participants on the persistent executor.
    pub parallel_verify: bool,
    /// Reactor backend driving the pump (requested; the server falls back
    /// to [`ReactorBackend::Scan`] when the readiness shim is unavailable
    /// or its syscalls fail).
    pub backend: ReactorBackend,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // The environment override exists so harnesses (ci.sh, benches)
        // can pin a backend without plumbing a flag through every entry
        // point; unknown values fall through to the build's preference.
        let backend = std::env::var("RPOL_NET_BACKEND")
            .ok()
            .and_then(|s| ReactorBackend::parse(&s))
            .unwrap_or_else(ReactorBackend::preferred);
        Self {
            max_connections: 1024,
            max_inflight: 1024,
            outbox_frames: 256,
            read_budget_bytes: 1 << 20,
            max_frames_per_conn_per_pump: 64,
            max_frame_bytes: 64 << 20,
            handshake_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            evict_min_idle: Duration::from_millis(250),
            phase_timeout: Duration::from_secs(120),
            connect_deadline: Duration::from_secs(30),
            parallel_verify: false,
            backend,
        }
    }
}

/// Socket-layer counters, mirrored into the metrics registry as `net.*`
/// at epoch boundaries (deltas), so exported totals always equal this
/// struct's final values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct NetStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Handshakes completed (Hello → Welcome).
    pub handshakes: u64,
    /// Newcomers refused with `Busy { PoolFull }`.
    pub busy_rejects: u64,
    /// Submissions refused with `Busy { Shedding }`.
    pub shed_submissions: u64,
    /// Established connections evicted for a newcomer.
    pub evicted: u64,
    /// Connections swept for dawdling through the handshake.
    pub handshake_timeouts: u64,
    /// Established connections swept for idleness.
    pub idle_closed: u64,
    /// Connections closed for any reason (EOF, error, sweep, eviction,
    /// outbox overflow).
    pub disconnects: u64,
    /// Frames fully parsed off the wire.
    pub frames_in: u64,
    /// Frames fully written to the wire.
    pub frames_out: u64,
    /// Bytes read.
    pub bytes_in: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// Frames rejected by the checksum (the chaos proxy's ghosts land
    /// here by design).
    pub corrupt_frames: u64,
    /// Frames rejected as malformed (bad magic, oversized, wrong
    /// direction).
    pub malformed_frames: u64,
    /// Heartbeat pings answered.
    pub heartbeats: u64,
    /// Buffer requests served from the recycling pool ([`BufPool`]).
    pub buf_pool_hits: u64,
    /// Buffer requests that fell through to a fresh allocation.
    pub buf_pool_misses: u64,
    /// Total capacity (bytes) of recycled buffers handed back out.
    pub buf_pool_bytes_reused: u64,
}

impl NetStats {
    /// Field-wise difference against an earlier snapshot.
    #[must_use]
    pub fn delta(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            accepted: self.accepted - earlier.accepted,
            handshakes: self.handshakes - earlier.handshakes,
            busy_rejects: self.busy_rejects - earlier.busy_rejects,
            shed_submissions: self.shed_submissions - earlier.shed_submissions,
            evicted: self.evicted - earlier.evicted,
            handshake_timeouts: self.handshake_timeouts - earlier.handshake_timeouts,
            idle_closed: self.idle_closed - earlier.idle_closed,
            disconnects: self.disconnects - earlier.disconnects,
            frames_in: self.frames_in - earlier.frames_in,
            frames_out: self.frames_out - earlier.frames_out,
            bytes_in: self.bytes_in - earlier.bytes_in,
            bytes_out: self.bytes_out - earlier.bytes_out,
            corrupt_frames: self.corrupt_frames - earlier.corrupt_frames,
            malformed_frames: self.malformed_frames - earlier.malformed_frames,
            heartbeats: self.heartbeats - earlier.heartbeats,
            buf_pool_hits: self.buf_pool_hits - earlier.buf_pool_hits,
            buf_pool_misses: self.buf_pool_misses - earlier.buf_pool_misses,
            buf_pool_bytes_reused: self.buf_pool_bytes_reused - earlier.buf_pool_bytes_reused,
        }
    }

    /// Adds this snapshot (normally a delta) onto the `net.*` counters.
    pub fn publish(&self, rec: &Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("net.accepted", self.accepted);
        rec.counter_add("net.handshakes", self.handshakes);
        rec.counter_add("net.busy_rejects", self.busy_rejects);
        rec.counter_add("net.shed_submissions", self.shed_submissions);
        rec.counter_add("net.evicted", self.evicted);
        rec.counter_add("net.handshake_timeouts", self.handshake_timeouts);
        rec.counter_add("net.idle_closed", self.idle_closed);
        rec.counter_add("net.disconnects", self.disconnects);
        rec.counter_add("net.frames_in", self.frames_in);
        rec.counter_add("net.frames_out", self.frames_out);
        rec.counter_add("net.bytes_in", self.bytes_in);
        rec.counter_add("net.bytes_out", self.bytes_out);
        rec.counter_add("net.corrupt_frames", self.corrupt_frames);
        rec.counter_add("net.malformed_frames", self.malformed_frames);
        rec.counter_add("net.heartbeats", self.heartbeats);
        rec.counter_add("net.buf_pool_hits", self.buf_pool_hits);
        rec.counter_add("net.buf_pool_misses", self.buf_pool_misses);
        rec.counter_add("net.buf_pool_bytes_reused", self.buf_pool_bytes_reused);
    }
}

/// Epoch-pipeline progress surfaced in [`NetControl::StatusReport`].
/// Updated by the driver at serial epoch boundaries, so a status poll
/// always sees a consistent picture (never a half-accounted epoch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EpochProgress {
    /// Epochs fully accounted so far.
    pub epochs_done: u64,
    /// Epochs the run will drive in total.
    pub epochs_total: u64,
    /// Cumulative accepted verdicts across finished epochs.
    pub accepted: u64,
    /// Cumulative rejected verdicts.
    pub rejected: u64,
    /// Cumulative quarantined workers.
    pub quarantined: u64,
    /// Submissions refused by load shedding (mirrors
    /// `NetStats::shed_submissions` at the last epoch boundary).
    pub shed: u64,
    /// Committees ingested across finished epochs (two-tier runs only).
    pub committees: u64,
    /// Largest per-committee commitment working set seen so far.
    pub peak_commit_bytes: u64,
}

/// One live connection-table row in a [`StatusSnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct ConnStatus {
    /// Connection-table slot index.
    pub slot: u64,
    /// Worker id, or `-1` before the handshake completes.
    pub worker: i64,
    /// `"await_hello"` or `"ready"`.
    pub phase: String,
    /// Milliseconds since the last byte from the peer.
    pub idle_ms: u64,
    /// Frames queued toward the peer (backpressure depth).
    pub outbox: u64,
}

/// Reactor pressure: how much work the next pump already has queued.
/// Under the scan backend every queue reads zero (the scan visits
/// everything unconditionally, so nothing is ever *queued*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct QueueDepths {
    /// Connections with assembler-buffered frames awaiting routing (the
    /// userspace readable backlog epoll cannot see).
    pub readable: u64,
    /// Connections with pending outbox bytes awaiting a writable socket.
    pub writable: u64,
    /// Connections already past their handshake/idle deadline, to be
    /// closed by the next timer sweep.
    pub timer: u64,
}

/// The introspection snapshot answered to [`NetControl::Status`]
/// (DESIGN.md §16). Invariant, enforced by `tests/net_status.rs`: the
/// `counters` map is the registry's `net.*` family snapshotted *after*
/// folding in every pending delta, so `counters["net.x"]` equals the
/// matching `net` field in the same report.
#[derive(Debug, Clone, Serialize)]
pub struct StatusSnapshot {
    /// Wire protocol version ([`wire::NET_PROTOCOL`]).
    pub protocol: u32,
    /// Reactor backend actually in use (`"scan"` or `"readiness"`).
    pub backend: String,
    /// Size of the worker roster.
    pub workers: u64,
    /// Pristine submissions currently buffered (the shedding budget).
    pub inflight: u64,
    /// Reactor queue depths at snapshot time.
    pub queues: QueueDepths,
    /// Epoch-pipeline progress.
    pub progress: EpochProgress,
    /// Socket-layer counters at snapshot time.
    pub net: NetStats,
    /// Live connections, in slot order.
    pub connections: Vec<ConnStatus>,
    /// The metrics registry's `net.*` counter family (empty when the
    /// server runs without an enabled recorder).
    pub counters: BTreeMap<String, u64>,
}

/// What the sweep should do with a connection after routing one frame.
enum RouteResult {
    Keep,
    Close,
}

/// Where a connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    /// Accepted; the first frame must be a valid `Hello`.
    AwaitHello,
    /// Handshake complete; frames are routed for this worker id.
    Ready(usize),
}

/// One sealed frame queued toward a peer.
enum OutFrame {
    /// An immutable frame, possibly shared across connections (broadcasts,
    /// pre-sealed chaos writes).
    Shared(Bytes),
    /// A pool-backed frame: its buffer returns to the reactor's [`BufPool`]
    /// once fully written (per-connection control replies).
    Pooled(Vec<u8>),
}

impl OutFrame {
    fn as_slice(&self) -> &[u8] {
        match self {
            OutFrame::Shared(b) => b,
            OutFrame::Pooled(v) => v,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// One accepted connection: stream, incremental frame reassembly, and a
/// bounded outbox with a partial-write cursor.
struct Conn {
    stream: NetStream,
    asm: FrameAssembler,
    outbox: VecDeque<OutFrame>,
    /// Bytes of the outbox front frame already written.
    written: usize,
    phase: ConnPhase,
    opened: Instant,
    last_seen: Instant,
}

/// A worker's submission slot for the current epoch.
enum SubMail {
    /// The payload arrived intact (its chaos draws succeeded), possibly
    /// carrying the client's trace context (stripped before
    /// classification, consumed at the serial ingest point).
    Pristine(Option<TraceContext>, Bytes),
    /// The worker's chaos draws exhausted the retry budget; only the
    /// lengths crossed (via [`NetControl::ChaosGone`]) so the server can
    /// re-derive the identical accounting.
    Gone { payload_len: u32, raw_len: u32 },
    /// Refused by load shedding; quarantine without any chaos accounting.
    Shed,
}

/// A worker's proof-response queue entry.
enum ProofMail {
    Pristine(Option<TraceContext>, Bytes),
    Gone {
        seq: u64,
        payload_len: u32,
        raw_len: u32,
    },
}

#[derive(Default)]
struct Mailbox {
    submission: Option<SubMail>,
    proofs: VecDeque<ProofMail>,
}

/// The reactor state: listener, connection table, per-worker mailboxes,
/// and socket counters — everything [`NetCore::pump`] sweeps.
struct NetCore {
    listener: Listener,
    cfg: ServerConfig,
    conns: Vec<Option<Conn>>,
    /// worker id → connection slot (latest handshake wins).
    by_worker: HashMap<usize, usize>,
    mail: Vec<Mailbox>,
    stats: NetStats,
    /// Pristine submissions currently buffered (the shedding budget).
    inflight: usize,
    n_workers: usize,
    /// Recorder shared with the pool: the `net.*` publication point and
    /// the pump-latency histogram live here so status polls can snapshot
    /// registry totals without reaching into [`PoolServer`].
    rec: Arc<Recorder>,
    /// Stats already folded into the `net.*` counters (publication
    /// watermark).
    published: NetStats,
    /// Epoch-pipeline progress, updated by the driver at epoch ends.
    progress: EpochProgress,
    /// Reactor backend actually in use. Starts as the config's request and
    /// degrades to `Scan` (permanently) if an epoll syscall ever fails.
    backend: ReactorBackend,
    /// The epoll instance behind [`ReactorBackend::Readiness`]; `None`
    /// under `Scan`. Registration tokens are connection slot indices, with
    /// `u64::MAX` for the listener.
    poller: Option<poll::Poller>,
    /// Reused readiness-event buffer (no per-pump allocation).
    ready_buf: Vec<poll::Ready>,
    /// Slots with assembler-buffered frames that still need routing —
    /// userspace bytes epoll cannot see. Drained (bounded) every pump.
    dirty: VecDeque<usize>,
    in_dirty: Vec<bool>,
    /// Slots with pending outbox bytes awaiting socket writability.
    flush: VecDeque<usize>,
    in_flush: Vec<bool>,
    /// Per-slot stamp of the pump that last serviced it: a slot named by
    /// several sources in one pump (kernel event + dirty queue) is
    /// serviced once. Cheaper than clearing a visited bitmap (which would
    /// be O(all connections) again).
    last_service: Vec<u64>,
    pump_seq: u64,
    /// Next amortized timer sweep under the readiness backend (the scan
    /// backend sweeps every pump, as it always did).
    next_timer_sweep: Instant,
    timer_granularity: Duration,
    /// Recycling arena for frame payloads, assembler backing stores, and
    /// pooled control replies.
    pool: BufPool,
}

impl NetCore {
    /// One nonblocking pump: accept, read/route, flush, sweep timeouts.
    /// Safe to call from any thread holding the lock; never blocks.
    ///
    /// Under [`ReactorBackend::Scan`] every connection is visited; under
    /// [`ReactorBackend::Readiness`] only connections with kernel
    /// readiness, buffered frames (dirty queue), pending outboxes (flush
    /// queue), or a due timer sweep are touched — O(active), not O(all).
    fn pump(&mut self) {
        // Wall-clock sweep latency: the pump cadence is timing-dependent,
        // so the measurement feeds a histogram only — never the trace
        // clock, which must stay a pure function of the protocol.
        let timed = self.rec.enabled().then(Instant::now);
        self.pump_seq += 1;
        match self.backend {
            ReactorBackend::Scan => self.pump_scan(),
            ReactorBackend::Readiness => self.pump_readiness(0),
        }
        if let Some(start) = timed {
            self.rec
                .observe_latency("net.pump_latency", start.elapsed().as_nanos() as u64);
        }
    }

    /// Like [`pump`](Self::pump), but when the readiness backend has no
    /// queued work it parks in `epoll_wait` for up to `max_wait`, waking
    /// the instant the kernel has a connection or bytes for it. Returns
    /// `true` when the pump parked (the caller's idle wait has already
    /// happened — loop straight back); `false` when the caller must pace
    /// itself (scan backend, spill-over queues pending, or a timer sweep
    /// due sooner than a millisecond). Parked pumps are excluded from the
    /// `net.pump_latency` histogram: their wall time is kernel idle, not
    /// sweep cost.
    fn pump_or_wait(&mut self, max_wait: Duration) -> bool {
        if self.backend != ReactorBackend::Readiness
            || self.poller.is_none()
            || !self.dirty.is_empty()
            || !self.flush.is_empty()
        {
            self.pump();
            return false;
        }
        let until_sweep = self
            .next_timer_sweep
            .saturating_duration_since(Instant::now());
        let timeout_ms = max_wait.min(until_sweep).as_millis() as i32;
        if timeout_ms == 0 {
            self.pump();
            return false;
        }
        self.pump_seq += 1;
        self.pump_readiness(timeout_ms);
        true
    }

    fn pump_scan(&mut self) {
        self.accept_new();
        for idx in 0..self.conns.len() {
            self.service_conn(idx);
        }
        self.sweep_timeouts();
    }

    fn pump_readiness(&mut self, timeout_ms: i32) {
        // 1. Kernel readiness. A failed wait degrades to the scan loop for
        // the rest of the run — correctness never depends on epoll.
        let mut events = std::mem::take(&mut self.ready_buf);
        events.clear();
        match self.poller.as_mut() {
            Some(poller) => {
                if poller.wait(&mut events, timeout_ms).is_err() {
                    self.ready_buf = events;
                    self.degrade_to_scan();
                    self.pump_scan();
                    return;
                }
            }
            None => {
                self.degrade_to_scan();
                self.pump_scan();
                return;
            }
        }
        if self.rec.enabled() {
            self.rec
                .observe_log("net.pump.ready_events", events.len() as u64);
            self.rec
                .observe_log("net.pump.readable_depth", self.dirty.len() as u64);
            self.rec
                .observe_log("net.pump.writable_depth", self.flush.len() as u64);
        }
        // 2. Accept when the listener is ready (level-triggered: any
        // backlog left un-accepted re-fires next pump).
        if events.iter().any(|ev| ev.token == u64::MAX) {
            self.accept_new();
        }
        // 3. Service kernel-ready connections, once each per pump.
        for ev in &events {
            if ev.token == u64::MAX {
                continue;
            }
            let idx = ev.token as usize;
            if idx < self.conns.len() && self.last_service[idx] != self.pump_seq {
                self.last_service[idx] = self.pump_seq;
                self.service_conn(idx);
            }
        }
        self.ready_buf = events;
        // 4. Dirty queue: connections whose assemblers already hold
        // complete frames (budget spill-over from a previous pump). A
        // bounded drain — entries re-marked during this pump wait for the
        // next one, preserving the per-pump fairness budgets.
        for _ in 0..self.dirty.len() {
            let Some(idx) = self.dirty.pop_front() else {
                break;
            };
            self.in_dirty[idx] = false;
            if self.last_service[idx] == self.pump_seq {
                // Already serviced this pump via a kernel event. Dropping
                // the entry would orphan whatever that service left
                // buffered (its own re-mark may have landed *before* this
                // stale entry was popped) — re-note so leftovers queue for
                // the next pump.
                self.note_after_service(idx);
                continue;
            }
            self.last_service[idx] = self.pump_seq;
            self.service_conn(idx);
        }
        // 5. Flush queue: pending outboxes retry while the socket refuses
        // bytes. Serviced connections already flushed above, so this only
        // touches write-blocked peers.
        for _ in 0..self.flush.len() {
            let Some(idx) = self.flush.pop_front() else {
                break;
            };
            self.in_flush[idx] = false;
            let Some(mut conn) = self.conns[idx].take() else {
                continue;
            };
            let alive = Self::flush_conn(&mut self.stats, &mut self.pool, &mut conn);
            self.conns[idx] = Some(conn);
            if !alive {
                self.close(idx);
            } else {
                self.note_after_service(idx);
            }
        }
        // 6. Amortized timer sweep: deadlines are coarse (milliseconds at
        // minimum), so sweeping every granularity tick — not every pump —
        // keeps idle connections off the hot path entirely.
        let now = Instant::now();
        if now >= self.next_timer_sweep {
            self.sweep_timeouts();
            self.next_timer_sweep = now + self.timer_granularity;
        }
    }

    /// Permanently falls back to the scan backend (epoll unavailable or a
    /// syscall failed). The queues are cleared — the scan visits every
    /// connection unconditionally, so queued work cannot be lost.
    fn degrade_to_scan(&mut self) {
        self.backend = ReactorBackend::Scan;
        self.poller = None;
        self.dirty.clear();
        self.in_dirty.iter_mut().for_each(|d| *d = false);
        self.flush.clear();
        self.in_flush.iter_mut().for_each(|f| *f = false);
    }

    /// Queues a slot for frame routing next pump (readiness backend only:
    /// the scan visits everything, so queueing would only leak entries).
    fn mark_dirty(&mut self, idx: usize) {
        if self.backend == ReactorBackend::Readiness && !self.in_dirty[idx] {
            self.in_dirty[idx] = true;
            self.dirty.push_back(idx);
        }
    }

    /// Queues a slot for an outbox flush next pump (readiness only).
    fn mark_flush(&mut self, idx: usize) {
        if self.backend == ReactorBackend::Readiness && !self.in_flush[idx] {
            self.in_flush[idx] = true;
            self.flush.push_back(idx);
        }
    }

    /// Re-queues whatever a just-serviced connection left behind: frames
    /// still buffered in its assembler, bytes still in its outbox.
    fn note_after_service(&mut self, idx: usize) {
        if self.backend != ReactorBackend::Readiness {
            return;
        }
        let (buffered, pending) = match self.conns[idx].as_ref() {
            Some(conn) => (conn.asm.ready(), !conn.outbox.is_empty()),
            None => return,
        };
        if buffered {
            self.mark_dirty(idx);
        }
        if pending {
            self.mark_flush(idx);
        }
    }

    /// Mirrors the buffer-pool counters into [`NetStats`] so every stats
    /// export (publish, status, final read) sees them.
    fn sync_pool_stats(&mut self) {
        self.stats.buf_pool_hits = self.pool.hits;
        self.stats.buf_pool_misses = self.pool.misses;
        self.stats.buf_pool_bytes_reused = self.pool.bytes_reused;
    }

    /// Current socket counters, with the pool mirror freshly synced.
    fn net_stats(&mut self) -> NetStats {
        self.sync_pool_stats();
        self.stats
    }

    /// Folds the socket counters' delta since the last call into the
    /// `net.*` counters. Delta-based, so calling it from a status poll
    /// mid-epoch never double-counts and exported totals always equal
    /// the final [`NetStats`].
    fn publish_stats(&mut self) {
        if !self.rec.enabled() {
            return;
        }
        self.sync_pool_stats();
        self.stats.delta(&self.published).publish(&self.rec);
        self.published = self.stats;
    }

    /// Builds the introspection snapshot, publishing pending `net.*`
    /// deltas first so the embedded registry totals equal the embedded
    /// stats by construction. Touches neither the trace buffer nor the
    /// trace clock: polling status never perturbs a deterministic trace.
    fn status_snapshot(&mut self) -> StatusSnapshot {
        self.sync_pool_stats();
        self.publish_stats();
        let counters = self
            .rec
            .snapshot()
            .counters_with_prefix("net.")
            .into_iter()
            .collect();
        let now = Instant::now();
        let timer_due = self
            .conns
            .iter()
            .flatten()
            .filter(|conn| match conn.phase {
                ConnPhase::AwaitHello => {
                    now.duration_since(conn.opened) > self.cfg.handshake_timeout
                }
                ConnPhase::Ready(_) => now.duration_since(conn.last_seen) > self.cfg.idle_timeout,
            })
            .count();
        let connections = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, c)| {
                let conn = c.as_ref()?;
                let (phase, worker) = match conn.phase {
                    ConnPhase::AwaitHello => ("await_hello", -1),
                    ConnPhase::Ready(w) => ("ready", w as i64),
                };
                Some(ConnStatus {
                    slot: slot as u64,
                    worker,
                    phase: phase.to_string(),
                    idle_ms: now.duration_since(conn.last_seen).as_millis() as u64,
                    outbox: conn.outbox.len() as u64,
                })
            })
            .collect();
        StatusSnapshot {
            protocol: wire::NET_PROTOCOL,
            backend: self.backend.name().to_string(),
            workers: self.n_workers as u64,
            inflight: self.inflight as u64,
            queues: QueueDepths {
                readable: self.dirty.len() as u64,
                writable: self.flush.len() as u64,
                timer: timer_due as u64,
            },
            progress: self.progress,
            net: self.stats,
            connections,
            counters,
        }
    }

    /// Seals a control frame into a pool-recycled buffer: the steady-state
    /// path for per-connection replies (pongs, welcomes, busy notices).
    fn seal_control_pooled(&mut self, msg: &NetControl) -> OutFrame {
        let payload = wire::encode_net_control(msg);
        let mut buf = self.pool.get();
        wire::seal_frame_into(&payload, &mut buf);
        OutFrame::Pooled(buf)
    }

    /// Answers a [`NetControl::Status`] probe on its own connection.
    fn answer_status(&mut self, conn: &mut Conn) -> RouteResult {
        let json =
            rpol_json::to_string(&self.status_snapshot()).expect("status snapshot serializes");
        let framed = self.seal_control_pooled(&NetControl::StatusReport { json });
        Self::enqueue(&self.cfg, conn, framed)
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(stream) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn active(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn admit(&mut self, mut stream: NetStream) {
        self.stats.accepted += 1;
        if self.active() >= self.cfg.max_connections {
            match self.evict_candidate() {
                Some(victim) => {
                    self.stats.evicted += 1;
                    self.close(victim);
                }
                None => {
                    // Nothing idle enough to evict: refuse (best-effort
                    // write — the newcomer is dropped either way).
                    self.stats.busy_rejects += 1;
                    let busy = wire::seal_frame(&wire::encode_net_control(&NetControl::Busy {
                        reason: BusyReason::PoolFull,
                    }));
                    let _ = stream.write(&busy);
                    return;
                }
            }
        }
        let now = Instant::now();
        let fd = stream.raw_fd();
        let conn = Conn {
            stream,
            // Stream buffers recycle through the pool too: a reconnect
            // inherits a previous connection's grown buffer.
            asm: FrameAssembler::with_buffer(self.cfg.max_frame_bytes, self.pool.get()),
            outbox: VecDeque::new(),
            written: 0,
            phase: ConnPhase::AwaitHello,
            opened: now,
            last_seen: now,
        };
        let slot = match self.conns.iter().position(|c| c.is_none()) {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.in_dirty.push(false);
                self.in_flush.push(false);
                self.last_service.push(0);
                self.conns.len() - 1
            }
        };
        if let Some(poller) = &self.poller {
            if poller.add(fd, slot as u64).is_err() {
                // Interest registration failed: the readiness source can no
                // longer see every connection, so scan from here on.
                self.degrade_to_scan();
            }
        }
    }

    /// The established connection longest idle (and idle at least
    /// [`ServerConfig::evict_min_idle`]), if any.
    fn evict_candidate(&self) -> Option<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let conn = slot.as_ref()?;
                matches!(conn.phase, ConnPhase::Ready(_)).then_some((idx, conn.last_seen))
            })
            .filter(|&(_, seen)| seen.elapsed() >= self.cfg.evict_min_idle)
            .min_by_key(|&(_, seen)| seen)
            .map(|(idx, _)| idx)
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            if let Some(poller) = &self.poller {
                // Interest-set hygiene; the kernel would also auto-remove
                // the fd when the stream drops, so failure is tolerable.
                let _ = poller.del(conn.stream.raw_fd());
            }
            if let ConnPhase::Ready(w) = conn.phase {
                if self.by_worker.get(&w) == Some(&idx) {
                    self.by_worker.remove(&w);
                }
            }
            // The stream buffer and any pooled outbox frames outlive the
            // connection via the pool.
            self.pool.put(conn.asm.into_buffer());
            for frame in conn.outbox {
                if let OutFrame::Pooled(buf) = frame {
                    self.pool.put(buf);
                }
            }
            self.stats.disconnects += 1;
        }
    }

    /// Reads (within the byte budget), routes parsed frames (within the
    /// frame budget), and flushes the outbox for one connection.
    ///
    /// The assembler is drained **before** the first read: frames fully
    /// buffered by a previous sweep — because they straddled that sweep's
    /// byte budget, or overflowed its frame budget — parse now, without
    /// waiting for the peer to send another byte.
    fn service_conn(&mut self, idx: usize) {
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let mut budget = self.cfg.read_budget_bytes;
        let mut frames = self.cfg.max_frames_per_conn_per_pump;
        let mut chunk = [0u8; 8192];
        let mut alive = self.drain_frames(idx, &mut conn, &mut frames);
        'read: while alive && budget > 0 && frames > 0 {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    alive = false;
                    break 'read;
                }
                Ok(k) => {
                    self.stats.bytes_in += k as u64;
                    budget = budget.saturating_sub(k);
                    conn.last_seen = Instant::now();
                    conn.asm.push(&chunk[..k]);
                    if !self.drain_frames(idx, &mut conn, &mut frames) {
                        alive = false;
                        break 'read;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'read,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    alive = false;
                    break 'read;
                }
            }
        }
        if alive {
            alive = Self::flush_conn(&mut self.stats, &mut self.pool, &mut conn);
        }
        self.conns[idx] = Some(conn);
        if !alive {
            self.close(idx);
        } else {
            self.note_after_service(idx);
        }
    }

    /// Parses and routes complete frames out of `conn`'s assembler until
    /// it runs dry or the sweep's frame budget is spent. Returns `false`
    /// when routing decided the connection must close.
    fn drain_frames(&mut self, idx: usize, conn: &mut Conn, frames: &mut usize) -> bool {
        while *frames > 0 {
            match conn.asm.next_frame_with(Some(&mut self.pool)) {
                Ok(Some(payload)) => {
                    self.stats.frames_in += 1;
                    *frames -= 1;
                    if let RouteResult::Close = self.route(idx, conn, payload) {
                        return false;
                    }
                }
                Ok(None) => break,
                Err(wire::DecodeError::ChecksumMismatch) => {
                    self.stats.corrupt_frames += 1;
                }
                Err(_) => self.stats.malformed_frames += 1,
            }
        }
        true
    }

    /// Writes as much of the outbox as the socket accepts right now,
    /// gathering queued frames into vectored writes so a burst of small
    /// control frames costs one syscall, not one per frame. Fully-written
    /// pooled frames recycle their buffers. Returns `false` when the
    /// connection should close.
    fn flush_conn(stats: &mut NetStats, pool: &mut BufPool, conn: &mut Conn) -> bool {
        /// Frames gathered per writev (the kernel caps total iovecs at
        /// 1024; 16 covers every realistic burst here).
        const GATHER: usize = 16;
        loop {
            if conn.outbox.is_empty() {
                return true;
            }
            let written = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(GATHER);
                for (i, frame) in conn.outbox.iter().take(GATHER).enumerate() {
                    let bytes = frame.as_slice();
                    slices.push(IoSlice::new(if i == 0 {
                        &bytes[conn.written..]
                    } else {
                        bytes
                    }));
                }
                match conn.stream.write_vectored(&slices) {
                    Ok(0) => return false,
                    Ok(k) => k,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            };
            stats.bytes_out += written as u64;
            let mut remaining = written;
            while remaining > 0 {
                let front_left =
                    conn.outbox.front().expect("bytes imply a frame").len() - conn.written;
                if remaining >= front_left {
                    remaining -= front_left;
                    conn.written = 0;
                    stats.frames_out += 1;
                    if let Some(OutFrame::Pooled(buf)) = conn.outbox.pop_front() {
                        pool.put(buf);
                    }
                } else {
                    conn.written += remaining;
                    remaining = 0;
                }
            }
        }
    }

    /// Enqueues one already-sealed frame, enforcing the backpressure
    /// bound.
    fn enqueue(cfg: &ServerConfig, conn: &mut Conn, framed: OutFrame) -> RouteResult {
        if conn.outbox.len() >= cfg.outbox_frames {
            return RouteResult::Close;
        }
        conn.outbox.push_back(framed);
        RouteResult::Keep
    }

    fn route(&mut self, idx: usize, conn: &mut Conn, payload: Bytes) -> RouteResult {
        match conn.phase {
            ConnPhase::AwaitHello => {
                let mut payload = payload;
                let msg = wire::decode_net_control_in(&mut payload);
                self.pool.put(Vec::from(payload));
                if matches!(msg, Ok(NetControl::Status)) {
                    // Introspection probes (`rpol status`) never complete
                    // a handshake; answer without closing.
                    return self.answer_status(conn);
                }
                let Ok(NetControl::Hello { worker, protocol }) = msg else {
                    self.stats.malformed_frames += 1;
                    return RouteResult::Close;
                };
                if protocol != wire::NET_PROTOCOL || worker as usize >= self.n_workers {
                    return RouteResult::Close;
                }
                let w = worker as usize;
                // Latest handshake for a worker id wins (reconnects after
                // a half-open drop would otherwise shadow themselves).
                if let Some(&old) = self.by_worker.get(&w) {
                    if old != idx {
                        self.close(old);
                    }
                }
                self.by_worker.insert(w, idx);
                conn.phase = ConnPhase::Ready(w);
                self.stats.handshakes += 1;
                let welcome = self.seal_control_pooled(&NetControl::Welcome {
                    workers: self.n_workers as u32,
                });
                Self::enqueue(&self.cfg, conn, welcome)
            }
            ConnPhase::Ready(w) => {
                // Strip the optional (chaos-exempt) trace extension first:
                // classification, decoding, and every length-based chaos
                // account below run on the inner payload, so tracing never
                // perturbs fault draws or parity accounting. The context is
                // stored with the mail and consumed at the serial ingest
                // point — never traced at (nondeterministic) arrival time.
                let (ctx, payload) = wire::split_traced_owned(payload);
                match wire::classify_payload(&payload) {
                    PayloadClass::Control => self.route_control(w, conn, payload),
                    PayloadClass::Submission => {
                        if self.mail[w].submission.is_some() {
                            self.pool.put(Vec::from(payload));
                            return RouteResult::Keep; // duplicate; first wins
                        }
                        if self.inflight >= self.cfg.max_inflight {
                            self.stats.shed_submissions += 1;
                            self.mail[w].submission = Some(SubMail::Shed);
                            self.pool.put(Vec::from(payload));
                            let busy = self.seal_control_pooled(&NetControl::Busy {
                                reason: BusyReason::Shedding,
                            });
                            return Self::enqueue(&self.cfg, conn, busy);
                        }
                        self.inflight += 1;
                        self.mail[w].submission = Some(SubMail::Pristine(ctx, payload));
                        RouteResult::Keep
                    }
                    PayloadClass::ProofResponse => {
                        self.mail[w]
                            .proofs
                            .push_back(ProofMail::Pristine(ctx, payload));
                        RouteResult::Keep
                    }
                    _ => {
                        // Manager-bound frames only; anything else is a
                        // protocol violation worth counting, not closing.
                        self.stats.malformed_frames += 1;
                        self.pool.put(Vec::from(payload));
                        RouteResult::Keep
                    }
                }
            }
        }
    }

    fn route_control(&mut self, w: usize, conn: &mut Conn, mut payload: Bytes) -> RouteResult {
        let msg = wire::decode_net_control_in(&mut payload);
        self.pool.put(Vec::from(payload));
        let msg = match msg {
            Ok(msg) => msg,
            Err(_) => {
                self.stats.malformed_frames += 1;
                return RouteResult::Keep;
            }
        };
        match msg {
            NetControl::Status => self.answer_status(conn),
            NetControl::Ping { nonce } => {
                self.stats.heartbeats += 1;
                let pong = self.seal_control_pooled(&NetControl::Pong { nonce });
                Self::enqueue(&self.cfg, conn, pong)
            }
            NetControl::ChaosGone {
                kind,
                seq,
                payload_len,
                raw_len,
            } => {
                match MsgKind::from_wire_code(kind) {
                    Some(MsgKind::Submission) => {
                        if self.mail[w].submission.is_none() {
                            self.mail[w].submission = Some(SubMail::Gone {
                                payload_len,
                                raw_len,
                            });
                        }
                    }
                    Some(MsgKind::ProofResponse) => {
                        self.mail[w].proofs.push_back(ProofMail::Gone {
                            seq,
                            payload_len,
                            raw_len,
                        });
                    }
                    _ => self.stats.malformed_frames += 1,
                }
                RouteResult::Keep
            }
            // Hello after handshake, echoes of manager-side messages:
            // tolerated, not routed.
            _ => RouteResult::Keep,
        }
    }

    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            match conn.phase {
                ConnPhase::AwaitHello => {
                    if now.duration_since(conn.opened) > self.cfg.handshake_timeout {
                        self.stats.handshake_timeouts += 1;
                        self.close(idx);
                    }
                }
                ConnPhase::Ready(_) => {
                    if now.duration_since(conn.last_seen) > self.cfg.idle_timeout {
                        self.stats.idle_closed += 1;
                        self.close(idx);
                    }
                }
            }
        }
    }

    fn connected(&self, w: usize) -> bool {
        self.by_worker.contains_key(&w)
    }

    /// Enqueues pre-sealed frames for a worker. Returns `false` when the
    /// worker has no live connection (frames are dropped, as a dead link
    /// would).
    fn send_framed_to_worker(&mut self, w: usize, frames: Vec<Bytes>) -> bool {
        let Some(&idx) = self.by_worker.get(&w) else {
            return false;
        };
        let mut overflow = false;
        if let Some(conn) = self.conns[idx].as_mut() {
            for framed in frames {
                if let RouteResult::Close = Self::enqueue(&self.cfg, conn, OutFrame::Shared(framed))
                {
                    overflow = true;
                    break;
                }
            }
        } else {
            return false;
        }
        if overflow {
            self.close(idx);
            return false;
        }
        self.mark_flush(idx);
        true
    }

    fn send_control_to_worker(&mut self, w: usize, msg: &NetControl) -> bool {
        let framed = wire::seal_frame(&wire::encode_net_control(msg));
        self.send_framed_to_worker(w, vec![framed])
    }

    /// Enqueues a control frame on every established connection.
    fn broadcast_control(&mut self, msg: &NetControl) {
        let framed = wire::seal_frame(&wire::encode_net_control(msg));
        for idx in 0..self.conns.len() {
            let enqueued = match self.conns[idx].as_mut() {
                Some(conn) if matches!(conn.phase, ConnPhase::Ready(_)) => Some(matches!(
                    Self::enqueue(&self.cfg, conn, OutFrame::Shared(framed.clone())),
                    RouteResult::Close
                )),
                _ => None,
            };
            match enqueued {
                Some(true) => self.close(idx),
                Some(false) => self.mark_flush(idx),
                None => {}
            }
        }
    }

    /// Clears every mailbox at an epoch boundary.
    fn reset_epoch(&mut self) {
        for mb in &mut self.mail {
            mb.submission = None;
            mb.proofs.clear();
        }
        self.inflight = 0;
    }

    /// Whether the submission wait can stop considering this worker: its
    /// slot is filled, or it has no live connection to fill it from.
    fn submission_settled(&self, w: usize) -> bool {
        self.mail[w].submission.is_some() || !self.connected(w)
    }

    fn take_submission(&mut self, w: usize) -> Option<SubMail> {
        let mail = self.mail[w].submission.take();
        if matches!(mail, Some(SubMail::Pristine(..))) {
            self.inflight = self.inflight.saturating_sub(1);
        }
        mail
    }

    /// Empties every tasked worker's submission slot in one lock hold —
    /// the epoch's batched ingest point. Untasked workers yield `None`
    /// without touching their mailboxes (they have none to take).
    fn drain_submissions(&mut self, tasked: &[bool]) -> Vec<Option<SubMail>> {
        (0..tasked.len())
            .map(|w| {
                if tasked[w] {
                    self.take_submission(w)
                } else {
                    None
                }
            })
            .collect()
    }

    fn pop_proof(&mut self, w: usize) -> Option<ProofMail> {
        self.mail[w].proofs.pop_front()
    }

    fn outboxes_empty(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .all(|conn| conn.outbox.is_empty())
    }
}

#[derive(Default)]
struct ProviderState {
    seq: u64,
    stats: TransportStats,
    clock: SimClock,
}

/// A [`ProofProvider`] that reaches its worker over the socket, with the
/// chaos proxy on both legs: the request's ghost frames and outcome come
/// from the server's own draws, the response's are re-derived from the
/// worker's [`NetControl::ChaosGone`] / pristine delivery. The per-opening
/// `seq` advances exactly like the simulated provider's — including when
/// a request leg exhausts and nothing ever reaches the worker.
struct SocketProvider<'a> {
    transport: &'a Transport,
    core: Arc<Mutex<NetCore>>,
    rec: Arc<Recorder>,
    worker: usize,
    epoch: u64,
    timeout: Duration,
    state: Mutex<ProviderState>,
    /// Distributed trace id (the pool seed) for outbound proof requests.
    trace_id: u64,
    /// Span id of the verification phase, stamped as the requests' parent.
    parent_span: u64,
}

impl ProofProvider for SocketProvider<'_> {
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, ProofUnavailable> {
        let unavailable = ProofUnavailable { index };
        let mut guard = self.state.lock();
        let seq = guard.seq;
        guard.seq += 1;
        let ProviderState { stats, clock, .. } = &mut *guard;

        // Request leg: manager → worker, chaos draws on the sender.
        let request = wire::encode_proof_request(&[index]);
        let (mut writes, outcome) = self.transport.chaos_frames(
            self.epoch,
            self.worker,
            MsgKind::ProofRequest,
            seq,
            &request,
            LinkState::healthy(),
            stats,
            clock,
            &self.rec,
        );
        // The trace extension rides only the pristine frame (always the
        // last write of a successful exchange) and wraps *after* the chaos
        // draws, so tracing never shifts a fault outcome.
        if self.rec.enabled() && outcome.is_ok() {
            let ctx = TraceContext {
                trace_id: self.trace_id,
                parent_span: self.parent_span,
                watermark: self.rec.now_ns(),
            };
            if let Some(last) = writes.last_mut() {
                *last = wire::seal_frame(&wire::wrap_traced(ctx, &request));
            }
        }
        let sent = {
            let mut core = self.core.lock();
            if outcome.is_ok() {
                // Bind the worker's next response to this opening's fault
                // draws before any request bytes arrive (same conn, so
                // ordering is guaranteed).
                core.send_control_to_worker(self.worker, &NetControl::ProofSeq { seq });
            }
            let sent = core.send_framed_to_worker(self.worker, writes);
            core.pump();
            sent
        };
        if outcome.is_err() || !sent {
            return Err(unavailable);
        }

        // Response leg: wait on the mailbox, pumping the reactor
        // cooperatively so any number of concurrent openings make
        // progress at any executor width.
        let deadline = Instant::now() + self.timeout;
        let mail = loop {
            let parked = {
                let mut core = self.core.lock();
                if let Some(mail) = core.pop_proof(self.worker) {
                    break mail;
                }
                core.pump_or_wait(PUMP_PARK)
            };
            if Instant::now() > deadline {
                return Err(unavailable);
            }
            if !parked {
                std::thread::sleep(Duration::from_micros(200));
            }
        };
        match mail {
            ProofMail::Pristine(ctx, payload) => {
                if let Some(ctx) = ctx {
                    // Consumed here — per opening, under the provider's
                    // serialized seq — not at nondeterministic arrival time.
                    self.rec.child_event(
                        "rpol.server.ingest_proof",
                        ctx,
                        &[
                            ("worker", Value::from(self.worker)),
                            ("seq", Value::from(seq)),
                        ],
                    );
                }
                let payload_len = payload.len();
                let outcome = self.transport.chaos_outcome(
                    self.epoch,
                    self.worker,
                    MsgKind::ProofResponse,
                    seq,
                    payload_len,
                    LinkState::healthy(),
                    stats,
                    clock,
                    &self.rec,
                );
                debug_assert!(outcome.is_ok(), "pristine delivery implies chaos success");
                let (got_index, got_weights) =
                    wire::decode_proof_response(payload).map_err(|_| unavailable)?;
                stats.bytes_saved += (wire::proof_response_raw_wire_size(got_weights.len()) as u64)
                    .saturating_sub(payload_len as u64);
                if got_index != index {
                    return Err(unavailable);
                }
                Ok(std::borrow::Cow::Owned(got_weights))
            }
            ProofMail::Gone {
                seq: gone_seq,
                payload_len,
                raw_len,
            } => {
                debug_assert_eq!(gone_seq, seq, "proof mailbox out of sync");
                stats.bytes_saved += u64::from(raw_len.saturating_sub(payload_len));
                let outcome = self.transport.chaos_outcome(
                    self.epoch,
                    self.worker,
                    MsgKind::ProofResponse,
                    seq,
                    payload_len as usize,
                    LinkState::healthy(),
                    stats,
                    clock,
                    &self.rec,
                );
                debug_assert!(outcome.is_err(), "ChaosGone implies exhausted draws");
                Err(unavailable)
            }
        }
    }
}

/// The manager, standing as a socket service: binds a listener, waits
/// for the worker roster, then drives epochs over the wire with the same
/// serialized fault accounting as the simulated transport path.
pub struct PoolServer {
    pool: MiningPool,
    core: Arc<Mutex<NetCore>>,
    transport: Transport,
    cfg: ServerConfig,
    recorder: Arc<Recorder>,
    exec: Arc<Executor>,
    local: String,
}

impl PoolServer {
    /// Binds the listener and prepares the service. The pool's fault
    /// config seeds the chaos proxy; absent one, the proxy is ideal
    /// (every frame pristine) but the full framing path still runs.
    ///
    /// # Errors
    ///
    /// Returns any socket `bind` error.
    pub fn bind(mut pool: MiningPool, addr: &BindAddr, cfg: ServerConfig) -> io::Result<Self> {
        let fault = pool
            .config()
            .fault
            .unwrap_or_else(|| FaultConfig::ideal(pool.config().seed));
        let transport = Transport::new(&fault);
        let exec = pool.ensure_executor();
        let recorder = pool.recorder.clone();
        let listener = Listener::bind(addr)?;
        let local = listener.local_display();
        let n = pool.workers.len();
        // Stand up the requested backend; any epoll failure here (or
        // later) degrades to the portable scan loop rather than erroring.
        let mut backend = cfg.backend;
        let mut poller = None;
        if backend == ReactorBackend::Readiness {
            match poll::Poller::new() {
                Ok(p) => {
                    if p.add(listener.raw_fd(), u64::MAX).is_ok() {
                        poller = Some(p);
                    } else {
                        backend = ReactorBackend::Scan;
                    }
                }
                Err(_) => backend = ReactorBackend::Scan,
            }
        }
        let timer_granularity = (cfg.handshake_timeout.min(cfg.idle_timeout) / 8)
            .clamp(Duration::from_millis(1), Duration::from_millis(25));
        let core = NetCore {
            listener,
            cfg,
            conns: Vec::new(),
            by_worker: HashMap::new(),
            mail: (0..n).map(|_| Mailbox::default()).collect(),
            stats: NetStats::default(),
            inflight: 0,
            n_workers: n,
            rec: recorder.clone(),
            published: NetStats::default(),
            progress: EpochProgress::default(),
            backend,
            poller,
            ready_buf: Vec::new(),
            dirty: VecDeque::new(),
            in_dirty: Vec::new(),
            flush: VecDeque::new(),
            in_flush: Vec::new(),
            last_service: Vec::new(),
            pump_seq: 0,
            next_timer_sweep: Instant::now(),
            timer_granularity,
            pool: BufPool::new(),
        };
        Ok(Self {
            pool,
            core: Arc::new(Mutex::new(core)),
            transport,
            cfg,
            recorder,
            exec,
            local,
        })
    }

    /// The bound address in [`BindAddr::parse`] syntax (with the
    /// OS-assigned port resolved).
    pub fn local_addr(&self) -> String {
        self.local.clone()
    }

    /// Current socket-layer counters.
    pub fn net_stats(&self) -> NetStats {
        self.core.lock().net_stats()
    }

    /// Pumps the reactor until `n` distinct workers have completed the
    /// handshake.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` when the roster is still short at the deadline.
    pub fn wait_for_workers(&self, n: usize, deadline: Duration) -> io::Result<()> {
        let end = Instant::now() + deadline;
        loop {
            let parked = {
                let mut core = self.core.lock();
                let parked = core.pump_or_wait(PUMP_PARK);
                if core.by_worker.len() >= n {
                    return Ok(());
                }
                parked
            };
            if Instant::now() > end {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "workers did not connect before the deadline",
                ));
            }
            if !parked {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    /// Runs the configured number of epochs against the connected
    /// workers, then broadcasts [`NetControl::Shutdown`] and drains.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` when the full roster never connects.
    pub fn run(&mut self) -> io::Result<PoolReport> {
        let n = self.pool.workers.len();
        let epochs_total = self.pool.config().epochs;
        // Publish the epoch plan before the roster gathers so a status
        // probe during the connect phase already sees it.
        self.core.lock().progress.epochs_total = epochs_total as u64;
        self.wait_for_workers(n, self.cfg.connect_deadline)?;
        let mut epochs = Vec::with_capacity(epochs_total);
        for e in 0..epochs_total {
            let record = self.run_epoch(e as u64);
            self.pool.publish_epoch(&record);
            self.publish_net(Some(record.wall_seconds));
            {
                // Fold the finished epoch into the status-plane progress
                // at this serial point, so a poll never sees half an epoch.
                let mut core = self.core.lock();
                core.progress.epochs_done += 1;
                core.progress.accepted += record.report.accepted.len() as u64;
                core.progress.rejected += record.report.rejected.len() as u64;
                core.progress.quarantined += record.report.quarantined.len() as u64;
                core.progress.shed = core.stats.shed_submissions;
                core.progress.committees += record
                    .report
                    .hierarchy
                    .as_ref()
                    .map_or(0, |h| h.committees as u64);
                core.progress.peak_commit_bytes = core
                    .progress
                    .peak_commit_bytes
                    .max(record.report.peak_commit_bytes);
            }
            epochs.push(record);
        }
        {
            let mut core = self.core.lock();
            core.broadcast_control(&NetControl::Shutdown);
        }
        self.drain(Duration::from_secs(2));
        self.publish_net(None);
        Ok(PoolReport {
            scheme: self.pool.config().scheme,
            epochs,
            // Checkpoints live with the remote workers; their storage is
            // reported client-side (`ClientReport`), not here.
            worker_storage_bytes: 0,
        })
    }

    /// Pumps until every outbox is flushed (or the deadline passes), so
    /// shutdown notices actually reach the workers.
    fn drain(&self, deadline: Duration) {
        let end = Instant::now() + deadline;
        loop {
            let parked = {
                let mut core = self.core.lock();
                let parked = core.pump_or_wait(PUMP_PARK);
                if core.outboxes_empty() {
                    return;
                }
                parked
            };
            if Instant::now() > end {
                return;
            }
            if !parked {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    /// Publishes the `net.*` counter deltas since the last call (and the
    /// epoch wall time, when one finished). Latencies land in log-bucketed
    /// histograms — never counters — so the `net.*` counter family stays in
    /// one-to-one correspondence with [`NetStats`].
    fn publish_net(&mut self, epoch_seconds: Option<f64>) {
        self.core.lock().publish_stats();
        let rec = &*self.recorder;
        if let Some(seconds) = epoch_seconds {
            rec.observe("net.epoch_ms", (seconds * 1e3) as u64);
            rec.observe_latency("net.epoch_latency", (seconds * 1e6) as u64);
        }
    }

    /// One epoch over the wire, phase-by-phase identical to the simulated
    /// [`MiningPool`] transport path: every fault draw lands in the same
    /// serialized worker-id order, so stats, clock, and quarantine
    /// decisions agree bit for bit when every link is up.
    ///
    /// The one deliberate divergence: a worker that *really* disconnects
    /// (or is shed) is quarantined without any simulated-clock charge —
    /// the simulation's dead-link deadline model (`CrashAt`/`Straggler`)
    /// has no socket analogue.
    fn run_epoch(&mut self, epoch: u64) -> EpochRecord {
        let start = Instant::now();
        let recorder = self.recorder.clone();
        // The distributed trace is keyed by the pool seed; every phase span
        // is a child of the epoch span, and outbound frames carry a context
        // whose parent is the phase that caused them (DESIGN.md §16).
        let trace_id = self.pool.config().seed;
        let (_epoch_span, epoch_sid) = recorder.child_span(
            "rpol.server.epoch",
            TraceContext {
                trace_id,
                parent_span: 0,
                watermark: 0,
            },
            &[("epoch", Value::from(epoch))],
        );
        let under_epoch = TraceContext {
            trace_id,
            parent_span: epoch_sid,
            watermark: 0,
        };
        let n = self.pool.workers.len();
        let plan = self.pool.manager.begin_epoch(n, epoch);
        let mut stats = TransportStats::default();
        let mut clock = SimClock::new();
        let mut quarantined: Vec<usize> = Vec::new();
        let mut comm = CommStats::default();
        self.core.lock().reset_epoch();

        // Commitment discipline first, on the reliable control plane: the
        // few scalars of a FamilySpec stand in for the whole projection
        // matrix (LshFamily::generate is pure).
        let scheme = self.pool.config().scheme;
        let family = match scheme {
            Scheme::RPoLv2 | Scheme::RPoLv3 => plan.calibration.as_ref().map(|c| FamilySpec {
                r: c.params.r,
                k: c.params.k as u32,
                l: c.params.l as u32,
                seed: c.family_seed,
            }),
            Scheme::Baseline | Scheme::RPoLv1 => None,
        };
        self.core.lock().broadcast_control(&NetControl::CommitSpec {
            epoch,
            scheme: scheme_code(scheme),
            family,
        });

        // Phase 1: task broadcast, serial in worker order.
        let (phase_broadcast, broadcast_sid) = recorder.child_span(
            "rpol.pool.task_broadcast",
            under_epoch,
            &[("epoch", Value::from(epoch))],
        );
        let global = self.pool.manager.global_weights().to_vec();
        let mut tasked = vec![false; n];
        #[allow(clippy::needless_range_loop)] // worker order fixes the chaos draw order
        for w in 0..n {
            let task = wire::EpochTask {
                epoch,
                nonce: plan.nonces[w],
                steps: plan.steps as u32,
                global_weights: global.clone(),
            };
            let payload = wire::encode_epoch_task(&task);
            comm.broadcast_bytes += payload.len() as u64;
            let (mut writes, outcome) = self.transport.chaos_frames(
                epoch,
                w,
                MsgKind::Task,
                0,
                &payload,
                LinkState::healthy(),
                &mut stats,
                &mut clock,
                &recorder,
            );
            // Wrap only the pristine frame (the last write of a successful
            // exchange), after the chaos draws: ghosts stay byte-identical
            // to the untraced run and fault outcomes never shift.
            if recorder.enabled() && outcome.is_ok() {
                let ctx = TraceContext {
                    trace_id,
                    parent_span: broadcast_sid,
                    watermark: recorder.now_ns(),
                };
                if let Some(last) = writes.last_mut() {
                    *last = wire::seal_frame(&wire::wrap_traced(ctx, &payload));
                }
            }
            let sent = {
                let mut core = self.core.lock();
                let sent = core.send_framed_to_worker(w, writes);
                core.pump();
                sent
            };
            if outcome.is_ok() && sent {
                tasked[w] = true;
            } else {
                quarantined.push(w);
            }
        }
        drop(phase_broadcast);

        // Phases 2+3 (worker side): training then submission upload. The
        // driver waits on the mailboxes; a flag-bounded pump job keeps
        // the reactor live on the persistent executor meanwhile.
        let (phase_training, _) = recorder.child_span(
            "rpol.pool.training",
            under_epoch,
            &[("epoch", Value::from(epoch))],
        );
        {
            let waiting = Arc::new(AtomicBool::new(true));
            {
                let core = Arc::clone(&self.core);
                let flag = Arc::clone(&waiting);
                self.exec.spawn(move || {
                    while flag.load(Ordering::Acquire) {
                        let parked = core.lock().pump_or_wait(PUMP_PARK);
                        if !parked {
                            std::thread::park_timeout(Duration::from_micros(500));
                        }
                    }
                });
            }
            let deadline = Instant::now() + self.cfg.phase_timeout;
            loop {
                let parked = {
                    let mut core = self.core.lock();
                    let parked = core.pump_or_wait(PUMP_PARK);
                    if (0..n).all(|w| !tasked[w] || core.submission_settled(w)) {
                        break;
                    }
                    parked
                };
                if Instant::now() > deadline {
                    break;
                }
                if !parked {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
            waiting.store(false, Ordering::Release);
        }
        drop(phase_training);

        // Phase 3 (manager side): drain every mailbox in ONE lock hold,
        // then account the batch serially in worker order — chaos outcomes
        // recomputed from lengths, bit-for-bit with the simulated path.
        // The per-worker lock round-trips this replaces were O(workers)
        // pump-contended acquisitions on the epoch's critical path.
        let (phase_submission, submission_sid) = recorder.child_span(
            "rpol.pool.submission",
            under_epoch,
            &[("epoch", Value::from(epoch))],
        );
        let hashes_per_group = match plan.commit_mode() {
            CommitMode::V2(f) | CommitMode::V3(f) => f.params().k,
            _ => 0,
        };
        let batch = self.core.lock().drain_submissions(&tasked);
        let (batch_span, _) = recorder.child_span(
            "rpol.server.ingest_batch",
            TraceContext {
                trace_id,
                parent_span: submission_sid,
                watermark: recorder.now_ns(),
            },
            &[
                ("epoch", Value::from(epoch)),
                (
                    "drained",
                    Value::from(batch.iter().filter(|m| m.is_some()).count() as u64),
                ),
            ],
        );
        // Spent pristine payload buffers, recycled in one re-lock below.
        let mut spent: Vec<Vec<u8>> = Vec::new();
        let mut delivered: Vec<Option<EpochSubmission>> = (0..n).map(|_| None).collect();
        for (w, mail) in batch.into_iter().enumerate() {
            if !tasked[w] {
                continue; // already quarantined at task delivery
            }
            match mail {
                Some(SubMail::Pristine(ctx, payload)) => {
                    if let Some(ctx) = ctx {
                        // Serial ingest point (worker-id order), so the
                        // cross-process causal edge lands deterministically.
                        recorder.child_event(
                            "rpol.server.ingest_submission",
                            ctx,
                            &[("epoch", Value::from(epoch)), ("worker", Value::from(w))],
                        );
                    }
                    let payload_len = payload.len();
                    let outcome = self.transport.chaos_outcome(
                        epoch,
                        w,
                        MsgKind::Submission,
                        0,
                        payload_len,
                        LinkState::healthy(),
                        &mut stats,
                        &mut clock,
                        &recorder,
                    );
                    debug_assert!(outcome.is_ok(), "pristine delivery implies chaos success");
                    let mut payload = payload;
                    let decoded = wire::decode_submission_in(&mut payload);
                    spent.push(Vec::from(payload));
                    match decoded {
                        Ok((final_weights, commitment)) => {
                            stats.bytes_saved += (wire::submission_raw_wire_size(
                                final_weights.len(),
                                commitment.as_ref(),
                            ) as u64)
                                .saturating_sub(payload_len as u64);
                            comm.submission_bytes += payload_len as u64;
                            let commit_bytes_hashed = commitment.as_ref().map_or(0, |c| {
                                c.bytes_hashed(final_weights.len(), hashes_per_group)
                            });
                            delivered[w] = Some(EpochSubmission {
                                worker_id: w,
                                final_weights,
                                commitment,
                                upload_bytes: payload_len as u64,
                                commit_bytes_hashed,
                            });
                        }
                        Err(_) => quarantined.push(w),
                    }
                }
                Some(SubMail::Gone {
                    payload_len,
                    raw_len,
                }) => {
                    stats.bytes_saved += u64::from(raw_len.saturating_sub(payload_len));
                    let outcome = self.transport.chaos_outcome(
                        epoch,
                        w,
                        MsgKind::Submission,
                        0,
                        payload_len as usize,
                        LinkState::healthy(),
                        &mut stats,
                        &mut clock,
                        &recorder,
                    );
                    debug_assert!(outcome.is_err(), "ChaosGone implies exhausted draws");
                    quarantined.push(w);
                }
                Some(SubMail::Shed) => {
                    event!(recorder, "rpol.server.shed", epoch, worker = w);
                    quarantined.push(w);
                }
                None => {
                    event!(recorder, "rpol.server.deadline_miss", epoch, worker = w);
                    quarantined.push(w);
                }
            }
        }
        drop(batch_span);
        if !spent.is_empty() {
            // One re-lock recycles every decoded payload's backing store.
            let mut core = self.core.lock();
            for buf in spent {
                core.pool.put(buf);
            }
        }
        drop(phase_submission);

        // Phase 4: verification over the survivors, openings served over
        // the socket through per-worker providers.
        // (RPoLv3's packed proof framing needs no server-side switch:
        // the client picks the encoding from the CommitSpec, and the
        // decoder dispatches on the wire tag.)
        let (phase_verification, verify_sid) = recorder.child_span(
            "rpol.pool.verification",
            under_epoch,
            &[("epoch", Value::from(epoch))],
        );
        let providers: Vec<Option<SocketProvider<'_>>> = (0..n)
            .map(|w| {
                delivered[w].as_ref().map(|_| SocketProvider {
                    transport: &self.transport,
                    core: Arc::clone(&self.core),
                    rec: recorder.clone(),
                    worker: w,
                    epoch,
                    timeout: self.cfg.phase_timeout,
                    state: Mutex::new(ProviderState::default()),
                    trace_id,
                    parent_span: verify_sid,
                })
            })
            .collect();
        let participants: Vec<Participant<'_>> = (0..n)
            .filter_map(|w| {
                let submission = delivered[w].as_ref()?;
                let provider = providers[w].as_ref()?;
                let worker = &self.pool.workers[w];
                Some(Participant {
                    id: w,
                    address: worker.address,
                    shard: worker.shard(),
                    submission,
                    provider,
                })
            })
            .collect();
        let mut report = if let Some(hierarchy) = self.pool.config().hierarchy {
            // Two-tier reduction over the socket roster: the delivered
            // participants are grouped into their rendezvous committees
            // and stream through the same sub-manager → batch → audit
            // pipeline as the in-process pool (DESIGN.md §15).
            let seed = self.pool.config().seed;
            let prepared = self
                .pool
                .manager
                .prepare_verification(&plan, n)
                .expect("hierarchy requires a verifying scheme");
            // Each committee's sub-manager round trip runs under its own
            // child span of the verification phase, so stitched timelines
            // show the two-tier structure per committee.
            self.pool.manager.ingest_partitioned(
                hierarchy,
                seed,
                n,
                &participants,
                &quarantined,
                &plan,
                &prepared,
                self.cfg.parallel_verify,
                comm,
                |c, members| {
                    let (committee_span, _) = recorder.child_span(
                        "rpol.server.committee",
                        TraceContext {
                            trace_id,
                            parent_span: verify_sid,
                            watermark: 0,
                        },
                        &[
                            ("epoch", Value::from(epoch)),
                            ("committee", Value::from(c)),
                            ("members", Value::from(members)),
                        ],
                    );
                    committee_span
                },
            )
        } else {
            self.pool.manager.finish_epoch_partial(
                &plan,
                n,
                &participants,
                &quarantined,
                comm,
                self.cfg.parallel_verify,
            )
        };
        drop(participants);
        // Merge proof-channel traffic in worker-id order: deterministic
        // regardless of verification scheduling.
        for provider in providers.into_iter().flatten() {
            let state = provider.state.into_inner();
            stats.merge(&state.stats);
            clock.merge(&state.clock);
        }
        report.transport = stats;
        drop(phase_verification);

        // Verdicts back to the workers on the control plane.
        {
            let mut core = self.core.lock();
            for w in 0..n {
                let status: u8 = if report.accepted.contains(&w) {
                    0
                } else if report.rejected.contains(&w) {
                    1
                } else {
                    2
                };
                core.send_control_to_worker(w, &NetControl::EpochEnd { epoch, status });
            }
            core.pump();
        }

        EpochRecord {
            report,
            test_accuracy: self.pool.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: clock,
        }
    }
}

/// Everything [`run_socket_pool`] needs beyond the pool config.
#[derive(Clone, Default)]
pub struct SocketRunOptions {
    /// Service limits and deadlines.
    pub server: ServerConfig,
    /// Worker-client timeouts and reconnect policy.
    pub client: crate::client::ClientTuning,
    /// Observability recorder for the server-side pool.
    pub recorder: Option<Arc<Recorder>>,
    /// Per-worker client recorders, indexed by worker id; missing entries
    /// default to the shared no-op recorder. Tests keep `Arc` clones so
    /// the per-process traces can be stitched after the run.
    pub client_recorders: Vec<Arc<Recorder>>,
}

/// What a loopback socket run produced.
pub struct SocketRunOutcome {
    /// The server's epoch records (same shape as the simulated path's).
    pub report: PoolReport,
    /// Final socket-layer counters.
    pub net: NetStats,
    /// Per-worker client outcomes, in worker-id order.
    pub clients: Vec<crate::client::ClientReport>,
}

/// End-to-end loopback harness: binds a [`PoolServer`] on an OS-assigned
/// port, spawns one [`WorkerClient`] thread per behaviour, runs every
/// epoch over TCP, and joins the clients.
///
/// Both sides build an identical [`MiningPool`] from the shared config
/// seed, so data sharding and training match the in-process pool bit for
/// bit; the clients then take the workers and the server keeps the
/// manager (plus worker replicas for their shard handles).
///
/// # Errors
///
/// Returns any bind error, or `TimedOut` when the roster never connects.
///
/// [`WorkerClient`]: crate::client::WorkerClient
pub fn run_socket_pool(
    config: PoolConfig,
    behaviors: Vec<WorkerBehavior>,
    options: SocketRunOptions,
) -> io::Result<SocketRunOutcome> {
    let mut pool = MiningPool::new(config, behaviors.clone());
    if let Some(rec) = options.recorder {
        pool = pool.with_recorder(rec);
    }
    let mut server = PoolServer::bind(pool, &BindAddr::loopback(), options.server)?;
    let addr = server.local_addr();
    let handles: Vec<std::thread::JoinHandle<crate::client::ClientReport>> =
        MiningPool::new(config, behaviors)
            .into_workers()
            .into_iter()
            .enumerate()
            .map(|(i, worker)| {
                let addr = addr.clone();
                let tuning = options.client.clone();
                let rec = options.client_recorders.get(i).cloned();
                std::thread::spawn(move || {
                    let mut client = crate::client::WorkerClient::new(config, worker, addr, tuning);
                    if let Some(rec) = rec {
                        client = client.with_recorder(rec);
                    }
                    client.run()
                })
            })
            .collect();
    let report = server.run()?;
    let net = server.net_stats();
    let clients = handles
        .into_iter()
        .map(|h| h.join().expect("worker client thread panicked"))
        .collect();
    Ok(SocketRunOutcome {
        report,
        net,
        clients,
    })
}
