//! The pool manager: epoch orchestration, secure sampling, verification,
//! aggregation, and reward crediting (§III-A, §V).

use crate::calibrate::{CalibrationPolicy, CalibrationResult, Calibrator};
use crate::pool::Scheme;
use crate::tasks::TaskConfig;
use crate::trainer::epoch_segments;
use crate::transport::TransportStats;
use crate::verify::{ProofProvider, SampleVerdict, Verifier, WorkerVerdict};
use crate::worker::{CommitMode, PoolWorker};
use rpol_chain::rewards::ContributionLedger;
use rpol_crypto::Address;
use rpol_exec::Executor;
use rpol_lsh::LshFamily;
use rpol_nn::data::SyntheticImages;
use rpol_nn::model::Sequential;
use rpol_obs::{event, span, Recorder};
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::scratch::ScratchArena;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A pooled verification replay state: a scratch model sharing the global
/// geometry plus the weight-sized staging arena its replay trainers use.
pub(crate) type ReplayState = (Sequential, ScratchArena);

/// Fixed-point scale of the order-invariant aggregation accumulator:
/// per-weight deltas are quantized to multiples of 2⁻²⁴ and summed as
/// `i64`, making the fold associative and commutative. Headroom: |delta|
/// ≤ 2¹⁵ gives 2³⁹ per worker, ~2⁵⁹ at 10⁶ workers — no overflow.
const AGG_SCALE: f64 = (1u64 << 24) as f64;

/// Per-epoch communication accounting (bytes over the star topology).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Manager → workers: global model broadcast.
    pub broadcast_bytes: u64,
    /// Workers → manager: final weights + commitments.
    pub submission_bytes: u64,
    /// Workers → manager: sampled proof openings (incl. double-checks).
    pub proof_bytes: u64,
}

impl CommStats {
    /// Total bytes moved this epoch.
    pub fn total(&self) -> u64 {
        self.broadcast_bytes + self.submission_bytes + self.proof_bytes
    }
}

/// Per-epoch accounting of the two-tier committee hierarchy. `None` on
/// flat runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// Committees the roster was rendezvous-partitioned into.
    pub committees: usize,
    /// Member verdicts Merkle-committed across all committee batches.
    pub verdicts: u64,
    /// Verdicts the top manager spot-audited (inclusion proof + re-replay).
    pub audits: u64,
    /// Audits whose re-replayed verdict disagreed with the committed leaf
    /// (always zero with an honest sub-manager — the committees here run
    /// in-process — but counted because the top tier's soundness bound in
    /// DESIGN.md §15 is defined over exactly this event).
    pub audit_mismatches: u64,
    /// Training steps the top manager re-executed for audits (charged here,
    /// not to [`EpochReport::replayed_steps`], so flat and hierarchical
    /// runs agree on the tier-1 verification accounting).
    pub audit_replayed_steps: u64,
    /// Proof bytes the audits re-fetched (charged here, not to
    /// [`EpochReport::comm`], for the same reason).
    pub audit_proof_bytes: u64,
    /// Wire bytes of the framed committee verdict batches.
    pub batch_bytes: u64,
}

/// In-flight state of one hierarchical epoch reduction: everything the
/// top manager retains **between** committees. Deliberately O(pool size)
/// in verdict ids only — never in submissions or commitments, which
/// belong to exactly one committee at a time.
pub(crate) struct HierarchicalIngest {
    hierarchy: crate::committee::Hierarchy,
    /// Order-invariant fixed-point aggregation accumulator.
    acc: Vec<i64>,
    accepted: Vec<usize>,
    rejected: Vec<usize>,
    quarantined: Vec<usize>,
    verdicts: Vec<(usize, WorkerVerdict)>,
    double_checks: usize,
    replayed_steps: u64,
    /// Proof bytes folded into [`CommStats`] at finish (kept separate so
    /// committees never mutate the caller's comm accounting mid-epoch).
    proof_bytes: u64,
    commit_bytes_hashed: u64,
    peak_commit_bytes: u64,
    report: HierarchyReport,
}

/// What happened in one epoch of pooled training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// Worker ids whose submissions were aggregated.
    pub accepted: Vec<usize>,
    /// Worker ids whose submissions were rejected by verification.
    pub rejected: Vec<usize>,
    /// Worker ids excluded for the epoch by **transport** failure (crash,
    /// exhausted retries, missed deadline) — uncredited but never flagged
    /// as cheaters. Always empty without a fault-injecting transport.
    pub quarantined: Vec<usize>,
    /// Transport-layer counters for the epoch (all zero without a
    /// fault-injecting transport).
    pub transport: TransportStats,
    /// Raw-weight double-checks triggered (RPoLv2 false-negative rescues).
    pub double_checks: usize,
    /// Training steps the manager re-executed for verification.
    pub replayed_steps: u64,
    /// Checkpoint bytes hashed into commitments this epoch, summed over
    /// delivered submissions (the §VII-E hashing cost RPoLv3's quantized
    /// digests halve). Deterministic given model size and scheme, so the
    /// worker-side and manager-side accounting always agree.
    pub commit_bytes_hashed: u64,
    /// Peak commitment bytes resident at once. A flat epoch materializes
    /// every delivered submission before verifying, so this equals
    /// [`EpochReport::commit_bytes_hashed`]; a hierarchical epoch streams
    /// committee-by-committee and peaks at the largest committee's share.
    pub peak_commit_bytes: u64,
    /// Two-tier committee accounting (`None` on flat runs).
    pub hierarchy: Option<HierarchyReport>,
    /// Bytes moved.
    pub comm: CommStats,
    /// The epoch's calibration (RPoLv2 every epoch; RPoLv1 first epoch).
    pub calibration: Option<CalibrationResult>,
    /// Per-worker verification verdicts (empty for the baseline scheme).
    pub verdicts: Vec<(usize, WorkerVerdict)>,
}

/// The frozen outputs of [`PoolManager::begin_epoch`]: everything workers
/// need to train this epoch, fixed before any submission arrives.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Epoch number.
    pub epoch: u64,
    /// Steps each worker must train.
    pub steps: usize,
    scheme: Scheme,
    /// Per-worker nonces `N_t^w`.
    pub nonces: Vec<u64>,
    /// This epoch's calibration, when one ran.
    pub calibration: Option<CalibrationResult>,
    family: Option<LshFamily>,
}

impl EpochPlan {
    /// The commitment mode workers must use this epoch.
    pub fn commit_mode(&self) -> CommitMode<'_> {
        match (self.scheme, &self.family) {
            (Scheme::Baseline, _) => CommitMode::Skip,
            (Scheme::RPoLv1, _) => CommitMode::V1,
            (Scheme::RPoLv2, Some(f)) => CommitMode::V2(f),
            (Scheme::RPoLv3, Some(f)) => CommitMode::V3(f),
            (Scheme::RPoLv2 | Scheme::RPoLv3, None) => {
                unreachable!("v2/v3 always have a family")
            }
        }
    }
}

/// One worker's sampling decision plus the verifier's noise seed, drawn
/// serially so parallel verification stays deterministic.
#[derive(Debug, Clone)]
pub struct VerificationAssignment {
    /// Sampled checkpoint indices.
    pub samples: Vec<usize>,
    /// Seed of the manager-side replay noise.
    pub noise_seed: u64,
}

/// The serially-drawn inputs of one epoch's verification phase: the
/// checkpoint segment table plus every worker's sampling decision and
/// noise seed, indexed by worker id.
///
/// Training never touches the manager's RNG, so drawing this eagerly —
/// right after [`PoolManager::begin_epoch`] — consumes the exact same RNG
/// stream as drawing it after training. That equivalence is what lets the
/// overlapped pool runtime start verifying a worker's sampled checkpoints
/// the moment its submission lands, while other workers are still
/// training. The baseline scheme never draws sampling state, so
/// [`PoolManager::prepare_verification`] returns `None` for it on every
/// path.
#[derive(Debug, Clone)]
pub struct PreparedVerification {
    pub(crate) segments: Vec<crate::trainer::Segment>,
    pub(crate) assignments: Vec<VerificationAssignment>,
}

impl PreparedVerification {
    /// Number of sampled checkpoints assigned to `worker`.
    pub fn sample_count(&self, worker: usize) -> usize {
        self.assignments[worker].samples.len()
    }
}

/// One worker whose submission actually reached the manager this epoch,
/// with whatever channel serves its checkpoint openings: the worker itself
/// (in-process pools) or a fault-injecting transport endpoint. Workers
/// quarantined before verification simply have no participant.
#[derive(Clone, Copy)]
pub struct Participant<'a> {
    /// The worker's pool index.
    pub id: usize,
    /// The worker's reward address.
    pub address: Address,
    /// The worker's data shard (the manager holds a copy).
    pub shard: &'a SyntheticImages,
    /// The delivered submission.
    pub submission: &'a crate::worker::EpochSubmission,
    /// Serves checkpoint openings; may fail over a faulty transport.
    pub provider: &'a (dyn ProofProvider + Sync),
}

/// The pool manager (assumed honest inside the pool, §III-B).
pub struct PoolManager {
    /// The manager's blockchain address — encoded into the model.
    pub address: Address,
    config: TaskConfig,
    scheme: Scheme,
    global: Vec<f32>,
    manager_shard: SyntheticImages,
    q_samples: usize,
    steps_per_epoch: usize,
    policy: CalibrationPolicy,
    verifier_gpu: GpuModel,
    calibration_gpus: (GpuModel, GpuModel),
    rng: Pcg32,
    /// β cached from the first calibration, reused by RPoLv1.
    cached_beta: Option<f32>,
    contributions: ContributionLedger,
    /// Observability handle shared with the pool (defaults to no-op).
    recorder: Arc<Recorder>,
    /// Persistent executor for parallel verification and calibration
    /// fan-out. `None` on serial pools — the serial path never constructs
    /// a thread pool.
    executor: Option<Arc<Executor>>,
    /// Pooled replay states, checked out per verification task and
    /// returned afterwards, so steady-state verification stops allocating
    /// scratch models and weight-sized staging buffers.
    replay_pool: parking_lot::Mutex<Vec<ReplayState>>,
}

impl PoolManager {
    /// Creates a manager with a fresh address-encoded global model.
    ///
    /// `manager_shard` is the (n+1)-th i.i.d. shard the manager keeps for
    /// adaptive calibration (§V-C).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: TaskConfig,
        scheme: Scheme,
        address: Address,
        manager_shard: SyntheticImages,
        q_samples: usize,
        steps_per_epoch: usize,
        seed: u64,
    ) -> Self {
        assert!(q_samples > 0, "need at least one sample per worker");
        assert!(steps_per_epoch > 0, "empty epochs");
        let global = config.build_encoded_model(&address).flatten_params();
        Self {
            address,
            config,
            scheme,
            global,
            manager_shard,
            q_samples,
            steps_per_epoch,
            policy: CalibrationPolicy::default(),
            verifier_gpu: GpuModel::G3090,
            calibration_gpus: GpuModel::top2(),
            rng: Pcg32::seed_from(seed ^ 0x4D47_5200),
            cached_beta: None,
            contributions: ContributionLedger::new(),
            recorder: rpol_obs::noop().clone(),
            executor: None,
            replay_pool: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Attaches an observability recorder (sampling events, verification
    /// spans). Normally called through `MiningPool::with_recorder`.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.recorder = rec;
    }

    /// Sets the GPU pair used for calibration runs. §V-C: the manager
    /// picks the top-2 best-performant GPUs *from the pool workers'
    /// registration information* to measure near-worst-case errors.
    pub fn set_calibration_gpus(&mut self, gpus: (GpuModel, GpuModel)) {
        self.calibration_gpus = gpus;
    }

    /// Attaches a persistent executor: parallel verification and
    /// calibration fan out onto its long-lived workers instead of
    /// spawning scoped threads per epoch. Serial pools never call this.
    pub fn set_executor(&mut self, exec: Arc<Executor>) {
        self.executor = Some(exec);
    }

    /// The attached executor, if any.
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        self.executor.as_ref()
    }

    /// Checks a replay state out of the pool, building a fresh one on a
    /// miss. States recycle across epochs and samples: replay overwrites
    /// every parameter via `load_params` and the arena only lends
    /// capacity, so a reused state is bitwise-equivalent to a fresh one.
    pub(crate) fn checkout_replay_state(&self) -> ReplayState {
        let pooled = self.replay_pool.lock().pop();
        if self.recorder.enabled() {
            self.recorder.counter_add(
                if pooled.is_some() {
                    "rpol.verify.replay_pool_hits"
                } else {
                    "rpol.verify.replay_pool_misses"
                },
                1,
            );
        }
        pooled.unwrap_or_else(|| (self.scratch_model(), ScratchArena::new()))
    }

    /// Returns a replay state to the pool for reuse.
    pub(crate) fn checkin_replay_state(&self, state: ReplayState) {
        self.replay_pool.lock().push(state);
    }

    /// The current global model weights.
    pub fn global_weights(&self) -> &[f32] {
        &self.global
    }

    /// The task configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.config
    }

    /// The verification scheme in force.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Verified contributions accumulated so far (drives reward splits).
    pub fn contributions(&self) -> &ContributionLedger {
        &self.contributions
    }

    /// Runs one full epoch of the pool protocol over `workers` and
    /// advances the global model.
    ///
    /// Equivalent to [`PoolManager::begin_epoch`], collecting every
    /// worker's submission serially, then [`PoolManager::finish_epoch`].
    /// The parallel pool runtime uses the two-phase API directly.
    pub fn run_epoch(&mut self, workers: &mut [PoolWorker], epoch: u64) -> EpochReport {
        assert!(!workers.is_empty(), "pool has no workers");
        let plan = self.begin_epoch(workers.len(), epoch);
        let recorder = self.recorder.clone();
        let submissions: Vec<_> = workers
            .iter_mut()
            .enumerate()
            .map(|(w, worker)| {
                let _g = span!(
                    recorder,
                    "rpol.worker.train_epoch",
                    epoch,
                    worker = w,
                    steps = plan.steps
                );
                worker.run_epoch(
                    &self.config,
                    &self.global,
                    plan.nonces[w],
                    plan.steps,
                    epoch,
                    plan.commit_mode(),
                )
            })
            .collect();
        self.finish_epoch(workers, &plan, &submissions)
    }

    /// Phase 1 of an epoch: calibrate (per scheme policy) and fix the
    /// per-worker nonces and the commitment mode. After this, workers can
    /// train **concurrently** — nothing in the plan changes until
    /// [`PoolManager::finish_epoch`].
    pub fn begin_epoch(&mut self, n_workers: usize, epoch: u64) -> EpochPlan {
        assert!(n_workers > 0, "pool has no workers");
        // Adaptive calibration: every epoch for v2, once for v1.
        let calibration = match self.scheme {
            Scheme::Baseline => None,
            Scheme::RPoLv1 => {
                if self.cached_beta.is_none() {
                    let cal = self.calibrate(epoch);
                    self.cached_beta = Some(cal.beta);
                    Some(cal)
                } else {
                    None
                }
            }
            Scheme::RPoLv2 | Scheme::RPoLv3 => {
                let cal = self.calibrate(epoch);
                self.cached_beta = Some(cal.beta);
                Some(cal)
            }
        };
        let family: Option<LshFamily> = match self.scheme {
            Scheme::RPoLv2 | Scheme::RPoLv3 => {
                let cal = calibration.expect("v2/v3 calibrate every epoch");
                Some(cal.family(self.global.len()))
            }
            _ => None,
        };
        // Per-worker nonces for stochastic-yet-deterministic selection.
        let nonces: Vec<u64> = (0..n_workers).map(|_| self.rng.next_u64()).collect();
        EpochPlan {
            epoch,
            steps: self.steps_per_epoch,
            scheme: self.scheme,
            nonces,
            calibration,
            family,
        }
    }

    /// Phase 2 of an epoch: reveal sampling decisions, verify every
    /// submission, aggregate the accepted updates (Eq. 1) and credit
    /// contributions.
    ///
    /// # Panics
    ///
    /// Panics if `submissions` does not align with `workers`.
    pub fn finish_epoch(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
    ) -> EpochReport {
        self.finish_epoch_workers(workers, plan, submissions, false)
    }

    /// Like [`PoolManager::finish_epoch`], but verifies workers on
    /// parallel threads (the paper's future-work "decentralized
    /// verification" runs the same fan-out across worker nodes). Sampling
    /// decisions and noise seeds are drawn serially first, so the result
    /// is identical to the serial path.
    pub fn finish_epoch_parallel(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
    ) -> EpochReport {
        self.finish_epoch_workers(workers, plan, submissions, true)
    }

    /// Shared delegate for the in-process (fault-free) epoch finish: every
    /// worker participates, openings are served locally and never fail.
    fn finish_epoch_workers(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
        parallel: bool,
    ) -> EpochReport {
        let n = workers.len();
        assert_eq!(submissions.len(), n, "one submission per worker");
        let participants: Vec<Participant<'_>> = workers
            .iter()
            .map(|worker| Participant {
                id: worker.id,
                address: worker.address,
                shard: worker.shard(),
                submission: &submissions[worker.id],
                provider: worker,
            })
            .collect();
        let model_bytes = (self.global.len() * 4) as u64;
        let mut comm = CommStats {
            broadcast_bytes: model_bytes * n as u64,
            ..CommStats::default()
        };
        for sub in submissions {
            comm.submission_bytes += sub.upload_bytes;
        }
        self.finish_epoch_partial(plan, n, &participants, &[], comm, parallel)
    }

    /// Phase 2 of an epoch under possible transport faults: verify the
    /// submissions that *arrived*, aggregate the accepted updates (Eq. 1)
    /// and credit contributions. Workers whose submissions never made it
    /// are passed in `quarantined_before`; workers whose proof channel
    /// dies mid-verification join them. `comm` carries the broadcast and
    /// submission byte counts the caller already accounted.
    ///
    /// Sampling decisions and noise seeds are drawn for **all**
    /// `n_workers` — quarantined ones included — so the manager's RNG
    /// schedule is independent of which links happened to fail.
    ///
    /// # Panics
    ///
    /// Panics if a participant id is out of `0..n_workers`.
    pub fn finish_epoch_partial(
        &mut self,
        plan: &EpochPlan,
        n_workers: usize,
        participants: &[Participant<'_>],
        quarantined_before: &[usize],
        comm: CommStats,
        parallel: bool,
    ) -> EpochReport {
        assert!(
            participants.iter().all(|p| p.id < n_workers),
            "participant id out of range"
        );
        let prepared = self.prepare_verification(plan, n_workers);
        let verdict_list = prepared
            .as_ref()
            .map(|prepared| self.verify_committee(participants, plan, prepared, parallel));
        self.reduce_epoch(plan, participants, quarantined_before, comm, verdict_list)
    }

    /// Verifies a group of participants — a whole flat roster or one
    /// committee's members — against an already-prepared verification
    /// schedule, returning one verdict per participant in order. Shared by
    /// the flat finish path and the hierarchical sub-managers: the verdict
    /// for a worker depends only on its own assignment, so partitioning
    /// the roster into committees cannot change any verdict.
    pub(crate) fn verify_committee(
        &self,
        participants: &[Participant<'_>],
        plan: &EpochPlan,
        prepared: &PreparedVerification,
        parallel: bool,
    ) -> Vec<WorkerVerdict> {
        if parallel {
            self.verify_participants_parallel(participants, plan, prepared)
        } else {
            let (mut scratch, mut arena) = self.checkout_replay_state();
            let verdicts = participants
                .iter()
                .map(|part| {
                    self.verify_one(
                        &mut scratch,
                        &mut arena,
                        part,
                        plan,
                        &prepared.segments,
                        &prepared.assignments[part.id],
                    )
                })
                .collect();
            self.checkin_replay_state((scratch, arena));
            verdicts
        }
    }

    /// Re-verifies one participant from scratch — the top manager's audit
    /// replay. Identical numerics to the sub-manager's verification (same
    /// assignment, nonce, noise seed, pooled replay states), so an honest
    /// committee's audited verdict always matches bit for bit; the audit's
    /// replay and proof costs are charged to [`HierarchyReport`], never to
    /// the tier-1 epoch accounting.
    pub(crate) fn audit_one(
        &self,
        part: &Participant<'_>,
        plan: &EpochPlan,
        prepared: &PreparedVerification,
    ) -> WorkerVerdict {
        let (mut scratch, mut arena) = self.checkout_replay_state();
        let verdict = self.verify_one(
            &mut scratch,
            &mut arena,
            part,
            plan,
            &prepared.segments,
            &prepared.assignments[part.id],
        );
        self.checkin_replay_state((scratch, arena));
        verdict
    }

    /// Starts a hierarchical epoch reduction (DESIGN.md §15): committees
    /// stream through [`PoolManager::ingest_committee`] one at a time, and
    /// [`PoolManager::ingest_finish`] closes the epoch. Shared by the
    /// in-process streaming pool and the socket server so the two-tier
    /// accept/reject rule exists in exactly one place.
    pub(crate) fn ingest_begin(
        &self,
        hierarchy: crate::committee::Hierarchy,
        quarantined_before: &[usize],
    ) -> HierarchicalIngest {
        HierarchicalIngest {
            hierarchy,
            acc: self.agg_begin(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            quarantined: quarantined_before.to_vec(),
            verdicts: Vec::new(),
            double_checks: 0,
            replayed_steps: 0,
            proof_bytes: 0,
            commit_bytes_hashed: 0,
            peak_commit_bytes: 0,
            report: HierarchyReport {
                committees: hierarchy.committees,
                ..HierarchyReport::default()
            },
        }
    }

    /// One committee's full sub-manager → top-manager round trip:
    ///
    /// 1. **Sub-manager**: sampled-replay verification over the
    ///    committee's delivered participants, verdicts Merkle-committed
    ///    into a [`CommitteeBatch`](crate::committee::CommitteeBatch).
    /// 2. **Wire**: the batch is encoded, framed, and decoded back — the
    ///    byte accounting and codec are the real thing, not a model.
    /// 3. **Top manager**: root-consistency check (anything else is
    ///    sub-manager equivocation), then `q_top` spot-audits — Merkle
    ///    inclusion proof plus a full re-replay of the audited worker —
    ///    with audit costs charged to the [`HierarchyReport`] only.
    /// 4. **Classification**: accept/reject/quarantine per the delivered
    ///    verdicts, accepted updates folded into the order-invariant
    ///    fixed-point accumulator so the caller can drop the committee's
    ///    submissions before the next committee runs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest_committee(
        &mut self,
        ingest: &mut HierarchicalIngest,
        seed: u64,
        committee: usize,
        participants: &[Participant<'_>],
        plan: &EpochPlan,
        prepared: &PreparedVerification,
        parallel: bool,
    ) {
        use crate::committee::{audit_indices, CommitteeBatch};
        if participants.is_empty() {
            return;
        }
        let verdict_list = self.verify_committee(participants, plan, prepared, parallel);
        let committee_commit_bytes: u64 = participants
            .iter()
            .map(|p| p.submission.commit_bytes_hashed)
            .sum();
        let batch = CommitteeBatch::from_verdicts(
            plan.epoch,
            committee,
            participants
                .iter()
                .map(|p| p.id)
                .zip(verdict_list)
                .collect(),
            committee_commit_bytes,
        );
        let payload = crate::wire::encode_committee_batch(&batch);
        ingest.report.batch_bytes += crate::wire::seal_frame(&payload).len() as u64;
        let delivered = crate::wire::decode_committee_batch(payload)
            .expect("self-encoded committee batch decodes");
        assert!(
            delivered.root_consistent(),
            "committee batch equivocation: root does not cover the shipped verdicts"
        );
        for &i in &audit_indices(
            seed,
            plan.epoch,
            committee,
            ingest.hierarchy.q_top,
            delivered.verdicts.len(),
        ) {
            let (w, committed) = &delivered.verdicts[i];
            let proof = delivered.prove(i);
            assert!(
                delivered.verify_inclusion(&proof, *w, committed),
                "audited verdict failed its inclusion proof"
            );
            let replayed = self.audit_one(&participants[i], plan, prepared);
            ingest.report.audits += 1;
            ingest.report.audit_replayed_steps += replayed.replayed_steps;
            ingest.report.audit_proof_bytes += replayed.proof_bytes;
            if replayed != *committed {
                ingest.report.audit_mismatches += 1;
                event!(
                    self.recorder,
                    "rpol.committee.audit_mismatch",
                    epoch = plan.epoch,
                    committee,
                    worker = *w
                );
            }
        }
        ingest.report.verdicts += delivered.verdicts.len() as u64;
        for ((w, verdict), part) in delivered.verdicts.into_iter().zip(participants) {
            debug_assert_eq!(w, part.id, "batch order matches participant order");
            ingest.proof_bytes += verdict.proof_bytes;
            ingest.double_checks += verdict.double_checks();
            ingest.replayed_steps += verdict.replayed_steps;
            if verdict.transport_failed() {
                ingest.quarantined.push(w);
            } else if verdict.all_accepted() {
                ingest.accepted.push(w);
                self.agg_accumulate(&mut ingest.acc, &part.submission.final_weights);
                self.credit(part.address);
            } else {
                ingest.rejected.push(w);
            }
            ingest.verdicts.push((w, verdict));
        }
        ingest.commit_bytes_hashed += committee_commit_bytes;
        ingest.peak_commit_bytes = ingest.peak_commit_bytes.max(committee_commit_bytes);
    }

    /// Closes a hierarchical epoch: canonical worker-id ordering (the
    /// flat reduce walks participants in id order, so sorting restores
    /// the identical layout), one renormalized aggregation step, and the
    /// assembled [`EpochReport`].
    pub(crate) fn ingest_finish(
        &mut self,
        mut ingest: HierarchicalIngest,
        plan: &EpochPlan,
        mut comm: CommStats,
    ) -> EpochReport {
        ingest.accepted.sort_unstable();
        ingest.rejected.sort_unstable();
        ingest.quarantined.sort_unstable();
        ingest.verdicts.sort_by_key(|&(w, _)| w);
        self.agg_finalize(&ingest.acc, ingest.accepted.len());
        comm.proof_bytes += ingest.proof_bytes;
        EpochReport {
            epoch: plan.epoch,
            accepted: ingest.accepted,
            rejected: ingest.rejected,
            quarantined: ingest.quarantined,
            transport: TransportStats::default(),
            double_checks: ingest.double_checks,
            replayed_steps: ingest.replayed_steps,
            commit_bytes_hashed: ingest.commit_bytes_hashed,
            peak_commit_bytes: ingest.peak_commit_bytes,
            hierarchy: Some(ingest.report),
            comm,
            calibration: plan.calibration,
            verdicts: ingest.verdicts,
        }
    }

    /// Runs a whole two-tier reduction over one batch of delivered
    /// participants: rendezvous-partition them into committees, stream
    /// each committee through [`Self::ingest_committee`], and close the
    /// epoch with [`Self::ingest_finish`].
    ///
    /// `enter_committee(c, present)` runs once per committee — including
    /// empty ones, whose ingest is a no-op — and its return value is held
    /// for that committee's duration, so callers can hang per-committee
    /// trace spans (or any other scope guard) off the reduction without
    /// owning its loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest_partitioned<G>(
        &mut self,
        hierarchy: crate::committee::Hierarchy,
        seed: u64,
        n_workers: usize,
        participants: &[Participant<'_>],
        quarantined: &[usize],
        plan: &EpochPlan,
        prepared: &PreparedVerification,
        parallel: bool,
        comm: CommStats,
        mut enter_committee: impl FnMut(usize, usize) -> G,
    ) -> EpochReport {
        let mut ingest = self.ingest_begin(hierarchy, quarantined);
        let grouped =
            crate::committee::select_present(seed, n_workers, hierarchy.committees, participants);
        for (c, present) in grouped.iter().enumerate() {
            let _guard = enter_committee(c, present.len());
            self.ingest_committee(&mut ingest, seed, c, present, plan, prepared, parallel);
        }
        self.ingest_finish(ingest, plan, comm)
    }

    /// Draws the epoch's verification schedule: the segment table plus
    /// per-worker sample indices and noise seeds. Returns `None` for the
    /// baseline scheme, which never draws sampling state. Sampling
    /// decisions are drawn serially for **all** `n_workers` (quarantined
    /// included), so the `rpol.manager.sample` events land in worker
    /// order on every code path.
    pub(crate) fn prepare_verification(
        &mut self,
        plan: &EpochPlan,
        n_workers: usize,
    ) -> Option<PreparedVerification> {
        if matches!(self.scheme, Scheme::Baseline) {
            return None;
        }
        let segments = epoch_segments(plan.steps, self.config.checkpoint_interval);
        let assignments = self.verification_assignments(n_workers, segments.len());
        if self.recorder.enabled() {
            for (w, assignment) in assignments.iter().enumerate() {
                event!(
                    self.recorder,
                    "rpol.manager.sample",
                    epoch = plan.epoch,
                    worker = w,
                    samples = assignment.samples.len()
                );
            }
        }
        Some(PreparedVerification {
            segments,
            assignments,
        })
    }

    /// Worker-granular parallel verification: one task per participant,
    /// on the persistent executor when one is attached (scoped threads
    /// otherwise). Kept worker-granular — rather than per-sample — on the
    /// transport path because a faulty provider's fault draws are keyed
    /// by its own request sequence, which must advance in sample order.
    fn verify_participants_parallel(
        &self,
        participants: &[Participant<'_>],
        plan: &EpochPlan,
        prepared: &PreparedVerification,
    ) -> Vec<WorkerVerdict> {
        let verify = |i: usize| {
            let part = &participants[i];
            let (mut scratch, mut arena) = self.checkout_replay_state();
            let verdict = self.verify_one(
                &mut scratch,
                &mut arena,
                part,
                plan,
                &prepared.segments,
                &prepared.assignments[part.id],
            );
            self.checkin_replay_state((scratch, arena));
            verdict
        };
        if let Some(exec) = &self.executor {
            exec.run_indexed(participants.len(), verify)
        } else {
            let slots: parking_lot::Mutex<Vec<Option<WorkerVerdict>>> =
                parking_lot::Mutex::new((0..participants.len()).map(|_| None).collect());
            crossbeam::thread::scope(|scope| {
                for i in 0..participants.len() {
                    let verify = &verify;
                    let slots = &slots;
                    scope.spawn(move |_| {
                        slots.lock()[i] = Some(verify(i));
                    });
                }
            })
            .expect("verification thread panicked");
            slots
                .into_inner()
                .into_iter()
                .map(|s| s.expect("every participant verified"))
                .collect()
        }
    }

    /// The serial tail of an epoch: merge per-worker verdicts in
    /// participant order, aggregate the accepted updates (Eq. 1) and
    /// credit contributions. `verdict_list` is `None` for the baseline
    /// scheme (every delivered submission is aggregated) and otherwise
    /// holds one verdict per participant, in participant order.
    pub(crate) fn reduce_epoch(
        &mut self,
        plan: &EpochPlan,
        participants: &[Participant<'_>],
        quarantined_before: &[usize],
        mut comm: CommStats,
        verdict_list: Option<Vec<WorkerVerdict>>,
    ) -> EpochReport {
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();
        let mut quarantined: Vec<usize> = quarantined_before.to_vec();
        let mut double_checks = 0;
        let mut replayed_steps = 0;
        let mut verdicts = Vec::new();
        match verdict_list {
            // No verification: every delivered submission is aggregated.
            None => accepted.extend(participants.iter().map(|p| p.id)),
            Some(list) => {
                assert_eq!(
                    list.len(),
                    participants.len(),
                    "one verdict per participant"
                );
                for (part, verdict) in participants.iter().zip(list) {
                    comm.proof_bytes += verdict.proof_bytes;
                    double_checks += verdict.double_checks();
                    replayed_steps += verdict.replayed_steps;
                    if verdict.transport_failed() {
                        // Openings stopped arriving: a dead or exhausted
                        // link, not evidence of cheating.
                        quarantined.push(part.id);
                    } else if verdict.all_accepted() {
                        accepted.push(part.id);
                    } else {
                        rejected.push(part.id);
                    }
                    verdicts.push((part.id, verdict));
                }
            }
        }
        quarantined.sort_unstable();
        let commit_bytes_hashed = participants
            .iter()
            .map(|p| p.submission.commit_bytes_hashed)
            .sum();

        self.aggregate_and_credit(participants, &accepted);
        EpochReport {
            epoch: plan.epoch,
            accepted,
            rejected,
            quarantined,
            transport: TransportStats::default(),
            double_checks,
            replayed_steps,
            commit_bytes_hashed,
            // Flat epochs hold every delivered commitment at once.
            peak_commit_bytes: commit_bytes_hashed,
            hierarchy: None,
            comm,
            calibration: plan.calibration,
            verdicts,
        }
    }

    /// Verifies a single sampled checkpoint of one participant — the
    /// segment-granular unit the overlapped pool runtime schedules as an
    /// executor task the moment the worker's submission lands. Per-sample
    /// verdicts merged in index order via [`WorkerVerdict::from_samples`]
    /// are bitwise-identical to the batch [`Verifier::verify_samples`]
    /// path: the verifier clones its pristine injector per sample either
    /// way, and replay fully overwrites the pooled scratch model.
    pub(crate) fn verify_prepared_sample(
        &self,
        part: &Participant<'_>,
        plan: &EpochPlan,
        prepared: &PreparedVerification,
        sample_pos: usize,
    ) -> SampleVerdict {
        let assignment = &prepared.assignments[part.id];
        let beta = self.cached_beta.expect("calibrated");
        let commitment = part
            .submission
            .commitment
            .as_ref()
            .expect("verified schemes commit");
        let (mut scratch, arena) = self.checkout_replay_state();
        let mut verifier = Verifier::with_arena(
            &self.config,
            part.shard,
            plan.nonces[part.id],
            beta,
            plan.family.as_ref(),
            NoiseInjector::new(self.verifier_gpu, assignment.noise_seed),
            arena,
        )
        .with_recorder(&self.recorder);
        let verdict = verifier.verify_sample(
            &mut scratch,
            commitment,
            &prepared.segments,
            assignment.samples[sample_pos],
            part.provider,
        );
        self.checkin_replay_state((scratch, verifier.into_arena()));
        verdict
    }

    /// Draws the per-worker sampling decisions and verifier noise seeds —
    /// the serial part of verification, kept deterministic under the
    /// manager's RNG.
    pub(crate) fn verification_assignments(
        &mut self,
        n_workers: usize,
        segment_count: usize,
    ) -> Vec<VerificationAssignment> {
        (0..n_workers)
            .map(|_| {
                let samples = self.sample_indices(segment_count);
                let noise_seed = self.rng.next_u64();
                VerificationAssignment {
                    samples,
                    noise_seed,
                }
            })
            .collect()
    }

    /// Verifies one participant's submission against one assignment.
    /// Requires only shared access to the manager, so callers may fan out
    /// across threads with per-thread scratch models and arenas; `arena`
    /// carries the replay trainers' weight-sized staging buffers from one
    /// participant to the next, so steady-state verification threads stop
    /// allocating per checkpoint.
    pub(crate) fn verify_one(
        &self,
        scratch: &mut rpol_nn::model::Sequential,
        arena: &mut rpol_tensor::scratch::ScratchArena,
        part: &Participant<'_>,
        plan: &EpochPlan,
        segments: &[crate::trainer::Segment],
        assignment: &VerificationAssignment,
    ) -> WorkerVerdict {
        let beta = self.cached_beta.expect("calibrated");
        let _g = span!(
            self.recorder,
            "rpol.verify.worker",
            epoch = plan.epoch,
            worker = part.id,
            samples = assignment.samples.len()
        );
        let commitment = part
            .submission
            .commitment
            .as_ref()
            .expect("verified schemes commit");
        let mut verifier = Verifier::with_arena(
            &self.config,
            part.shard,
            plan.nonces[part.id],
            beta,
            plan.family.as_ref(),
            NoiseInjector::new(self.verifier_gpu, assignment.noise_seed),
            std::mem::take(arena),
        )
        .with_recorder(&self.recorder);
        let verdict = verifier.verify_samples(
            scratch,
            commitment,
            segments,
            &assignment.samples,
            part.provider,
        );
        *arena = verifier.into_arena();
        verdict
    }

    /// Builds a fresh scratch model with the current global geometry, for
    /// per-thread verification.
    pub(crate) fn scratch_model(&self) -> rpol_nn::model::Sequential {
        self.config.build_model_like(&self.global)
    }

    fn aggregate_and_credit(&mut self, participants: &[Participant<'_>], accepted: &[usize]) {
        // Aggregation (Eq. 1 with equal shards), restricted to accepted
        // updates: `|D|` is the union of the data actually aggregated, so
        // the weights renormalize over the accepted set — a verified pool
        // full of cheaters (or quarantined links) still trains at full
        // speed on its healthy honest workers' shards instead of being
        // diluted by dropped terms.
        let mut acc = self.agg_begin();
        let mut n_accepted = 0usize;
        for part in participants.iter().filter(|p| accepted.contains(&p.id)) {
            self.agg_accumulate(&mut acc, &part.submission.final_weights);
            n_accepted += 1;
        }
        self.agg_finalize(&acc, n_accepted);
        // Credit verified contributions for the eventual reward split.
        for part in participants.iter().filter(|p| accepted.contains(&p.id)) {
            self.contributions.credit(part.address);
        }
    }

    /// Starts an order-invariant aggregation of one epoch's accepted
    /// updates. Per-weight deltas are accumulated as fixed-point `i64`
    /// (scale 2⁻²⁴, finer than f32 resolution on unit-scale weights), so
    /// the sum is an associative, commutative integer addition: the
    /// hierarchical runtime folds updates in committee order, the flat one
    /// in worker order, and both land on bitwise-identical global weights.
    pub(crate) fn agg_begin(&self) -> Vec<i64> {
        vec![0i64; self.global.len()]
    }

    /// Folds one accepted worker's final weights into the accumulator.
    pub(crate) fn agg_accumulate(&self, acc: &mut [i64], final_weights: &[f32]) {
        for (a, (&cur, &fin)) in acc.iter_mut().zip(self.global.iter().zip(final_weights)) {
            *a += (((fin - cur) as f64) * AGG_SCALE).round() as i64;
        }
    }

    /// Applies the accumulated deltas, renormalized over the accepted
    /// count, to the global model. No-op when nothing was accepted.
    pub(crate) fn agg_finalize(&mut self, acc: &[i64], n_accepted: usize) {
        if n_accepted == 0 {
            return;
        }
        let weight = 1.0f64 / n_accepted as f64;
        for (g, &a) in self.global.iter_mut().zip(acc) {
            *g = (*g as f64 + weight * (a as f64 / AGG_SCALE)) as f32;
        }
    }

    /// Credits one accepted worker for the eventual reward split — the
    /// streaming hierarchical runtime's counterpart of the crediting loop
    /// in [`PoolManager::reduce_epoch`].
    pub(crate) fn credit(&mut self, address: Address) {
        self.contributions.credit(address);
    }

    /// Samples `q` distinct checkpoint indices from `0..segment_count`
    /// (all of them when `q ≥ segment_count`).
    fn sample_indices(&mut self, segment_count: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..segment_count).collect();
        self.rng.shuffle(&mut indices);
        indices.truncate(self.q_samples.min(segment_count));
        indices.sort_unstable();
        indices
    }

    fn calibrate(&mut self, epoch: u64) -> CalibrationResult {
        let calibrator = Calibrator::new(
            &self.config,
            &self.manager_shard,
            self.policy,
            self.calibration_gpus,
        )
        .with_recorder(self.recorder.clone())
        .quantized(matches!(self.scheme, Scheme::RPoLv3));
        let nonce = self.rng.next_u64();
        // With an executor attached the per-(replay, segment) measurements
        // fan out onto its workers; `calibrate_with` is bitwise-identical
        // either way, so serial and parallel pools calibrate alike.
        let (cal, _trained) = calibrator.calibrate_with(
            &self.global,
            nonce,
            self.steps_per_epoch,
            epoch,
            self.executor.as_deref(),
        );
        cal
    }
}

impl std::fmt::Debug for PoolManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PoolManager({:?}, {} weights, q {})",
            self.scheme,
            self.global.len(),
            self.q_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::WorkerBehavior;

    fn build_pool(scheme: Scheme, behaviors: &[WorkerBehavior]) -> (PoolManager, Vec<PoolWorker>) {
        let cfg = TaskConfig::tiny();
        let address = Address::from_seed(1);
        let data = SyntheticImages::generate(
            &cfg.spec,
            32 * (behaviors.len() + 1),
            &mut Pcg32::seed_from(4),
        );
        let mut shards = data.shard(behaviors.len() + 1);
        let manager_shard = shards.pop().expect("manager shard");
        let workers: Vec<PoolWorker> = behaviors
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (&b, shard))| PoolWorker::new(i, &cfg, &address, shard, GpuModel::GA10, b))
            .collect();
        let manager = PoolManager::new(cfg, scheme, address, manager_shard, 2, 4, 99);
        (manager, workers)
    }

    #[test]
    fn baseline_accepts_everyone() {
        let (mut manager, mut workers) = build_pool(
            Scheme::Baseline,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert_eq!(report.accepted.len(), 2);
        assert!(report.rejected.is_empty());
        assert_eq!(report.comm.proof_bytes, 0);
        assert!(report.calibration.is_none());
    }

    #[test]
    fn v1_accepts_honest_rejects_replayer() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv1,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert_eq!(report.accepted, vec![0], "outcomes: {report:?}");
        assert_eq!(report.rejected, vec![1]);
        assert!(report.replayed_steps > 0);
        assert!(report.calibration.is_some());
        // Second epoch: v1 does not recalibrate.
        let report2 = manager.run_epoch(&mut workers, 1);
        assert!(report2.calibration.is_none());
    }

    #[test]
    fn v2_accepts_honest_rejects_spoofer() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv2,
            &[
                WorkerBehavior::Honest,
                WorkerBehavior::PartialSpoof {
                    honest_fraction: 0.0,
                    lambda: 0.5,
                },
            ],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.contains(&0), "honest rejected: {report:?}");
        assert!(report.rejected.contains(&1), "spoofer accepted: {report:?}");
        assert!(report.calibration.is_some());
    }

    #[test]
    fn v3_accepts_honest_rejects_spoofer_with_cheaper_hashing() {
        let attack = [
            WorkerBehavior::Honest,
            WorkerBehavior::PartialSpoof {
                honest_fraction: 0.0,
                lambda: 0.5,
            },
        ];
        let (mut manager, mut workers) = build_pool(Scheme::RPoLv3, &attack);
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.contains(&0), "honest rejected: {report:?}");
        assert!(report.rejected.contains(&1), "spoofer accepted: {report:?}");
        assert!(report.calibration.is_some(), "v3 calibrates every epoch");
        assert!(report.commit_bytes_hashed > 0);

        // The quantized digests hash roughly half the bytes RPoLv1 does
        // on the same model (2 bytes/weight vs 4, plus the LSH digests).
        let (mut m1, mut w1) = build_pool(Scheme::RPoLv1, &attack);
        let r1 = m1.run_epoch(&mut w1, 0);
        assert!(
            report.commit_bytes_hashed < r1.commit_bytes_hashed,
            "v3 hashed {} vs v1 {}",
            report.commit_bytes_hashed,
            r1.commit_bytes_hashed
        );
    }

    #[test]
    fn global_model_moves_only_with_accepted_updates() {
        let (mut manager, mut workers) =
            build_pool(Scheme::RPoLv1, &[WorkerBehavior::ReplayPrevious]);
        let before = manager.global_weights().to_vec();
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.is_empty());
        assert_eq!(manager.global_weights(), before.as_slice());
    }

    #[test]
    fn contributions_credit_accepted_workers() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv1,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        manager.run_epoch(&mut workers, 0);
        manager.run_epoch(&mut workers, 1);
        assert_eq!(manager.contributions().credits(&workers[0].address), 2);
        assert_eq!(manager.contributions().credits(&workers[1].address), 0);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let (mut manager, _) = build_pool(Scheme::RPoLv1, &[WorkerBehavior::Honest]);
        for _ in 0..10 {
            let s = manager.sample_indices(5);
            assert!(s.len() <= 2);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 5));
        }
    }
}
