//! The pool manager: epoch orchestration, secure sampling, verification,
//! aggregation, and reward crediting (§III-A, §V).

use crate::calibrate::{CalibrationPolicy, CalibrationResult, Calibrator};
use crate::pool::Scheme;
use crate::tasks::TaskConfig;
use crate::trainer::epoch_segments;
use crate::transport::TransportStats;
use crate::verify::{ProofProvider, SampleVerdict, Verifier, WorkerVerdict};
use crate::worker::{CommitMode, PoolWorker};
use rpol_chain::rewards::ContributionLedger;
use rpol_crypto::Address;
use rpol_exec::Executor;
use rpol_lsh::LshFamily;
use rpol_nn::data::SyntheticImages;
use rpol_nn::model::Sequential;
use rpol_obs::{event, span, Recorder};
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::scratch::ScratchArena;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A pooled verification replay state: a scratch model sharing the global
/// geometry plus the weight-sized staging arena its replay trainers use.
pub(crate) type ReplayState = (Sequential, ScratchArena);

/// Per-epoch communication accounting (bytes over the star topology).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Manager → workers: global model broadcast.
    pub broadcast_bytes: u64,
    /// Workers → manager: final weights + commitments.
    pub submission_bytes: u64,
    /// Workers → manager: sampled proof openings (incl. double-checks).
    pub proof_bytes: u64,
}

impl CommStats {
    /// Total bytes moved this epoch.
    pub fn total(&self) -> u64 {
        self.broadcast_bytes + self.submission_bytes + self.proof_bytes
    }
}

/// What happened in one epoch of pooled training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// Worker ids whose submissions were aggregated.
    pub accepted: Vec<usize>,
    /// Worker ids whose submissions were rejected by verification.
    pub rejected: Vec<usize>,
    /// Worker ids excluded for the epoch by **transport** failure (crash,
    /// exhausted retries, missed deadline) — uncredited but never flagged
    /// as cheaters. Always empty without a fault-injecting transport.
    pub quarantined: Vec<usize>,
    /// Transport-layer counters for the epoch (all zero without a
    /// fault-injecting transport).
    pub transport: TransportStats,
    /// Raw-weight double-checks triggered (RPoLv2 false-negative rescues).
    pub double_checks: usize,
    /// Training steps the manager re-executed for verification.
    pub replayed_steps: u64,
    /// Checkpoint bytes hashed into commitments this epoch, summed over
    /// delivered submissions (the §VII-E hashing cost RPoLv3's quantized
    /// digests halve). Deterministic given model size and scheme, so the
    /// worker-side and manager-side accounting always agree.
    pub commit_bytes_hashed: u64,
    /// Bytes moved.
    pub comm: CommStats,
    /// The epoch's calibration (RPoLv2 every epoch; RPoLv1 first epoch).
    pub calibration: Option<CalibrationResult>,
    /// Per-worker verification verdicts (empty for the baseline scheme).
    pub verdicts: Vec<(usize, WorkerVerdict)>,
}

/// The frozen outputs of [`PoolManager::begin_epoch`]: everything workers
/// need to train this epoch, fixed before any submission arrives.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Epoch number.
    pub epoch: u64,
    /// Steps each worker must train.
    pub steps: usize,
    scheme: Scheme,
    /// Per-worker nonces `N_t^w`.
    pub nonces: Vec<u64>,
    /// This epoch's calibration, when one ran.
    pub calibration: Option<CalibrationResult>,
    family: Option<LshFamily>,
}

impl EpochPlan {
    /// The commitment mode workers must use this epoch.
    pub fn commit_mode(&self) -> CommitMode<'_> {
        match (self.scheme, &self.family) {
            (Scheme::Baseline, _) => CommitMode::Skip,
            (Scheme::RPoLv1, _) => CommitMode::V1,
            (Scheme::RPoLv2, Some(f)) => CommitMode::V2(f),
            (Scheme::RPoLv3, Some(f)) => CommitMode::V3(f),
            (Scheme::RPoLv2 | Scheme::RPoLv3, None) => {
                unreachable!("v2/v3 always have a family")
            }
        }
    }
}

/// One worker's sampling decision plus the verifier's noise seed, drawn
/// serially so parallel verification stays deterministic.
#[derive(Debug, Clone)]
pub struct VerificationAssignment {
    /// Sampled checkpoint indices.
    pub samples: Vec<usize>,
    /// Seed of the manager-side replay noise.
    pub noise_seed: u64,
}

/// The serially-drawn inputs of one epoch's verification phase: the
/// checkpoint segment table plus every worker's sampling decision and
/// noise seed, indexed by worker id.
///
/// Training never touches the manager's RNG, so drawing this eagerly —
/// right after [`PoolManager::begin_epoch`] — consumes the exact same RNG
/// stream as drawing it after training. That equivalence is what lets the
/// overlapped pool runtime start verifying a worker's sampled checkpoints
/// the moment its submission lands, while other workers are still
/// training. The baseline scheme never draws sampling state, so
/// [`PoolManager::prepare_verification`] returns `None` for it on every
/// path.
#[derive(Debug, Clone)]
pub struct PreparedVerification {
    pub(crate) segments: Vec<crate::trainer::Segment>,
    pub(crate) assignments: Vec<VerificationAssignment>,
}

impl PreparedVerification {
    /// Number of sampled checkpoints assigned to `worker`.
    pub fn sample_count(&self, worker: usize) -> usize {
        self.assignments[worker].samples.len()
    }
}

/// One worker whose submission actually reached the manager this epoch,
/// with whatever channel serves its checkpoint openings: the worker itself
/// (in-process pools) or a fault-injecting transport endpoint. Workers
/// quarantined before verification simply have no participant.
pub struct Participant<'a> {
    /// The worker's pool index.
    pub id: usize,
    /// The worker's reward address.
    pub address: Address,
    /// The worker's data shard (the manager holds a copy).
    pub shard: &'a SyntheticImages,
    /// The delivered submission.
    pub submission: &'a crate::worker::EpochSubmission,
    /// Serves checkpoint openings; may fail over a faulty transport.
    pub provider: &'a (dyn ProofProvider + Sync),
}

/// The pool manager (assumed honest inside the pool, §III-B).
pub struct PoolManager {
    /// The manager's blockchain address — encoded into the model.
    pub address: Address,
    config: TaskConfig,
    scheme: Scheme,
    global: Vec<f32>,
    manager_shard: SyntheticImages,
    q_samples: usize,
    steps_per_epoch: usize,
    policy: CalibrationPolicy,
    verifier_gpu: GpuModel,
    calibration_gpus: (GpuModel, GpuModel),
    rng: Pcg32,
    /// β cached from the first calibration, reused by RPoLv1.
    cached_beta: Option<f32>,
    contributions: ContributionLedger,
    /// Observability handle shared with the pool (defaults to no-op).
    recorder: Arc<Recorder>,
    /// Persistent executor for parallel verification and calibration
    /// fan-out. `None` on serial pools — the serial path never constructs
    /// a thread pool.
    executor: Option<Arc<Executor>>,
    /// Pooled replay states, checked out per verification task and
    /// returned afterwards, so steady-state verification stops allocating
    /// scratch models and weight-sized staging buffers.
    replay_pool: parking_lot::Mutex<Vec<ReplayState>>,
}

impl PoolManager {
    /// Creates a manager with a fresh address-encoded global model.
    ///
    /// `manager_shard` is the (n+1)-th i.i.d. shard the manager keeps for
    /// adaptive calibration (§V-C).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: TaskConfig,
        scheme: Scheme,
        address: Address,
        manager_shard: SyntheticImages,
        q_samples: usize,
        steps_per_epoch: usize,
        seed: u64,
    ) -> Self {
        assert!(q_samples > 0, "need at least one sample per worker");
        assert!(steps_per_epoch > 0, "empty epochs");
        let global = config.build_encoded_model(&address).flatten_params();
        Self {
            address,
            config,
            scheme,
            global,
            manager_shard,
            q_samples,
            steps_per_epoch,
            policy: CalibrationPolicy::default(),
            verifier_gpu: GpuModel::G3090,
            calibration_gpus: GpuModel::top2(),
            rng: Pcg32::seed_from(seed ^ 0x4D47_5200),
            cached_beta: None,
            contributions: ContributionLedger::new(),
            recorder: rpol_obs::noop().clone(),
            executor: None,
            replay_pool: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Attaches an observability recorder (sampling events, verification
    /// spans). Normally called through `MiningPool::with_recorder`.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.recorder = rec;
    }

    /// Sets the GPU pair used for calibration runs. §V-C: the manager
    /// picks the top-2 best-performant GPUs *from the pool workers'
    /// registration information* to measure near-worst-case errors.
    pub fn set_calibration_gpus(&mut self, gpus: (GpuModel, GpuModel)) {
        self.calibration_gpus = gpus;
    }

    /// Attaches a persistent executor: parallel verification and
    /// calibration fan out onto its long-lived workers instead of
    /// spawning scoped threads per epoch. Serial pools never call this.
    pub fn set_executor(&mut self, exec: Arc<Executor>) {
        self.executor = Some(exec);
    }

    /// The attached executor, if any.
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        self.executor.as_ref()
    }

    /// Checks a replay state out of the pool, building a fresh one on a
    /// miss. States recycle across epochs and samples: replay overwrites
    /// every parameter via `load_params` and the arena only lends
    /// capacity, so a reused state is bitwise-equivalent to a fresh one.
    pub(crate) fn checkout_replay_state(&self) -> ReplayState {
        let pooled = self.replay_pool.lock().pop();
        if self.recorder.enabled() {
            self.recorder.counter_add(
                if pooled.is_some() {
                    "rpol.verify.replay_pool_hits"
                } else {
                    "rpol.verify.replay_pool_misses"
                },
                1,
            );
        }
        pooled.unwrap_or_else(|| (self.scratch_model(), ScratchArena::new()))
    }

    /// Returns a replay state to the pool for reuse.
    pub(crate) fn checkin_replay_state(&self, state: ReplayState) {
        self.replay_pool.lock().push(state);
    }

    /// The current global model weights.
    pub fn global_weights(&self) -> &[f32] {
        &self.global
    }

    /// The task configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.config
    }

    /// The verification scheme in force.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Verified contributions accumulated so far (drives reward splits).
    pub fn contributions(&self) -> &ContributionLedger {
        &self.contributions
    }

    /// Runs one full epoch of the pool protocol over `workers` and
    /// advances the global model.
    ///
    /// Equivalent to [`PoolManager::begin_epoch`], collecting every
    /// worker's submission serially, then [`PoolManager::finish_epoch`].
    /// The parallel pool runtime uses the two-phase API directly.
    pub fn run_epoch(&mut self, workers: &mut [PoolWorker], epoch: u64) -> EpochReport {
        assert!(!workers.is_empty(), "pool has no workers");
        let plan = self.begin_epoch(workers.len(), epoch);
        let recorder = self.recorder.clone();
        let submissions: Vec<_> = workers
            .iter_mut()
            .enumerate()
            .map(|(w, worker)| {
                let _g = span!(
                    recorder,
                    "rpol.worker.train_epoch",
                    epoch,
                    worker = w,
                    steps = plan.steps
                );
                worker.run_epoch(
                    &self.config,
                    &self.global,
                    plan.nonces[w],
                    plan.steps,
                    epoch,
                    plan.commit_mode(),
                )
            })
            .collect();
        self.finish_epoch(workers, &plan, &submissions)
    }

    /// Phase 1 of an epoch: calibrate (per scheme policy) and fix the
    /// per-worker nonces and the commitment mode. After this, workers can
    /// train **concurrently** — nothing in the plan changes until
    /// [`PoolManager::finish_epoch`].
    pub fn begin_epoch(&mut self, n_workers: usize, epoch: u64) -> EpochPlan {
        assert!(n_workers > 0, "pool has no workers");
        // Adaptive calibration: every epoch for v2, once for v1.
        let calibration = match self.scheme {
            Scheme::Baseline => None,
            Scheme::RPoLv1 => {
                if self.cached_beta.is_none() {
                    let cal = self.calibrate(epoch);
                    self.cached_beta = Some(cal.beta);
                    Some(cal)
                } else {
                    None
                }
            }
            Scheme::RPoLv2 | Scheme::RPoLv3 => {
                let cal = self.calibrate(epoch);
                self.cached_beta = Some(cal.beta);
                Some(cal)
            }
        };
        let family: Option<LshFamily> = match self.scheme {
            Scheme::RPoLv2 | Scheme::RPoLv3 => {
                let cal = calibration.expect("v2/v3 calibrate every epoch");
                Some(cal.family(self.global.len()))
            }
            _ => None,
        };
        // Per-worker nonces for stochastic-yet-deterministic selection.
        let nonces: Vec<u64> = (0..n_workers).map(|_| self.rng.next_u64()).collect();
        EpochPlan {
            epoch,
            steps: self.steps_per_epoch,
            scheme: self.scheme,
            nonces,
            calibration,
            family,
        }
    }

    /// Phase 2 of an epoch: reveal sampling decisions, verify every
    /// submission, aggregate the accepted updates (Eq. 1) and credit
    /// contributions.
    ///
    /// # Panics
    ///
    /// Panics if `submissions` does not align with `workers`.
    pub fn finish_epoch(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
    ) -> EpochReport {
        self.finish_epoch_workers(workers, plan, submissions, false)
    }

    /// Like [`PoolManager::finish_epoch`], but verifies workers on
    /// parallel threads (the paper's future-work "decentralized
    /// verification" runs the same fan-out across worker nodes). Sampling
    /// decisions and noise seeds are drawn serially first, so the result
    /// is identical to the serial path.
    pub fn finish_epoch_parallel(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
    ) -> EpochReport {
        self.finish_epoch_workers(workers, plan, submissions, true)
    }

    /// Shared delegate for the in-process (fault-free) epoch finish: every
    /// worker participates, openings are served locally and never fail.
    fn finish_epoch_workers(
        &mut self,
        workers: &[PoolWorker],
        plan: &EpochPlan,
        submissions: &[crate::worker::EpochSubmission],
        parallel: bool,
    ) -> EpochReport {
        let n = workers.len();
        assert_eq!(submissions.len(), n, "one submission per worker");
        let participants: Vec<Participant<'_>> = workers
            .iter()
            .map(|worker| Participant {
                id: worker.id,
                address: worker.address,
                shard: worker.shard(),
                submission: &submissions[worker.id],
                provider: worker,
            })
            .collect();
        let model_bytes = (self.global.len() * 4) as u64;
        let mut comm = CommStats {
            broadcast_bytes: model_bytes * n as u64,
            ..CommStats::default()
        };
        for sub in submissions {
            comm.submission_bytes += sub.upload_bytes;
        }
        self.finish_epoch_partial(plan, n, &participants, &[], comm, parallel)
    }

    /// Phase 2 of an epoch under possible transport faults: verify the
    /// submissions that *arrived*, aggregate the accepted updates (Eq. 1)
    /// and credit contributions. Workers whose submissions never made it
    /// are passed in `quarantined_before`; workers whose proof channel
    /// dies mid-verification join them. `comm` carries the broadcast and
    /// submission byte counts the caller already accounted.
    ///
    /// Sampling decisions and noise seeds are drawn for **all**
    /// `n_workers` — quarantined ones included — so the manager's RNG
    /// schedule is independent of which links happened to fail.
    ///
    /// # Panics
    ///
    /// Panics if a participant id is out of `0..n_workers`.
    pub fn finish_epoch_partial(
        &mut self,
        plan: &EpochPlan,
        n_workers: usize,
        participants: &[Participant<'_>],
        quarantined_before: &[usize],
        comm: CommStats,
        parallel: bool,
    ) -> EpochReport {
        assert!(
            participants.iter().all(|p| p.id < n_workers),
            "participant id out of range"
        );
        let prepared = self.prepare_verification(plan, n_workers);
        let verdict_list = prepared.as_ref().map(|prepared| {
            if parallel {
                self.verify_participants_parallel(participants, plan, prepared)
            } else {
                let (mut scratch, mut arena) = self.checkout_replay_state();
                let verdicts = participants
                    .iter()
                    .map(|part| {
                        self.verify_one(
                            &mut scratch,
                            &mut arena,
                            part,
                            plan,
                            &prepared.segments,
                            &prepared.assignments[part.id],
                        )
                    })
                    .collect();
                self.checkin_replay_state((scratch, arena));
                verdicts
            }
        });
        self.reduce_epoch(plan, participants, quarantined_before, comm, verdict_list)
    }

    /// Draws the epoch's verification schedule: the segment table plus
    /// per-worker sample indices and noise seeds. Returns `None` for the
    /// baseline scheme, which never draws sampling state. Sampling
    /// decisions are drawn serially for **all** `n_workers` (quarantined
    /// included), so the `rpol.manager.sample` events land in worker
    /// order on every code path.
    pub(crate) fn prepare_verification(
        &mut self,
        plan: &EpochPlan,
        n_workers: usize,
    ) -> Option<PreparedVerification> {
        if matches!(self.scheme, Scheme::Baseline) {
            return None;
        }
        let segments = epoch_segments(plan.steps, self.config.checkpoint_interval);
        let assignments = self.verification_assignments(n_workers, segments.len());
        if self.recorder.enabled() {
            for (w, assignment) in assignments.iter().enumerate() {
                event!(
                    self.recorder,
                    "rpol.manager.sample",
                    epoch = plan.epoch,
                    worker = w,
                    samples = assignment.samples.len()
                );
            }
        }
        Some(PreparedVerification {
            segments,
            assignments,
        })
    }

    /// Worker-granular parallel verification: one task per participant,
    /// on the persistent executor when one is attached (scoped threads
    /// otherwise). Kept worker-granular — rather than per-sample — on the
    /// transport path because a faulty provider's fault draws are keyed
    /// by its own request sequence, which must advance in sample order.
    fn verify_participants_parallel(
        &self,
        participants: &[Participant<'_>],
        plan: &EpochPlan,
        prepared: &PreparedVerification,
    ) -> Vec<WorkerVerdict> {
        let verify = |i: usize| {
            let part = &participants[i];
            let (mut scratch, mut arena) = self.checkout_replay_state();
            let verdict = self.verify_one(
                &mut scratch,
                &mut arena,
                part,
                plan,
                &prepared.segments,
                &prepared.assignments[part.id],
            );
            self.checkin_replay_state((scratch, arena));
            verdict
        };
        if let Some(exec) = &self.executor {
            exec.run_indexed(participants.len(), verify)
        } else {
            let slots: parking_lot::Mutex<Vec<Option<WorkerVerdict>>> =
                parking_lot::Mutex::new((0..participants.len()).map(|_| None).collect());
            crossbeam::thread::scope(|scope| {
                for i in 0..participants.len() {
                    let verify = &verify;
                    let slots = &slots;
                    scope.spawn(move |_| {
                        slots.lock()[i] = Some(verify(i));
                    });
                }
            })
            .expect("verification thread panicked");
            slots
                .into_inner()
                .into_iter()
                .map(|s| s.expect("every participant verified"))
                .collect()
        }
    }

    /// The serial tail of an epoch: merge per-worker verdicts in
    /// participant order, aggregate the accepted updates (Eq. 1) and
    /// credit contributions. `verdict_list` is `None` for the baseline
    /// scheme (every delivered submission is aggregated) and otherwise
    /// holds one verdict per participant, in participant order.
    pub(crate) fn reduce_epoch(
        &mut self,
        plan: &EpochPlan,
        participants: &[Participant<'_>],
        quarantined_before: &[usize],
        mut comm: CommStats,
        verdict_list: Option<Vec<WorkerVerdict>>,
    ) -> EpochReport {
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();
        let mut quarantined: Vec<usize> = quarantined_before.to_vec();
        let mut double_checks = 0;
        let mut replayed_steps = 0;
        let mut verdicts = Vec::new();
        match verdict_list {
            // No verification: every delivered submission is aggregated.
            None => accepted.extend(participants.iter().map(|p| p.id)),
            Some(list) => {
                assert_eq!(
                    list.len(),
                    participants.len(),
                    "one verdict per participant"
                );
                for (part, verdict) in participants.iter().zip(list) {
                    comm.proof_bytes += verdict.proof_bytes;
                    double_checks += verdict.double_checks();
                    replayed_steps += verdict.replayed_steps;
                    if verdict.transport_failed() {
                        // Openings stopped arriving: a dead or exhausted
                        // link, not evidence of cheating.
                        quarantined.push(part.id);
                    } else if verdict.all_accepted() {
                        accepted.push(part.id);
                    } else {
                        rejected.push(part.id);
                    }
                    verdicts.push((part.id, verdict));
                }
            }
        }
        quarantined.sort_unstable();
        let commit_bytes_hashed = participants
            .iter()
            .map(|p| p.submission.commit_bytes_hashed)
            .sum();

        self.aggregate_and_credit(participants, &accepted);
        EpochReport {
            epoch: plan.epoch,
            accepted,
            rejected,
            quarantined,
            transport: TransportStats::default(),
            double_checks,
            replayed_steps,
            commit_bytes_hashed,
            comm,
            calibration: plan.calibration,
            verdicts,
        }
    }

    /// Verifies a single sampled checkpoint of one participant — the
    /// segment-granular unit the overlapped pool runtime schedules as an
    /// executor task the moment the worker's submission lands. Per-sample
    /// verdicts merged in index order via [`WorkerVerdict::from_samples`]
    /// are bitwise-identical to the batch [`Verifier::verify_samples`]
    /// path: the verifier clones its pristine injector per sample either
    /// way, and replay fully overwrites the pooled scratch model.
    pub(crate) fn verify_prepared_sample(
        &self,
        part: &Participant<'_>,
        plan: &EpochPlan,
        prepared: &PreparedVerification,
        sample_pos: usize,
    ) -> SampleVerdict {
        let assignment = &prepared.assignments[part.id];
        let beta = self.cached_beta.expect("calibrated");
        let commitment = part
            .submission
            .commitment
            .as_ref()
            .expect("verified schemes commit");
        let (mut scratch, arena) = self.checkout_replay_state();
        let mut verifier = Verifier::with_arena(
            &self.config,
            part.shard,
            plan.nonces[part.id],
            beta,
            plan.family.as_ref(),
            NoiseInjector::new(self.verifier_gpu, assignment.noise_seed),
            arena,
        )
        .with_recorder(&self.recorder);
        let verdict = verifier.verify_sample(
            &mut scratch,
            commitment,
            &prepared.segments,
            assignment.samples[sample_pos],
            part.provider,
        );
        self.checkin_replay_state((scratch, verifier.into_arena()));
        verdict
    }

    /// Draws the per-worker sampling decisions and verifier noise seeds —
    /// the serial part of verification, kept deterministic under the
    /// manager's RNG.
    pub(crate) fn verification_assignments(
        &mut self,
        n_workers: usize,
        segment_count: usize,
    ) -> Vec<VerificationAssignment> {
        (0..n_workers)
            .map(|_| {
                let samples = self.sample_indices(segment_count);
                let noise_seed = self.rng.next_u64();
                VerificationAssignment {
                    samples,
                    noise_seed,
                }
            })
            .collect()
    }

    /// Verifies one participant's submission against one assignment.
    /// Requires only shared access to the manager, so callers may fan out
    /// across threads with per-thread scratch models and arenas; `arena`
    /// carries the replay trainers' weight-sized staging buffers from one
    /// participant to the next, so steady-state verification threads stop
    /// allocating per checkpoint.
    pub(crate) fn verify_one(
        &self,
        scratch: &mut rpol_nn::model::Sequential,
        arena: &mut rpol_tensor::scratch::ScratchArena,
        part: &Participant<'_>,
        plan: &EpochPlan,
        segments: &[crate::trainer::Segment],
        assignment: &VerificationAssignment,
    ) -> WorkerVerdict {
        let beta = self.cached_beta.expect("calibrated");
        let _g = span!(
            self.recorder,
            "rpol.verify.worker",
            epoch = plan.epoch,
            worker = part.id,
            samples = assignment.samples.len()
        );
        let commitment = part
            .submission
            .commitment
            .as_ref()
            .expect("verified schemes commit");
        let mut verifier = Verifier::with_arena(
            &self.config,
            part.shard,
            plan.nonces[part.id],
            beta,
            plan.family.as_ref(),
            NoiseInjector::new(self.verifier_gpu, assignment.noise_seed),
            std::mem::take(arena),
        )
        .with_recorder(&self.recorder);
        let verdict = verifier.verify_samples(
            scratch,
            commitment,
            segments,
            &assignment.samples,
            part.provider,
        );
        *arena = verifier.into_arena();
        verdict
    }

    /// Builds a fresh scratch model with the current global geometry, for
    /// per-thread verification.
    pub(crate) fn scratch_model(&self) -> rpol_nn::model::Sequential {
        self.config.build_model_like(&self.global)
    }

    fn aggregate_and_credit(&mut self, participants: &[Participant<'_>], accepted: &[usize]) {
        // Aggregation (Eq. 1 with equal shards), restricted to accepted
        // updates: `|D|` is the union of the data actually aggregated, so
        // the weights renormalize over the accepted set — a verified pool
        // full of cheaters (or quarantined links) still trains at full
        // speed on its healthy honest workers' shards instead of being
        // diluted by dropped terms.
        if !accepted.is_empty() {
            let mut next = self.global.clone();
            let weight = 1.0 / accepted.len() as f32;
            for part in participants.iter().filter(|p| accepted.contains(&p.id)) {
                for (g, (&cur, &fin)) in next
                    .iter_mut()
                    .zip(self.global.iter().zip(&part.submission.final_weights))
                {
                    *g += weight * (fin - cur);
                }
            }
            self.global = next;
        }
        // Credit verified contributions for the eventual reward split.
        for part in participants.iter().filter(|p| accepted.contains(&p.id)) {
            self.contributions.credit(part.address);
        }
    }

    /// Samples `q` distinct checkpoint indices from `0..segment_count`
    /// (all of them when `q ≥ segment_count`).
    fn sample_indices(&mut self, segment_count: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..segment_count).collect();
        self.rng.shuffle(&mut indices);
        indices.truncate(self.q_samples.min(segment_count));
        indices.sort_unstable();
        indices
    }

    fn calibrate(&mut self, epoch: u64) -> CalibrationResult {
        let calibrator = Calibrator::new(
            &self.config,
            &self.manager_shard,
            self.policy,
            self.calibration_gpus,
        )
        .with_recorder(self.recorder.clone())
        .quantized(matches!(self.scheme, Scheme::RPoLv3));
        let nonce = self.rng.next_u64();
        // With an executor attached the per-(replay, segment) measurements
        // fan out onto its workers; `calibrate_with` is bitwise-identical
        // either way, so serial and parallel pools calibrate alike.
        let (cal, _trained) = calibrator.calibrate_with(
            &self.global,
            nonce,
            self.steps_per_epoch,
            epoch,
            self.executor.as_deref(),
        );
        cal
    }
}

impl std::fmt::Debug for PoolManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PoolManager({:?}, {} weights, q {})",
            self.scheme,
            self.global.len(),
            self.q_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::WorkerBehavior;

    fn build_pool(scheme: Scheme, behaviors: &[WorkerBehavior]) -> (PoolManager, Vec<PoolWorker>) {
        let cfg = TaskConfig::tiny();
        let address = Address::from_seed(1);
        let data = SyntheticImages::generate(
            &cfg.spec,
            32 * (behaviors.len() + 1),
            &mut Pcg32::seed_from(4),
        );
        let mut shards = data.shard(behaviors.len() + 1);
        let manager_shard = shards.pop().expect("manager shard");
        let workers: Vec<PoolWorker> = behaviors
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (&b, shard))| PoolWorker::new(i, &cfg, &address, shard, GpuModel::GA10, b))
            .collect();
        let manager = PoolManager::new(cfg, scheme, address, manager_shard, 2, 4, 99);
        (manager, workers)
    }

    #[test]
    fn baseline_accepts_everyone() {
        let (mut manager, mut workers) = build_pool(
            Scheme::Baseline,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert_eq!(report.accepted.len(), 2);
        assert!(report.rejected.is_empty());
        assert_eq!(report.comm.proof_bytes, 0);
        assert!(report.calibration.is_none());
    }

    #[test]
    fn v1_accepts_honest_rejects_replayer() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv1,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert_eq!(report.accepted, vec![0], "outcomes: {report:?}");
        assert_eq!(report.rejected, vec![1]);
        assert!(report.replayed_steps > 0);
        assert!(report.calibration.is_some());
        // Second epoch: v1 does not recalibrate.
        let report2 = manager.run_epoch(&mut workers, 1);
        assert!(report2.calibration.is_none());
    }

    #[test]
    fn v2_accepts_honest_rejects_spoofer() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv2,
            &[
                WorkerBehavior::Honest,
                WorkerBehavior::PartialSpoof {
                    honest_fraction: 0.0,
                    lambda: 0.5,
                },
            ],
        );
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.contains(&0), "honest rejected: {report:?}");
        assert!(report.rejected.contains(&1), "spoofer accepted: {report:?}");
        assert!(report.calibration.is_some());
    }

    #[test]
    fn v3_accepts_honest_rejects_spoofer_with_cheaper_hashing() {
        let attack = [
            WorkerBehavior::Honest,
            WorkerBehavior::PartialSpoof {
                honest_fraction: 0.0,
                lambda: 0.5,
            },
        ];
        let (mut manager, mut workers) = build_pool(Scheme::RPoLv3, &attack);
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.contains(&0), "honest rejected: {report:?}");
        assert!(report.rejected.contains(&1), "spoofer accepted: {report:?}");
        assert!(report.calibration.is_some(), "v3 calibrates every epoch");
        assert!(report.commit_bytes_hashed > 0);

        // The quantized digests hash roughly half the bytes RPoLv1 does
        // on the same model (2 bytes/weight vs 4, plus the LSH digests).
        let (mut m1, mut w1) = build_pool(Scheme::RPoLv1, &attack);
        let r1 = m1.run_epoch(&mut w1, 0);
        assert!(
            report.commit_bytes_hashed < r1.commit_bytes_hashed,
            "v3 hashed {} vs v1 {}",
            report.commit_bytes_hashed,
            r1.commit_bytes_hashed
        );
    }

    #[test]
    fn global_model_moves_only_with_accepted_updates() {
        let (mut manager, mut workers) =
            build_pool(Scheme::RPoLv1, &[WorkerBehavior::ReplayPrevious]);
        let before = manager.global_weights().to_vec();
        let report = manager.run_epoch(&mut workers, 0);
        assert!(report.accepted.is_empty());
        assert_eq!(manager.global_weights(), before.as_slice());
    }

    #[test]
    fn contributions_credit_accepted_workers() {
        let (mut manager, mut workers) = build_pool(
            Scheme::RPoLv1,
            &[WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
        );
        manager.run_epoch(&mut workers, 0);
        manager.run_epoch(&mut workers, 1);
        assert_eq!(manager.contributions().credits(&workers[0].address), 2);
        assert_eq!(manager.contributions().credits(&workers[1].address), 0);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let (mut manager, _) = build_pool(Scheme::RPoLv1, &[WorkerBehavior::Honest]);
        for _ in 0..10 {
            let s = manager.sample_indices(5);
            assert!(s.len() <= 2);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 5));
        }
    }
}
