//! Wire encoding of protocol messages.
//!
//! The in-process pool passes Rust structs around, but the §VII-E
//! communication numbers need byte-exact message sizes, and a deployment
//! would ship these messages over TLS. This module defines the canonical
//! little-endian framing for every worker↔manager message and round-trips
//! them through [`bytes::Bytes`] buffers.
//!
//! Layout conventions: all integers little-endian; weight vectors are
//! length-prefixed `u32` counts of `f32` values; digests are 32 raw bytes.
//!
//! For transit over the (possibly lossy) transport layer, messages are
//! wrapped in a checksummed frame ([`seal_frame`]/[`open_frame`]) so that
//! in-flight corruption and truncation surface as [`DecodeError`]s the
//! receiver can turn into retransmission requests — weight payloads carry
//! no internal redundancy, so without the frame digest a flipped byte
//! would silently alter a model instead of failing decode.

use crate::commitment::{EpochCommitment, LshCommitment, QuantCommitment};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rpol_crypto::bytes as fbytes;
use rpol_crypto::commitment::{Commitment as _, HashListCommitment};
use rpol_crypto::sha256::{sha256, Digest};
use rpol_obs::TraceContext;

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message did.
    Truncated,
    /// A tag or count field held an invalid value.
    Malformed(&'static str),
    /// A frame's payload digest did not match its header (in-flight
    /// corruption).
    ChecksumMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("message truncated"),
            DecodeError::Malformed(what) => write!(f, "malformed field: {what}"),
            DecodeError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Validates a length prefix against the bytes actually present *before*
/// any allocation sized by it: a corrupted or malicious count must fail
/// decoding with [`DecodeError::Truncated`], not drive a multi-GB
/// `Vec::with_capacity` reservation.
fn checked_count(buf: &Bytes, n: usize, elem_bytes: usize) -> Result<(), DecodeError> {
    let need = n
        .checked_mul(elem_bytes)
        .ok_or(DecodeError::Malformed("count overflow"))?;
    if buf.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    Ok(())
}

fn put_weights(out: &mut BytesMut, weights: &[f32]) {
    out.put_u32_le(weights.len() as u32);
    // One bulk append of the weights' little-endian byte image (zero-copy
    // view on LE hosts) instead of a put_f32_le call per element.
    out.put_slice(&fbytes::f32s_as_le_bytes(weights));
}

fn get_weights(buf: &mut Bytes) -> Result<Vec<f32>, DecodeError> {
    let n = get_u32(buf)? as usize;
    // One bounds check up front, then a single bulk byte→f32 conversion
    // over the whole payload — no per-element cursor reads.
    checked_count(buf, n, 4)?;
    let mut out = Vec::new();
    fbytes::copy_f32s_from_le(&buf[..n * 4], &mut out);
    buf.advance(n * 4);
    Ok(out)
}

fn put_digest(out: &mut BytesMut, d: &Digest) {
    out.put_slice(d.as_bytes());
}

fn get_digest(buf: &mut Bytes) -> Result<Digest, DecodeError> {
    if buf.remaining() < 32 {
        return Err(DecodeError::Truncated);
    }
    let mut raw = [0u8; 32];
    buf.copy_to_slice(&mut raw);
    Ok(Digest(raw))
}

/// Message tags.
const TAG_SUBMISSION_V1: u8 = 0x01;
const TAG_SUBMISSION_V2: u8 = 0x02;
const TAG_SUBMISSION_BARE: u8 = 0x03;
const TAG_SUBMISSION_V3: u8 = 0x04;
const TAG_PROOF_REQUEST: u8 = 0x10;
const TAG_PROOF_RESPONSE: u8 = 0x11;
const TAG_PROOF_RESPONSE_PACKED: u8 = 0x12;
const TAG_EPOCH_TASK: u8 = 0x20;
const TAG_COMMITTEE_BATCH: u8 = 0x40;

/// Packed bf16 weight-block codec version. Bumping this (and teaching the
/// decoder the new layout) is how the format evolves; decoders reject
/// versions they do not know with a clean [`DecodeError::Malformed`], and
/// every pre-existing tag keeps its original raw-f32 framing, so old
/// frames decode unchanged.
const PACKED_WEIGHTS_V1: u8 = 1;
/// Hi-plane encodings inside a [`PACKED_WEIGHTS_V1`] block.
const HI_PLANE_RAW: u8 = 0;
const HI_PLANE_DELTA_RLE: u8 = 1;

/// Appends the versioned packed weight block: the 2-byte bf16 image of
/// `weights` split into a hi-byte plane (sign + upper exponent bits —
/// highly repetitive across a trained weight vector) and a lo-byte plane
/// (near-uniform). The hi plane is delta-coded then run-length encoded
/// when that actually shrinks it, with a flag byte falling back to the raw
/// plane otherwise — so the block never exceeds `2·n + 10` bytes, a
/// guaranteed ~50% cut versus raw f32 framing.
///
/// Callers must only pack weights already **on the bf16 lattice** (the
/// RPoLv3 checkpoint invariant): packing truncates the low 16 bits, so an
/// off-lattice vector would decode to different weights.
fn put_weights_packed(out: &mut BytesMut, weights: &[f32]) {
    debug_assert!(
        rpol_tensor::quant::is_bf16_lattice(weights),
        "packing off-lattice weights would lose bits"
    );
    out.put_u8(PACKED_WEIGHTS_V1);
    out.put_u32_le(weights.len() as u32);
    let n = weights.len();
    let mut hi = Vec::with_capacity(n);
    let mut lo = Vec::with_capacity(n);
    for &w in weights {
        let q = (w.to_bits() >> 16) as u16;
        hi.push((q >> 8) as u8);
        lo.push((q & 0xFF) as u8);
    }
    // Delta-code the hi plane, then RLE the delta stream as (value, run)
    // byte pairs. Trained weights cluster in a narrow exponent band, so
    // the deltas are mostly zero and runs are long.
    let mut rle = Vec::new();
    let mut prev = 0u8;
    let mut i = 0;
    while i < n {
        let delta = hi[i].wrapping_sub(prev);
        let mut run = 1usize;
        while i + run < n && hi[i + run].wrapping_sub(hi[i + run - 1]) == delta && run < 255 {
            run += 1;
        }
        rle.push(delta);
        rle.push(run as u8);
        prev = hi[i + run - 1];
        i += run;
    }
    if rle.len() < n {
        out.put_u8(HI_PLANE_DELTA_RLE);
        out.put_u32_le(rle.len() as u32);
        out.put_slice(&rle);
    } else {
        // RLE would expand (noisy hi plane): ship the plane raw so the
        // worst case stays at exactly 2 bytes per weight.
        out.put_u8(HI_PLANE_RAW);
        out.put_slice(&hi);
    }
    out.put_slice(&lo);
}

/// Decodes a versioned packed weight block back into exact bf16-lattice
/// `f32`s. Every length is validated against the bytes actually present
/// before any allocation it sizes, and inconsistent RLE streams fail with
/// [`DecodeError::Malformed`] — hostile input can never panic or
/// over-allocate.
fn get_weights_packed(buf: &mut Bytes) -> Result<Vec<f32>, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let version = buf.get_u8();
    if version != PACKED_WEIGHTS_V1 {
        return Err(DecodeError::Malformed("unknown packed-weight version"));
    }
    let n = get_u32(buf)? as usize;
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let hi = match buf.get_u8() {
        HI_PLANE_RAW => {
            // Hi and lo planes are n bytes each.
            checked_count(buf, n, 2)?;
            let hi = buf[..n].to_vec();
            buf.advance(n);
            hi
        }
        HI_PLANE_DELTA_RLE => {
            let rle_len = get_u32(buf)? as usize;
            if !rle_len.is_multiple_of(2) {
                return Err(DecodeError::Malformed("ragged RLE stream"));
            }
            // The RLE stream plus the n-byte lo plane must be present.
            let need = rle_len
                .checked_add(n)
                .ok_or(DecodeError::Malformed("count overflow"))?;
            checked_count(buf, need, 1)?;
            let mut hi = Vec::with_capacity(n);
            let mut prev = 0u8;
            for pair in buf[..rle_len].chunks_exact(2) {
                let (delta, run) = (pair[0], pair[1] as usize);
                if run == 0 {
                    return Err(DecodeError::Malformed("zero RLE run"));
                }
                if hi.len() + run > n {
                    return Err(DecodeError::Malformed("RLE run overflow"));
                }
                for _ in 0..run {
                    prev = prev.wrapping_add(delta);
                    hi.push(prev);
                }
            }
            if hi.len() != n {
                return Err(DecodeError::Malformed("RLE underrun"));
            }
            buf.advance(rle_len);
            hi
        }
        _ => return Err(DecodeError::Malformed("unknown hi-plane mode")),
    };
    checked_count(buf, n, 1)?;
    let mut out = Vec::with_capacity(n);
    for (h, l) in hi.iter().zip(&buf[..n]) {
        let q = ((*h as u32) << 8) | *l as u32;
        out.push(f32::from_bits(q << 16));
    }
    buf.advance(n);
    Ok(out)
}

/// Wire bytes the raw f32 framing needs for `n` weights (length prefix +
/// 4 bytes each) — the baseline `bytes_saved` accounting measures packed
/// encodings against.
pub fn raw_weights_wire_size(n: usize) -> usize {
    4 + n * 4
}

/// Magic bytes opening every transport frame (`"RPoL"` little-endian).
const FRAME_MAGIC: u32 = 0x4C6F5052;
/// Frame header: magic (4) + payload length (4) + truncated digest (8).
pub(crate) const FRAME_HEADER_BYTES: usize = 4 + 4 + 8;

/// Wraps an encoded message in a transport frame carrying a length prefix
/// and the first 8 bytes of the payload's SHA-256. [`open_frame`] verifies
/// both, so corrupted or truncated deliveries fail decoding deterministically
/// instead of smuggling flipped bytes into weight vectors.
pub fn seal_frame(payload: &Bytes) -> Bytes {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    seal_frame_into(payload, &mut out);
    Bytes::from(out)
}

/// [`seal_frame`] into a caller-supplied buffer (cleared first), producing
/// byte-identical framing without allocating — the outbox path hands in a
/// recycled [`BufPool`] buffer and returns it once the frame is flushed.
pub fn seal_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    let digest = sha256(payload);
    out.clear();
    out.reserve(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&digest.as_bytes()[..8]);
    out.extend_from_slice(payload);
}

/// A recycling arena of `Vec<u8>` buffers for the steady-state network
/// path: frame payloads, outbox frames, and assembler backing stores all
/// draw from and return to one pool per reactor, so pumping at a stable
/// working set allocates nothing.
///
/// The pool is deliberately dumb — a LIFO free list with no size classes.
/// Network buffers here cluster around two sizes (control frames and
/// weight payloads), and LIFO reuse keeps the hottest (cache-warm, already
/// grown) buffer on top. Counters feed the `net.buf_pool.*` metrics:
/// `hits`/`misses` split requests by whether a recycled buffer was
/// available, and `bytes_reused` totals the recycled capacity that did not
/// have to be re-allocated.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    /// Requests served from the free list.
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Total capacity (bytes) of recycled buffers handed back out.
    pub bytes_reused: u64,
}

impl BufPool {
    /// Free-list depth cap: beyond this, returned buffers are dropped.
    const MAX_FREE: usize = 1024;
    /// Largest capacity worth retaining — one-off giant buffers (a full
    /// model payload on an otherwise idle pool) should not be hoarded.
    const MAX_RETAINED: usize = 1 << 22;

    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer, recycling one when available.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                self.bytes_reused += buf.capacity() as u64;
                buf.clear();
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool. Capacity-less, oversized, or
    /// beyond-cap buffers are simply dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0
            || buf.capacity() > Self::MAX_RETAINED
            || self.free.len() >= Self::MAX_FREE
        {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Unwraps a transport frame, verifying magic, length and checksum.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when bytes are missing,
/// [`DecodeError::Malformed`] on a bad magic or trailing garbage, and
/// [`DecodeError::ChecksumMismatch`] when the payload digest disagrees
/// with the header.
pub fn open_frame(mut buf: Bytes) -> Result<Bytes, DecodeError> {
    if buf.remaining() < FRAME_HEADER_BYTES {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u32_le() != FRAME_MAGIC {
        return Err(DecodeError::Malformed("bad frame magic"));
    }
    let len = buf.get_u32_le() as usize;
    let mut expect = [0u8; 8];
    buf.copy_to_slice(&mut expect);
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    if buf.remaining() > len {
        return Err(DecodeError::Malformed("frame length mismatch"));
    }
    // Rebase onto the unread tail so the caller sees exactly the payload.
    let payload = buf.slice(..);
    if sha256(&payload).as_bytes()[..8] != expect {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Incremental frame reassembly for byte streams (TCP / Unix sockets),
/// tolerating arbitrary split boundaries: bytes arrive in whatever chunks
/// the kernel hands back, and [`next_frame`](Self::next_frame) carves out
/// exactly one sealed frame at a time once its header-announced length is
/// buffered.
///
/// Robustness properties the socket server leans on:
///
/// - **Partial reads**: feeding a valid stream one byte at a time decodes
///   to the identical payload sequence as one whole-buffer feed
///   (proptest-enforced in `tests/wire_robustness.rs`).
/// - **Checksum rejection without desync**: a complete frame whose digest
///   fails (a chaos-proxy ghost, or genuine line noise with intact
///   framing) is consumed whole and surfaced as an error — the next call
///   continues at the following frame.
/// - **Resynchronization**: garbage before a frame boundary is skipped to
///   the next magic candidate instead of wedging the connection.
/// - **Bounded buffering**: a length field beyond `max_frame` is rejected
///   before any allocation it would size (slowloris / memory-bomb guard).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rpol::wire::{seal_frame, FrameAssembler};
///
/// let frame = seal_frame(&Bytes::copy_from_slice(b"hello"));
/// let mut asm = FrameAssembler::new(1024);
/// for &b in frame.iter() {
///     asm.push(&[b]);
/// }
/// let payload = asm.next_frame().unwrap().unwrap();
/// assert_eq!(&payload[..], b"hello");
/// assert!(asm.next_frame().unwrap().is_none());
/// ```
#[derive(Debug)]
pub struct FrameAssembler {
    /// Backing store; `buf[start..]` is the live unconsumed tail. Consuming
    /// a frame advances `start` instead of draining, so the hot path never
    /// memmoves the remaining stream — compaction happens lazily in
    /// [`push`](Self::push) once the dead prefix is worth reclaiming.
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameAssembler {
    /// Dead-prefix size beyond which `push` compacts unconditionally.
    const COMPACT_BYTES: usize = 4096;

    /// An assembler rejecting frames whose payload exceeds `max_frame`
    /// bytes.
    pub fn new(max_frame: usize) -> Self {
        Self::with_buffer(max_frame, Vec::new())
    }

    /// An assembler whose backing store is a recycled buffer (cleared
    /// first) — pair with [`into_buffer`](Self::into_buffer) to cycle
    /// per-connection stream buffers through a [`BufPool`].
    pub fn with_buffer(max_frame: usize, mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            buf,
            start: 0,
            max_frame,
        }
    }

    /// Surrenders the backing store (buffered-but-unconsumed bytes are
    /// discarded with it) so it can return to a [`BufPool`].
    pub fn into_buffer(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.start > 0
            && (self.start >= self.buf.len() - self.start || self.start >= Self::COMPACT_BYTES)
        {
            // The dead prefix dominates the live tail (or is just large):
            // slide the tail down so the buffer stops growing.
            self.buf.copy_within(self.start.., 0);
            let live = self.buf.len() - self.start;
            self.buf.truncate(live);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a [`next_frame`](Self::next_frame) call would make progress
    /// (yield a payload or report a consumable error) rather than return
    /// `Ok(None)` waiting for more bytes. The readiness reactor uses this
    /// to keep connections with fully-buffered frames on its dirty queue —
    /// epoll only sees kernel buffers, not bytes already assembled here.
    pub fn ready(&self) -> bool {
        let tail = &self.buf[self.start..];
        if tail.is_empty() {
            return false;
        }
        if tail.len() < 4 {
            return !FRAME_MAGIC.to_le_bytes().starts_with(tail);
        }
        if u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) != FRAME_MAGIC {
            return true;
        }
        if tail.len() < FRAME_HEADER_BYTES {
            return false;
        }
        let len = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes")) as usize;
        if len > self.max_frame {
            return true;
        }
        tail.len() >= FRAME_HEADER_BYTES + len
    }

    /// Pops the next complete frame's verified payload.
    ///
    /// Returns `Ok(None)` when more bytes are needed. A complete-but-bad
    /// frame (checksum mismatch, bad magic, oversized length) is consumed
    /// — or skipped up to the next magic candidate — and reported as
    /// `Err`; the caller counts it and calls again.
    ///
    /// # Errors
    ///
    /// [`DecodeError::ChecksumMismatch`] for a framed-but-poisoned
    /// payload; [`DecodeError::Malformed`] on a bad magic (after
    /// resynchronizing) or an oversized length field.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, DecodeError> {
        self.next_frame_with(None)
    }

    /// [`next_frame`](Self::next_frame), drawing the payload's buffer from
    /// `pool` when one is supplied. The frame is verified **in place** over
    /// the stream buffer and only the payload bytes are copied out, so the
    /// classification and error behaviour — and the produced payload bytes
    /// — are identical with or without a pool (proptest-enforced in
    /// `tests/wire_robustness.rs`).
    pub fn next_frame_with(
        &mut self,
        pool: Option<&mut BufPool>,
    ) -> Result<Option<Bytes>, DecodeError> {
        let tail = &self.buf[self.start..];
        if tail.len() < 4 {
            // Not even a magic yet — but reject early if what we do have
            // already disagrees with it, so garbage can't stall forever.
            if !FRAME_MAGIC.to_le_bytes().starts_with(tail) {
                self.resync();
                return Err(DecodeError::Malformed("bad frame magic"));
            }
            return Ok(None);
        }
        let magic = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes"));
        if magic != FRAME_MAGIC {
            self.resync();
            return Err(DecodeError::Malformed("bad frame magic"));
        }
        if tail.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes")) as usize;
        if len > self.max_frame {
            // Skip this header and hunt for the next boundary: the length
            // cannot be trusted enough to jump by it.
            self.start += 4;
            self.resync();
            return Err(DecodeError::Malformed("oversized frame"));
        }
        let total = FRAME_HEADER_BYTES + len;
        if tail.len() < total {
            return Ok(None);
        }
        let expect: [u8; 8] = tail[8..FRAME_HEADER_BYTES].try_into().expect("8 bytes");
        let payload = &tail[FRAME_HEADER_BYTES..total];
        if sha256(payload).as_bytes()[..8] != expect {
            // Consumed whole, like any complete frame: the stream stays in
            // sync at the next boundary.
            self.start += total;
            return Err(DecodeError::ChecksumMismatch);
        }
        let mut out = match pool {
            Some(pool) => pool.get(),
            None => Vec::with_capacity(len),
        };
        out.extend_from_slice(payload);
        self.start += total;
        Ok(Some(Bytes::from(out)))
    }

    /// Drops buffered bytes up to the next magic candidate (or keeps the
    /// last 3 bytes, which may be a magic prefix).
    fn resync(&mut self) {
        let magic = FRAME_MAGIC.to_le_bytes();
        let tail_len = self.buf.len() - self.start;
        let skip = (1..tail_len)
            .find(|&i| {
                let at = self.start + i;
                let window = &self.buf[at..(at + 4).min(self.buf.len())];
                magic.starts_with(window) || window.starts_with(&magic)
            })
            .unwrap_or(tail_len);
        self.start += skip;
    }
}

/// The manager → worker epoch assignment: everything a worker needs before
/// it can start training (§V-B step 1), including the global model.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTask {
    /// Epoch number.
    pub epoch: u64,
    /// The worker's nonce `N_t^w` for PRF-deterministic batch selection.
    pub nonce: u64,
    /// Steps to train this epoch.
    pub steps: u32,
    /// The global model weights to start from.
    pub global_weights: Vec<f32>,
}

/// Encodes an epoch task assignment.
pub fn encode_epoch_task(task: &EpochTask) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(TAG_EPOCH_TASK);
    out.put_u64_le(task.epoch);
    out.put_u64_le(task.nonce);
    out.put_u32_le(task.steps);
    put_weights(&mut out, &task.global_weights);
    out.freeze()
}

/// Decodes an epoch task assignment.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_epoch_task(mut buf: Bytes) -> Result<EpochTask, DecodeError> {
    if buf.remaining() < 1 || buf.get_u8() != TAG_EPOCH_TASK {
        return Err(DecodeError::Malformed("not an epoch task"));
    }
    let epoch = get_u64(&mut buf)?;
    let nonce = get_u64(&mut buf)?;
    let steps = get_u32(&mut buf)?;
    if steps == 0 {
        return Err(DecodeError::Malformed("empty epoch"));
    }
    let global_weights = get_weights(&mut buf)?;
    if global_weights.is_empty() {
        return Err(DecodeError::Malformed("empty global model"));
    }
    Ok(EpochTask {
        epoch,
        nonce,
        steps,
        global_weights,
    })
}

/// Control-plane tags for the socket service (`0x30` block — disjoint
/// from every protocol payload tag so a router can dispatch on the first
/// payload byte).
const TAG_NET_HELLO: u8 = 0x30;
const TAG_NET_WELCOME: u8 = 0x31;
const TAG_NET_BUSY: u8 = 0x32;
const TAG_NET_PING: u8 = 0x33;
const TAG_NET_PONG: u8 = 0x34;
const TAG_NET_COMMIT_SPEC: u8 = 0x35;
const TAG_NET_PROOF_SEQ: u8 = 0x36;
const TAG_NET_CHAOS_GONE: u8 = 0x37;
const TAG_NET_EPOCH_END: u8 = 0x38;
const TAG_NET_SHUTDOWN: u8 = 0x39;
const TAG_NET_STATUS: u8 = 0x3A;
const TAG_NET_STATUS_REPORT: u8 = 0x3B;
/// Last tag of the control block; `is_net_control`/`classify_payload`
/// dispatch on `TAG_NET_HELLO..=TAG_NET_LAST`, so new control tags must be
/// appended before this bound.
const TAG_NET_LAST: u8 = TAG_NET_STATUS_REPORT;

/// Why the server refused service with a [`NetControl::Busy`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The connection table is full and nothing was idle enough to evict.
    PoolFull,
    /// In-flight submissions exceed the load-shedding budget.
    Shedding,
}

impl BusyReason {
    fn to_u8(self) -> u8 {
        match self {
            BusyReason::PoolFull => 0,
            BusyReason::Shedding => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(BusyReason::PoolFull),
            1 => Ok(BusyReason::Shedding),
            _ => Err(DecodeError::Malformed("unknown busy reason")),
        }
    }
}

/// The p-stable LSH family specification a worker needs to derive the
/// epoch's commitment family locally: [`LshFamily::generate`] is a pure
/// function of `(dim, params, seed)`, so shipping these few scalars is
/// equivalent to shipping the whole projection matrix.
///
/// [`LshFamily::generate`]: rpol_lsh::pstable::LshFamily::generate
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilySpec {
    /// Bucket width `r`.
    pub r: f32,
    /// Hashes per group.
    pub k: u32,
    /// Number of groups.
    pub l: u32,
    /// Family generation seed.
    pub seed: u64,
}

/// Connection-management messages for the socket transport (handshake,
/// heartbeats, load shedding, epoch lifecycle, and the chaos-proxy
/// side-channel). These frames never ride the fault-injecting chaos link:
/// they model the *service*, not the lossy network, and keeping them
/// reliable is what lets the socket path reproduce the simulated path's
/// quarantine decisions exactly (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq)]
pub enum NetControl {
    /// Worker → manager: first frame on a connection.
    Hello {
        /// The worker's pool id.
        worker: u32,
        /// Protocol revision (see [`NET_PROTOCOL`]).
        protocol: u32,
    },
    /// Manager → worker: handshake accepted.
    Welcome {
        /// Pool size, so a worker can sanity-check its id.
        workers: u32,
    },
    /// Manager → worker: service refused; back off and retry.
    Busy {
        /// What was saturated.
        reason: BusyReason,
    },
    /// Worker → manager: idle-link heartbeat.
    Ping {
        /// Echo nonce.
        nonce: u64,
    },
    /// Manager → worker: heartbeat reply.
    Pong {
        /// The [`NetControl::Ping`] nonce echoed back.
        nonce: u64,
    },
    /// Manager → worker: this epoch's commitment discipline, sent before
    /// the (chaos-exposed) epoch task so the worker can commit without
    /// shipping the LSH projection matrix.
    CommitSpec {
        /// Epoch number.
        epoch: u64,
        /// [`Scheme`](crate::pool::Scheme) discriminant (0..=3).
        scheme: u8,
        /// LSH family derivation inputs (v2/v3 only).
        family: Option<FamilySpec>,
    },
    /// Manager → worker: the chaos sequence number binding the *next*
    /// proof-request/response pair, mirroring the simulated provider's
    /// per-opening counter (which advances even when a request leg is
    /// exhausted and never reaches the worker).
    ProofSeq {
        /// Sequence number for the next opening's fault draws.
        seq: u64,
    },
    /// Either direction: the sender's chaos draws exhausted the retry
    /// budget for a protocol message, so nothing pristine will follow.
    /// Carries the lengths the receiver needs to re-derive the identical
    /// stats and byte accounting from its own copy of the fault config.
    ChaosGone {
        /// [`MsgKind`](crate::transport::MsgKind) discriminant.
        kind: u8,
        /// The exchange's sequence number.
        seq: u64,
        /// Encoded payload length of the doomed message.
        payload_len: u32,
        /// Raw (unpacked) wire size the payload replaced, for
        /// `bytes_saved` accounting.
        raw_len: u32,
    },
    /// Manager → worker: the epoch's verdict for this worker.
    EpochEnd {
        /// Epoch number.
        epoch: u64,
        /// 0 = accepted, 1 = rejected, 2 = quarantined.
        status: u8,
    },
    /// Manager → worker: the service is closing; stop reconnecting.
    Shutdown,
    /// Anyone → manager: ask for a live introspection snapshot. Answered in
    /// every connection phase (no handshake required), chaos-exempt, and
    /// side-effect-free on the protocol state, so monitoring a server never
    /// perturbs its quarantine decisions or its trace.
    Status,
    /// Manager → anyone: the introspection snapshot, as a JSON document
    /// (see `server::StatusSnapshot` for the schema and its invariants).
    StatusReport {
        /// rpol-json-encoded `StatusSnapshot`.
        json: String,
    },
}

/// Socket control-plane protocol revision.
pub const NET_PROTOCOL: u32 = 1;

/// Encodes a control message.
pub fn encode_net_control(msg: &NetControl) -> Bytes {
    let mut out = BytesMut::new();
    match *msg {
        NetControl::Hello { worker, protocol } => {
            out.put_u8(TAG_NET_HELLO);
            out.put_u32_le(worker);
            out.put_u32_le(protocol);
        }
        NetControl::Welcome { workers } => {
            out.put_u8(TAG_NET_WELCOME);
            out.put_u32_le(workers);
        }
        NetControl::Busy { reason } => {
            out.put_u8(TAG_NET_BUSY);
            out.put_u8(reason.to_u8());
        }
        NetControl::Ping { nonce } => {
            out.put_u8(TAG_NET_PING);
            out.put_u64_le(nonce);
        }
        NetControl::Pong { nonce } => {
            out.put_u8(TAG_NET_PONG);
            out.put_u64_le(nonce);
        }
        NetControl::CommitSpec {
            epoch,
            scheme,
            family,
        } => {
            out.put_u8(TAG_NET_COMMIT_SPEC);
            out.put_u64_le(epoch);
            out.put_u8(scheme);
            match family {
                None => out.put_u8(0),
                Some(f) => {
                    out.put_u8(1);
                    out.put_f32_le(f.r);
                    out.put_u32_le(f.k);
                    out.put_u32_le(f.l);
                    out.put_u64_le(f.seed);
                }
            }
        }
        NetControl::ProofSeq { seq } => {
            out.put_u8(TAG_NET_PROOF_SEQ);
            out.put_u64_le(seq);
        }
        NetControl::ChaosGone {
            kind,
            seq,
            payload_len,
            raw_len,
        } => {
            out.put_u8(TAG_NET_CHAOS_GONE);
            out.put_u8(kind);
            out.put_u64_le(seq);
            out.put_u32_le(payload_len);
            out.put_u32_le(raw_len);
        }
        NetControl::EpochEnd { epoch, status } => {
            out.put_u8(TAG_NET_EPOCH_END);
            out.put_u64_le(epoch);
            out.put_u8(status);
        }
        NetControl::Shutdown => {
            out.put_u8(TAG_NET_SHUTDOWN);
        }
        NetControl::Status => {
            out.put_u8(TAG_NET_STATUS);
        }
        NetControl::StatusReport { ref json } => {
            out.put_u8(TAG_NET_STATUS_REPORT);
            out.put_u32_le(json.len() as u32);
            out.put_slice(json.as_bytes());
        }
    }
    out.freeze()
}

/// Whether a frame payload starts with a control-plane tag (so a router
/// can dispatch without attempting a full decode).
pub fn is_net_control(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(&t) if (TAG_NET_HELLO..=TAG_NET_LAST).contains(&t))
}

/// Coarse payload classification by leading tag — the socket router's
/// dispatch key. Full decoding (and validation) happens downstream in the
/// per-message decoders; this only picks which one to call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadClass {
    /// An epoch submission (any commitment version).
    Submission,
    /// A checkpoint-opening request.
    ProofRequest,
    /// A checkpoint opening (raw or packed).
    ProofResponse,
    /// An epoch assignment.
    EpochTask,
    /// A Merkle-committed committee verdict batch (sub-manager → top
    /// manager).
    CommitteeBatch,
    /// A connection-management control frame.
    Control,
    /// Nothing this protocol revision knows.
    Unknown,
}

/// Classifies a verified frame payload (see [`PayloadClass`]).
pub fn classify_payload(payload: &[u8]) -> PayloadClass {
    match payload.first() {
        Some(
            &(TAG_SUBMISSION_V1 | TAG_SUBMISSION_V2 | TAG_SUBMISSION_BARE | TAG_SUBMISSION_V3),
        ) => PayloadClass::Submission,
        Some(&TAG_PROOF_REQUEST) => PayloadClass::ProofRequest,
        Some(&(TAG_PROOF_RESPONSE | TAG_PROOF_RESPONSE_PACKED)) => PayloadClass::ProofResponse,
        Some(&TAG_EPOCH_TASK) => PayloadClass::EpochTask,
        Some(&TAG_COMMITTEE_BATCH) => PayloadClass::CommitteeBatch,
        Some(&t) if (TAG_NET_HELLO..=TAG_NET_LAST).contains(&t) => PayloadClass::Control,
        _ => PayloadClass::Unknown,
    }
}

/// Leading byte of the optional trace-context payload extension (`'T'`).
/// Deliberately outside every protocol tag block (submissions `0x0x`,
/// proofs `0x1x`, tasks `0x2x`, control `0x3x`, committee `0x4x`), so a
/// wrapped payload can never be mistaken for a bare message and vice versa.
const TAG_TRACE_CTX: u8 = 0x54;
/// Trace extension revision, bumped like `PACKED_WEIGHTS_V1` — receivers
/// reject unknown revisions by leaving the payload untouched (it then
/// classifies as `Unknown`, exactly like any other foreign tag).
const TRACE_CTX_V1: u8 = 1;
/// Total prefix size the extension adds to a payload.
pub const TRACE_EXT_BYTES: usize = 2 + TraceContext::WIRE_BYTES;

/// Prefix a payload with a [`TraceContext`] extension. The wrapped payload
/// still travels in an ordinary checksummed frame; receivers that know the
/// extension call [`split_traced`] before classifying. Senders only wrap
/// when their recorder is enabled, so un-instrumented runs ship byte-for-
/// byte the frames they always did (old frames decode unchanged).
pub fn wrap_traced(ctx: TraceContext, payload: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(TRACE_EXT_BYTES + payload.len());
    out.put_u8(TAG_TRACE_CTX);
    out.put_u8(TRACE_CTX_V1);
    out.put_slice(&ctx.to_bytes());
    out.put_slice(payload);
    out.freeze()
}

/// Strip a trace-context extension, if present and well-formed, returning
/// the context and the *inner* payload. All downstream work — dispatch,
/// decoding, and every length-based chaos/byte account — must use the
/// inner payload, which is what keeps the extension chaos-exempt: the
/// simulated and socket paths draw faults over identical byte counts
/// whether or not tracing is on. A payload without the extension (or with
/// a truncated/unknown-revision one) comes back unchanged with `None`.
pub fn split_traced(payload: &Bytes) -> (Option<TraceContext>, Bytes) {
    if payload.len() >= TRACE_EXT_BYTES && payload[0] == TAG_TRACE_CTX && payload[1] == TRACE_CTX_V1
    {
        if let Some(ctx) = TraceContext::from_bytes(&payload[2..TRACE_EXT_BYTES]) {
            return (Some(ctx), payload.slice(TRACE_EXT_BYTES..));
        }
    }
    (None, payload.clone())
}

/// [`split_traced`] for an owned payload: strips the extension by
/// advancing the buffer's read cursor, so neither arm copies — the inner
/// payload keeps the original allocation, which is what lets the pooled
/// ingest path recycle it after decoding. Splitting semantics (including
/// the pass-through cases) are identical to [`split_traced`].
pub fn split_traced_owned(mut payload: Bytes) -> (Option<TraceContext>, Bytes) {
    if payload.len() >= TRACE_EXT_BYTES && payload[0] == TAG_TRACE_CTX && payload[1] == TRACE_CTX_V1
    {
        if let Some(ctx) = TraceContext::from_bytes(&payload[2..TRACE_EXT_BYTES]) {
            payload.advance(TRACE_EXT_BYTES);
            return (Some(ctx), payload);
        }
    }
    (None, payload)
}

/// Encodes a committee verdict batch: the only message a sub-manager sends
/// up the hierarchy. The verdict entries are shipped as length-prefixed
/// **canonical leaf encodings** — the exact byte strings the batch's
/// Merkle tree is built over — so the receiver re-derives the tree from
/// the wire bytes and checks the advertised root against it without a
/// second serialization.
pub fn encode_committee_batch(batch: &crate::committee::CommitteeBatch) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(TAG_COMMITTEE_BATCH);
    out.put_u64_le(batch.epoch);
    out.put_u32_le(batch.committee as u32);
    put_digest(&mut out, &batch.root);
    out.put_u64_le(batch.commit_bytes);
    out.put_u32_le(batch.verdicts.len() as u32);
    for (worker, verdict) in &batch.verdicts {
        let leaf = crate::committee::encode_verdict_leaf(*worker, verdict);
        out.put_u32_le(leaf.len() as u32);
        out.put_slice(&leaf);
    }
    out.freeze()
}

/// Decodes a committee verdict batch.
///
/// Validates shape only — the returned batch's root is the **claimed**
/// root; callers must check [`root_consistent`] before trusting it, since
/// a sub-manager could commit to one verdict set and ship another.
///
/// [`root_consistent`]: crate::committee::CommitteeBatch::root_consistent
///
/// # Errors
///
/// [`DecodeError`] on a wrong tag, truncation, an empty batch, malformed
/// leaves, or trailing bytes.
pub fn decode_committee_batch(
    mut buf: Bytes,
) -> Result<crate::committee::CommitteeBatch, DecodeError> {
    if buf.remaining() < 1 || buf.get_u8() != TAG_COMMITTEE_BATCH {
        return Err(DecodeError::Malformed("expected committee batch tag"));
    }
    let epoch = get_u64(&mut buf)?;
    let committee = get_u32(&mut buf)? as usize;
    let root = get_digest(&mut buf)?;
    let commit_bytes = get_u64(&mut buf)?;
    let count = get_u32(&mut buf)? as usize;
    if count == 0 {
        return Err(DecodeError::Malformed("empty committee batch"));
    }
    // Each leaf carries at least a 4-byte length prefix; bound the
    // allocation by what is actually present.
    checked_count(&buf, count, 4)?;
    let mut verdicts = Vec::with_capacity(count);
    for _ in 0..count {
        let len = get_u32(&mut buf)? as usize;
        checked_count(&buf, len, 1)?;
        let entry =
            crate::committee::decode_verdict_leaf(&buf[..len]).map_err(DecodeError::Malformed)?;
        buf.advance(len);
        verdicts.push(entry);
    }
    if buf.remaining() > 0 {
        return Err(DecodeError::Malformed("trailing bytes after batch"));
    }
    Ok(crate::committee::CommitteeBatch {
        epoch,
        committee,
        root,
        verdicts,
        commit_bytes,
    })
}

/// Decodes a control message.
///
/// # Errors
///
/// [`DecodeError`] on unknown tags, truncation, or invalid fields.
pub fn decode_net_control(mut buf: Bytes) -> Result<NetControl, DecodeError> {
    decode_net_control_in(&mut buf)
}

/// [`decode_net_control`] reading through a borrowed buffer, so the caller
/// keeps ownership of the underlying allocation and can recycle it into a
/// [`BufPool`] after the decode.
pub fn decode_net_control_in(buf: &mut Bytes) -> Result<NetControl, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let msg = match tag {
        TAG_NET_HELLO => NetControl::Hello {
            worker: get_u32(buf)?,
            protocol: get_u32(buf)?,
        },
        TAG_NET_WELCOME => NetControl::Welcome {
            workers: get_u32(buf)?,
        },
        TAG_NET_BUSY => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            NetControl::Busy {
                reason: BusyReason::from_u8(buf.get_u8())?,
            }
        }
        TAG_NET_PING => NetControl::Ping {
            nonce: get_u64(buf)?,
        },
        TAG_NET_PONG => NetControl::Pong {
            nonce: get_u64(buf)?,
        },
        TAG_NET_COMMIT_SPEC => {
            let epoch = get_u64(buf)?;
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let scheme = buf.get_u8();
            if scheme > 3 {
                return Err(DecodeError::Malformed("unknown scheme"));
            }
            let family = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let r = buf.get_f32_le();
                    if !r.is_finite() || r <= 0.0 {
                        return Err(DecodeError::Malformed("bad bucket width"));
                    }
                    let k = get_u32(buf)?;
                    let l = get_u32(buf)?;
                    if k == 0 || l == 0 {
                        return Err(DecodeError::Malformed("empty lsh family"));
                    }
                    Some(FamilySpec {
                        r,
                        k,
                        l,
                        seed: get_u64(buf)?,
                    })
                }
                _ => return Err(DecodeError::Malformed("bad family flag")),
            };
            NetControl::CommitSpec {
                epoch,
                scheme,
                family,
            }
        }
        TAG_NET_PROOF_SEQ => NetControl::ProofSeq { seq: get_u64(buf)? },
        TAG_NET_CHAOS_GONE => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let kind = buf.get_u8();
            if !(1..=4).contains(&kind) {
                return Err(DecodeError::Malformed("unknown message kind"));
            }
            NetControl::ChaosGone {
                kind,
                seq: get_u64(buf)?,
                payload_len: get_u32(buf)?,
                raw_len: get_u32(buf)?,
            }
        }
        TAG_NET_EPOCH_END => {
            let epoch = get_u64(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let status = buf.get_u8();
            if status > 2 {
                return Err(DecodeError::Malformed("unknown verdict status"));
            }
            NetControl::EpochEnd { epoch, status }
        }
        TAG_NET_SHUTDOWN => NetControl::Shutdown,
        TAG_NET_STATUS => NetControl::Status,
        TAG_NET_STATUS_REPORT => {
            let len = get_u32(buf)? as usize;
            checked_count(buf, len, 1)?;
            let json = std::str::from_utf8(&buf[..len])
                .map_err(|_| DecodeError::Malformed("status report is not UTF-8"))?
                .to_string();
            buf.advance(len);
            NetControl::StatusReport { json }
        }
        _ => return Err(DecodeError::Malformed("not a control message")),
    };
    if buf.remaining() > 0 {
        return Err(DecodeError::Malformed("trailing control bytes"));
    }
    Ok(msg)
}

/// Encodes a worker's epoch submission (final weights + commitment).
pub fn encode_submission(final_weights: &[f32], commitment: Option<&EpochCommitment>) -> Bytes {
    let mut out = BytesMut::new();
    match commitment {
        None => {
            out.put_u8(TAG_SUBMISSION_BARE);
            put_weights(&mut out, final_weights);
        }
        Some(EpochCommitment::V1(list)) => {
            out.put_u8(TAG_SUBMISSION_V1);
            put_weights(&mut out, final_weights);
            out.put_u32_le(list.len() as u32);
            for i in 0..list.len() {
                put_digest(&mut out, &list.digest_at(i));
            }
        }
        Some(EpochCommitment::V2(lsh)) => {
            out.put_u8(TAG_SUBMISSION_V2);
            put_weights(&mut out, final_weights);
            out.put_u32_le(lsh.len() as u32);
            out.put_u32_le(lsh.entry(0).len() as u32);
            for i in 0..lsh.len() {
                for d in lsh.entry(i) {
                    put_digest(&mut out, d);
                }
            }
        }
        Some(EpochCommitment::V3(qc)) => {
            // V3 weights live on the bf16 lattice, so the final weights
            // ship as a packed block; each checkpoint entry carries its l
            // group digests followed by the packed-image digest.
            out.put_u8(TAG_SUBMISSION_V3);
            put_weights_packed(&mut out, final_weights);
            out.put_u32_le(qc.len() as u32);
            out.put_u32_le(qc.entry(0).len() as u32);
            for i in 0..qc.len() {
                for d in qc.entry(i) {
                    put_digest(&mut out, d);
                }
                put_digest(&mut out, qc.quant_digest(i));
            }
        }
    }
    out.freeze()
}

/// Wire bytes an uncompressed encoding of the same submission would
/// occupy — the baseline the transport's `bytes_saved` counter measures
/// [`encode_submission`] against.
pub fn submission_raw_wire_size(n_weights: usize, commitment: Option<&EpochCommitment>) -> usize {
    1 + raw_weights_wire_size(n_weights)
        + match commitment {
            None => 0,
            Some(c @ EpochCommitment::V1(_)) => 4 + c.wire_size(),
            Some(c @ (EpochCommitment::V2(_) | EpochCommitment::V3(_))) => 8 + c.wire_size(),
        }
}

/// Decodes an epoch submission.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_submission(
    mut buf: Bytes,
) -> Result<(Vec<f32>, Option<EpochCommitment>), DecodeError> {
    decode_submission_in(&mut buf)
}

/// [`decode_submission`] reading through a borrowed buffer (see
/// [`decode_net_control_in`] for why: the ingest path recycles the payload
/// allocation after decoding).
pub fn decode_submission_in(
    buf: &mut Bytes,
) -> Result<(Vec<f32>, Option<EpochCommitment>), DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let weights = if tag == TAG_SUBMISSION_V3 {
        get_weights_packed(buf)?
    } else {
        get_weights(buf)?
    };
    let commitment = match tag {
        TAG_SUBMISSION_BARE => None,
        TAG_SUBMISSION_V1 => {
            let n = get_u32(buf)? as usize;
            if n == 0 {
                return Err(DecodeError::Malformed("empty commitment"));
            }
            checked_count(buf, n, 32)?;
            let digests: Result<Vec<Digest>, _> = (0..n).map(|_| get_digest(buf)).collect();
            Some(EpochCommitment::V1(HashListCommitment::commit(&digests?)))
        }
        TAG_SUBMISSION_V2 => {
            let n = get_u32(buf)? as usize;
            let l = get_u32(buf)? as usize;
            if n == 0 || l == 0 {
                return Err(DecodeError::Malformed("empty commitment"));
            }
            let per_entry = l
                .checked_mul(32)
                .ok_or(DecodeError::Malformed("count overflow"))?;
            checked_count(buf, n, per_entry)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let entry: Result<Vec<Digest>, _> = (0..l).map(|_| get_digest(buf)).collect();
                entries.push(entry?);
            }
            Some(EpochCommitment::V2(LshCommitment::from_entries(entries)))
        }
        TAG_SUBMISSION_V3 => {
            let n = get_u32(buf)? as usize;
            let l = get_u32(buf)? as usize;
            if n == 0 || l == 0 {
                return Err(DecodeError::Malformed("empty commitment"));
            }
            // l group digests + 1 quant digest per checkpoint.
            let per_entry = (l + 1)
                .checked_mul(32)
                .ok_or(DecodeError::Malformed("count overflow"))?;
            checked_count(buf, n, per_entry)?;
            let mut entries = Vec::with_capacity(n);
            let mut quant_digests = Vec::with_capacity(n);
            for _ in 0..n {
                let entry: Result<Vec<Digest>, _> = (0..l).map(|_| get_digest(buf)).collect();
                entries.push(entry?);
                quant_digests.push(get_digest(buf)?);
            }
            Some(EpochCommitment::V3(QuantCommitment::from_parts(
                entries,
                quant_digests,
            )))
        }
        _ => return Err(DecodeError::Malformed("unknown submission tag")),
    };
    Ok((weights, commitment))
}

/// Encodes a proof request: the sampled checkpoint indices.
pub fn encode_proof_request(samples: &[usize]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(TAG_PROOF_REQUEST);
    out.put_u32_le(samples.len() as u32);
    for &s in samples {
        out.put_u32_le(s as u32);
    }
    out.freeze()
}

/// Decodes a proof request.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_proof_request(mut buf: Bytes) -> Result<Vec<usize>, DecodeError> {
    if buf.remaining() < 1 || buf.get_u8() != TAG_PROOF_REQUEST {
        return Err(DecodeError::Malformed("not a proof request"));
    }
    let n = get_u32(&mut buf)? as usize;
    checked_count(&buf, n, 4)?;
    (0..n)
        .map(|_| get_u32(&mut buf).map(|v| v as usize))
        .collect()
}

/// Encodes a proof response: one opened checkpoint.
pub fn encode_proof_response(index: usize, weights: &[f32]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(TAG_PROOF_RESPONSE);
    out.put_u32_le(index as u32);
    put_weights(&mut out, weights);
    out.freeze()
}

/// Encodes a proof response with the packed bf16 weight block (RPoLv3
/// openings: the checkpoint lives on the lattice, so the packed image
/// round-trips losslessly at ~half the bytes).
pub fn encode_proof_response_packed(index: usize, weights: &[f32]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(TAG_PROOF_RESPONSE_PACKED);
    out.put_u32_le(index as u32);
    put_weights_packed(&mut out, weights);
    out.freeze()
}

/// Wire bytes an uncompressed [`encode_proof_response`] of `n_weights`
/// occupies — the `bytes_saved` baseline for packed openings.
pub fn proof_response_raw_wire_size(n_weights: usize) -> usize {
    1 + 4 + raw_weights_wire_size(n_weights)
}

/// Decodes a proof response, raw or packed — the frame's tag selects the
/// weight codec, so pre-V3 peers interoperate unchanged.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_proof_response(mut buf: Bytes) -> Result<(usize, Vec<f32>), DecodeError> {
    decode_proof_response_in(&mut buf)
}

/// [`decode_proof_response`] reading through a borrowed buffer (see
/// [`decode_net_control_in`]).
pub fn decode_proof_response_in(buf: &mut Bytes) -> Result<(usize, Vec<f32>), DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != TAG_PROOF_RESPONSE && tag != TAG_PROOF_RESPONSE_PACKED {
        return Err(DecodeError::Malformed("not a proof response"));
    }
    let index = get_u32(buf)? as usize;
    let weights = if tag == TAG_PROOF_RESPONSE_PACKED {
        get_weights_packed(buf)?
    } else {
        get_weights(buf)?
    };
    Ok((index, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_lsh::{LshFamily, LshParams};

    fn checkpoints() -> Vec<Vec<f32>> {
        (0..4).map(|i| vec![i as f32 * 0.25; 12]).collect()
    }

    #[test]
    fn bare_submission_roundtrip() {
        let weights = vec![1.0f32, -2.5, 3.75];
        let encoded = encode_submission(&weights, None);
        let (w, c) = decode_submission(encoded).expect("decodes");
        assert_eq!(w, weights);
        assert!(c.is_none());
    }

    #[test]
    fn v1_submission_roundtrip() {
        let cps = checkpoints();
        let commitment = EpochCommitment::commit_v1(&cps);
        let encoded = encode_submission(&cps[3], Some(&commitment));
        let (w, c) = decode_submission(encoded).expect("decodes");
        assert_eq!(w, cps[3]);
        assert_eq!(c, Some(commitment));
    }

    #[test]
    fn v2_submission_roundtrip() {
        let cps = checkpoints();
        let family = LshFamily::generate(12, LshParams::new(1.0, 2, 3), 5);
        let commitment = EpochCommitment::commit_v2(&cps, &family);
        let encoded = encode_submission(&cps[3], Some(&commitment));
        let (w, c) = decode_submission(encoded).expect("decodes");
        assert_eq!(w, cps[3]);
        assert_eq!(c, Some(commitment));
    }

    #[test]
    fn encoded_size_matches_accounting() {
        // Wire size of a v2 submission ≈ weights + 32·l per checkpoint.
        let cps = checkpoints();
        let family = LshFamily::generate(12, LshParams::new(1.0, 2, 3), 5);
        let commitment = EpochCommitment::commit_v2(&cps, &family);
        let encoded = encode_submission(&cps[3], Some(&commitment));
        let expected = 1 + 4 + 12 * 4 + 8 + commitment.wire_size();
        assert_eq!(encoded.len(), expected);
    }

    /// Lattice checkpoints (low 16 bits zero) for V3 wire tests.
    fn lattice_checkpoints() -> Vec<Vec<f32>> {
        checkpoints()
            .iter()
            .map(|cp| rpol_tensor::quant::bf16_image(cp))
            .collect()
    }

    #[test]
    fn v3_submission_roundtrip() {
        let cps = lattice_checkpoints();
        let family = LshFamily::generate(12, LshParams::new(1.0, 2, 3), 5);
        let commitment = EpochCommitment::commit_v3(&cps, &family);
        let encoded = encode_submission(&cps[3], Some(&commitment));
        let (w, c) = decode_submission(encoded).expect("decodes");
        assert_eq!(w, cps[3]);
        assert_eq!(c, Some(commitment));
    }

    #[test]
    fn v3_submission_shrinks_weight_bytes() {
        // Realistic weights: small values in a narrow exponent band, the
        // case the hi-plane RLE is built for. The packed block must cut
        // the weight payload by at least the guaranteed ~50%.
        let mut rng = rpol_tensor::rng::Pcg32::seed_from(99);
        let mut weights: Vec<f32> = (0..4096).map(|_| rng.next_normal() * 0.05).collect();
        rpol_tensor::quant::snap_to_bf16(&mut weights);
        let cps = vec![weights.clone(); 3];
        let family = LshFamily::generate(4096, LshParams::new(1.0, 2, 3), 5);
        let commitment = EpochCommitment::commit_v3(&cps, &family);
        let encoded = encode_submission(&weights, Some(&commitment));
        let raw = submission_raw_wire_size(weights.len(), Some(&commitment));
        let saved = raw - encoded.len();
        assert!(
            saved * 10 >= raw * 4,
            "only {saved} of {raw} bytes saved (<40%)"
        );
    }

    #[test]
    fn packed_proof_response_roundtrip() {
        let weights = rpol_tensor::quant::bf16_image(&[0.5f32, -0.25, 1.5e-3, 0.0, -7.25]);
        let encoded = encode_proof_response_packed(7, &weights);
        assert!(encoded.len() < proof_response_raw_wire_size(weights.len()));
        let (ix, w) = decode_proof_response(encoded).expect("ok");
        assert_eq!(ix, 7);
        assert_eq!(w, weights);
    }

    #[test]
    fn packed_codec_falls_back_to_raw_hi_plane() {
        // A uniformly random hi plane defeats delta-RLE: runs of equal
        // deltas average barely more than one element, so RLE needs ~2
        // bytes per weight. The flag byte must select the raw plane and
        // the block still round-trips.
        let mut rng = rpol_tensor::rng::Pcg32::seed_from(0xDEFEA7);
        let weights: Vec<f32> = (0..64)
            .map(|_| f32::from_bits((rng.next_u32() & 0xFFFF) << 16))
            .collect();
        let mut out = BytesMut::new();
        put_weights_packed(&mut out, &weights);
        // version + count + mode + hi plane + lo plane: exactly 2n + 6.
        assert_eq!(out.len(), 1 + 4 + 1 + 2 * weights.len());
        let mut buf = out.freeze();
        let back = get_weights_packed(&mut buf).expect("decodes");
        assert_eq!(back, weights);
    }

    #[test]
    fn packed_codec_rejects_unknown_version_and_mode() {
        let weights = rpol_tensor::quant::bf16_image(&[1.0f32; 8]);
        let mut out = BytesMut::new();
        put_weights_packed(&mut out, &weights);
        let good = out.freeze();

        let mut bad_version = good.to_vec();
        bad_version[0] = 0x7F;
        assert_eq!(
            get_weights_packed(&mut Bytes::from(bad_version)),
            Err(DecodeError::Malformed("unknown packed-weight version"))
        );
        let mut bad_mode = good.to_vec();
        bad_mode[5] = 0x7F;
        assert_eq!(
            get_weights_packed(&mut Bytes::from(bad_mode)),
            Err(DecodeError::Malformed("unknown hi-plane mode"))
        );
    }

    #[test]
    fn packed_codec_rejects_inconsistent_rle() {
        // Hand-build a delta-RLE block whose runs overshoot the count.
        let mut out = BytesMut::new();
        out.put_u8(PACKED_WEIGHTS_V1);
        out.put_u32_le(3); // claims 3 weights
        out.put_u8(HI_PLANE_DELTA_RLE);
        out.put_u32_le(2); // one (delta, run) pair
        out.put_u8(1);
        out.put_u8(200); // run of 200 > 3
        out.put_slice(&[0u8; 3]); // lo plane
        assert_eq!(
            get_weights_packed(&mut out.freeze()),
            Err(DecodeError::Malformed("RLE run overflow"))
        );
        // And a zero-length run.
        let mut out = BytesMut::new();
        out.put_u8(PACKED_WEIGHTS_V1);
        out.put_u32_le(3);
        out.put_u8(HI_PLANE_DELTA_RLE);
        out.put_u32_le(2);
        out.put_u8(1);
        out.put_u8(0);
        out.put_slice(&[0u8; 3]);
        assert_eq!(
            get_weights_packed(&mut out.freeze()),
            Err(DecodeError::Malformed("zero RLE run"))
        );
        // Runs that end short of the claimed count.
        let mut out = BytesMut::new();
        out.put_u8(PACKED_WEIGHTS_V1);
        out.put_u32_le(3);
        out.put_u8(HI_PLANE_DELTA_RLE);
        out.put_u32_le(2);
        out.put_u8(1);
        out.put_u8(2); // only 2 of 3
        out.put_slice(&[0u8; 3]);
        assert_eq!(
            get_weights_packed(&mut out.freeze()),
            Err(DecodeError::Malformed("RLE underrun"))
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Round-trip: any lattice vector survives the packed codec
        /// bit for bit, and the block never exceeds 2n + 10 bytes.
        #[test]
        fn packed_codec_roundtrips_lattice_vectors(seed in 0u64..1_000, len in 0usize..300) {
            let mut rng = rpol_tensor::rng::Pcg32::seed_from(seed ^ 0xB16_C0DE);
            let weights: Vec<f32> = (0..len)
                .map(|_| f32::from_bits((rng.next_u32() & 0xFFFF_0000) >> 16 << 16))
                .collect();
            let mut out = BytesMut::new();
            put_weights_packed(&mut out, &weights);
            proptest::prop_assert!(out.len() <= 2 * len + 10);
            let mut buf = out.freeze();
            let back = get_weights_packed(&mut buf).expect("roundtrip");
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            proptest::prop_assert_eq!(bits(&back), bits(&weights));
            proptest::prop_assert_eq!(buf.remaining(), 0);
        }

        /// Fuzz: truncating a valid V3 submission at any byte must fail
        /// with a clean DecodeError — never panic, never misdecode.
        #[test]
        fn truncated_v3_submission_never_panics(cut_seed in 0u64..200) {
            let cps = lattice_checkpoints();
            let family = LshFamily::generate(12, LshParams::new(1.0, 2, 3), 5);
            let commitment = EpochCommitment::commit_v3(&cps, &family);
            let encoded = encode_submission(&cps[3], Some(&commitment));
            let cut = (cut_seed as usize * 0x9E37) % encoded.len();
            proptest::prop_assert!(decode_submission(encoded.slice(0..cut)).is_err());
        }

        /// Fuzz: a single corrupted byte in a packed proof response either
        /// decodes to *something* or errors — it must never panic.
        #[test]
        fn corrupt_packed_response_never_panics(pos_seed in 0u64..500, xor in 1u8..=255) {
            let weights = rpol_tensor::quant::bf16_image(
                &(0..40).map(|i| (i as f32) * 0.125 - 2.0).collect::<Vec<f32>>(),
            );
            let encoded = encode_proof_response_packed(3, &weights);
            let pos = (pos_seed as usize * 0x5851) % encoded.len();
            let mut bad = encoded.to_vec();
            bad[pos] ^= xor;
            let _ = decode_proof_response(Bytes::from(bad));
        }
    }

    #[test]
    fn proof_request_roundtrip() {
        let samples = vec![0usize, 3, 7];
        let decoded = decode_proof_request(encode_proof_request(&samples)).expect("ok");
        assert_eq!(decoded, samples);
    }

    #[test]
    fn proof_response_roundtrip() {
        let weights = vec![0.5f32; 20];
        let (ix, w) = decode_proof_response(encode_proof_response(7, &weights)).expect("ok");
        assert_eq!(ix, 7);
        assert_eq!(w, weights);
    }

    #[test]
    fn truncated_messages_rejected() {
        let cps = checkpoints();
        let commitment = EpochCommitment::commit_v1(&cps);
        let encoded = encode_submission(&cps[0], Some(&commitment));
        for cut in [0, 1, 5, encoded.len() - 1] {
            let sliced = encoded.slice(0..cut);
            assert!(
                decode_submission(sliced).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut out = BytesMut::new();
        out.put_u8(0xEE);
        out.put_u32_le(0);
        assert_eq!(
            decode_submission(out.freeze()),
            Err(DecodeError::Malformed("unknown submission tag"))
        );
    }

    #[test]
    fn wrong_tag_for_request_rejected() {
        let resp = encode_proof_response(1, &[1.0]);
        assert!(decode_proof_request(resp).is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocation() {
        // A submission whose weight count claims u32::MAX values: the
        // decoder must fail on the length check, never reserve ~16 GB.
        let mut out = BytesMut::new();
        out.put_u8(TAG_SUBMISSION_BARE);
        out.put_u32_le(u32::MAX);
        out.put_f32_le(1.0);
        assert_eq!(decode_submission(out.freeze()), Err(DecodeError::Truncated));
        // Same for a v2 commitment with hostile n×l.
        let mut out = BytesMut::new();
        out.put_u8(TAG_SUBMISSION_V2);
        out.put_u32_le(0); // no weights
        out.put_u32_le(u32::MAX);
        out.put_u32_le(u32::MAX);
        assert!(decode_submission(out.freeze()).is_err());
        // And a proof request claiming 4 billion samples.
        let mut out = BytesMut::new();
        out.put_u8(TAG_PROOF_REQUEST);
        out.put_u32_le(u32::MAX);
        assert_eq!(
            decode_proof_request(out.freeze()),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn epoch_task_roundtrip() {
        let task = EpochTask {
            epoch: 7,
            nonce: 0xDEAD_BEEF,
            steps: 15,
            global_weights: vec![0.25f32, -1.5, 3.0],
        };
        let decoded = decode_epoch_task(encode_epoch_task(&task)).expect("ok");
        assert_eq!(decoded, task);
    }

    #[test]
    fn epoch_task_rejects_degenerate_fields() {
        let mut task = EpochTask {
            epoch: 0,
            nonce: 1,
            steps: 0,
            global_weights: vec![1.0],
        };
        assert!(decode_epoch_task(encode_epoch_task(&task)).is_err());
        task.steps = 4;
        task.global_weights.clear();
        assert!(decode_epoch_task(encode_epoch_task(&task)).is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let payload = encode_proof_request(&[1, 2, 3]);
        let framed = seal_frame(&payload);
        assert_eq!(framed.len(), payload.len() + 16);
        let opened = open_frame(framed).expect("opens");
        assert_eq!(opened, payload);
    }

    #[test]
    fn frame_detects_single_byte_corruption_anywhere() {
        let payload = encode_proof_response(3, &[0.5f32; 8]);
        let framed = seal_frame(&payload);
        for pos in 0..framed.len() {
            let mut bad = framed.to_vec();
            bad[pos] ^= 0x40;
            assert!(
                open_frame(Bytes::from(bad)).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn frame_detects_truncation_and_padding() {
        let payload = encode_proof_request(&[9]);
        let framed = seal_frame(&payload);
        for cut in 0..framed.len() {
            assert!(
                open_frame(framed.slice(0..cut)).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut padded = framed.to_vec();
        padded.push(0);
        assert_eq!(
            open_frame(Bytes::from(padded)),
            Err(DecodeError::Malformed("frame length mismatch"))
        );
    }

    #[test]
    fn status_controls_roundtrip_and_classify_as_control() {
        for msg in [
            NetControl::Status,
            NetControl::StatusReport {
                json: "{\"net\":{\"accepted\":3}}".to_string(),
            },
        ] {
            let encoded = encode_net_control(&msg);
            assert!(is_net_control(&encoded));
            assert_eq!(classify_payload(&encoded), PayloadClass::Control);
            assert_eq!(decode_net_control(encoded).expect("decodes"), msg);
        }
        // Non-UTF-8 report bodies must be rejected, not mangled.
        let mut bad = BytesMut::new();
        bad.put_u8(0x3B);
        bad.put_u32_le(2);
        bad.put_slice(&[0xFF, 0xFE]);
        assert!(decode_net_control(bad.freeze()).is_err());
    }

    #[test]
    fn trace_extension_roundtrips_and_strips_cleanly() {
        let ctx = TraceContext {
            trace_id: 11,
            parent_span: 22,
            watermark: 33,
        };
        let inner = encode_net_control(&NetControl::Ping { nonce: 9 });
        let wrapped = wrap_traced(ctx, &inner);
        assert_eq!(wrapped.len(), inner.len() + TRACE_EXT_BYTES);
        // A wrapped payload is not a control/submission/anything until it
        // is split — the 0x54 tag is outside every protocol block.
        assert_eq!(classify_payload(&wrapped), PayloadClass::Unknown);
        let (got_ctx, got_inner) = split_traced(&wrapped);
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(got_inner, inner);
        assert_eq!(classify_payload(&got_inner), PayloadClass::Control);
    }

    #[test]
    fn split_traced_leaves_plain_payloads_untouched() {
        // Every existing message class passes through unchanged — the
        // "old frames decode unchanged" guarantee.
        let plain = [
            encode_net_control(&NetControl::Shutdown),
            encode_proof_request(&[1, 2]),
            encode_submission(&[1.0f32, 2.0], None),
        ];
        for payload in plain {
            let (ctx, inner) = split_traced(&payload);
            assert_eq!(ctx, None);
            assert_eq!(inner, payload);
        }
        // Truncated or unknown-revision extensions also pass through (and
        // then classify as Unknown, like any foreign tag).
        let ctx = TraceContext::default();
        let wrapped = wrap_traced(ctx, &encode_proof_request(&[3]));
        let truncated = wrapped.slice(0..TRACE_EXT_BYTES - 1);
        assert_eq!(split_traced(&truncated).0, None);
        let mut unknown_rev = wrapped.to_vec();
        unknown_rev[1] = 2;
        let unknown_rev = Bytes::from(unknown_rev);
        assert_eq!(split_traced(&unknown_rev).0, None);
        assert_eq!(classify_payload(&unknown_rev), PayloadClass::Unknown);
    }
}
