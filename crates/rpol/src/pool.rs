//! The assembled mining pool: data sharding, multi-epoch training with
//! verification, accuracy tracking, and accounting — the engine behind the
//! Fig. 6 attack experiments and the §VII-E overhead measurements.

use crate::adversary::WorkerBehavior;
use crate::manager::{EpochReport, PoolManager};
use crate::tasks::TaskConfig;
use crate::worker::PoolWorker;
use rpol_crypto::Address;
use rpol_nn::data::SyntheticImages;
use rpol_nn::metrics::accuracy;
use rpol_sim::gpu::GpuModel;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Which verification scheme the pool runs (§VII-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// No verification — every submission is aggregated (insecure).
    Baseline,
    /// Sampled replay with raw-weight proofs.
    RPoLv1,
    /// Sampled replay with LSH commitments and adaptive calibration.
    RPoLv2,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scheme::Baseline => "Baseline",
            Scheme::RPoLv1 => "RPoLv1",
            Scheme::RPoLv2 => "RPoLv2",
        };
        f.write_str(name)
    }
}

/// Pool-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// The training task.
    pub task: TaskConfig,
    /// Verification scheme.
    pub scheme: Scheme,
    /// Number of epochs to run.
    pub epochs: usize,
    /// Training steps per worker per epoch.
    pub steps_per_epoch: usize,
    /// Training samples drawn for the whole pool (split into n+1 shards).
    pub train_samples: usize,
    /// Held-out test samples for accuracy tracking.
    pub test_samples: usize,
    /// Checkpoints sampled per worker per epoch (paper: 3).
    pub q_samples: usize,
    /// Master seed.
    pub seed: u64,
}

impl PoolConfig {
    /// A minimal configuration for tests and doc examples.
    pub fn tiny_demo(scheme: Scheme) -> Self {
        Self {
            task: TaskConfig::tiny(),
            scheme,
            epochs: 2,
            steps_per_epoch: 4,
            train_samples: 160,
            test_samples: 40,
            q_samples: 2,
            seed: 0xD0_0D,
        }
    }

    /// A configuration matching the paper's experimental shape: task A/B,
    /// 10 workers, 3 sampled checkpoints.
    pub fn paper_like(task: TaskConfig, scheme: Scheme, epochs: usize) -> Self {
        Self {
            task,
            scheme,
            epochs,
            steps_per_epoch: 15,
            train_samples: 1_760, // 11 shards × 160
            test_samples: 300,
            q_samples: 3,
            seed: 0x009A_9E12,
        }
    }
}

/// One epoch's row in the pool report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The manager's protocol report.
    pub report: EpochReport,
    /// Global-model test accuracy after this epoch's aggregation.
    pub test_accuracy: f32,
    /// Real wall-clock seconds the epoch took in this process (training +
    /// verification + evaluation) — the in-process complement to the
    /// analytic Table II model.
    pub wall_seconds: f64,
}

/// The full run record (returned by [`MiningPool::run`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolReport {
    /// The scheme that produced this report.
    pub scheme: Scheme,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Total checkpoint storage held by workers at the end (bytes).
    pub worker_storage_bytes: u64,
}

impl PoolReport {
    /// The accuracy curve across epochs.
    pub fn accuracy_curve(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.test_accuracy).collect()
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.test_accuracy).unwrap_or(0.0)
    }

    /// Total rejected submissions across the run.
    pub fn rejections(&self) -> usize {
        self.epochs.iter().map(|e| e.report.rejected.len()).sum()
    }

    /// Total accepted submissions across the run.
    pub fn acceptances(&self) -> usize {
        self.epochs.iter().map(|e| e.report.accepted.len()).sum()
    }

    /// Total double-checks triggered across the run.
    pub fn double_checks(&self) -> usize {
        self.epochs.iter().map(|e| e.report.double_checks).sum()
    }

    /// Total bytes moved across the run.
    pub fn total_comm_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.report.comm.total()).sum()
    }

    /// Total wall-clock seconds across epochs.
    pub fn total_wall_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.wall_seconds).sum()
    }
}

/// A mining pool: one manager plus a set of (possibly adversarial)
/// workers, run for a configured number of epochs.
///
/// # Examples
///
/// ```
/// use rpol::pool::{MiningPool, PoolConfig, Scheme};
/// use rpol::adversary::WorkerBehavior;
///
/// let mut pool = MiningPool::new(
///     PoolConfig::tiny_demo(Scheme::RPoLv1),
///     vec![WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
/// );
/// let report = pool.run();
/// assert!(report.rejections() > 0); // the replayer is caught
/// ```
pub struct MiningPool {
    config: PoolConfig,
    manager: PoolManager,
    workers: Vec<PoolWorker>,
    test_inputs: rpol_tensor::Tensor,
    test_labels: Vec<usize>,
}

impl MiningPool {
    /// Builds a pool with one worker per behaviour entry.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors` is empty or the configured sample counts are
    /// too small for `behaviors.len() + 1` shards.
    pub fn new(config: PoolConfig, behaviors: Vec<WorkerBehavior>) -> Self {
        assert!(!behaviors.is_empty(), "pool needs at least one worker");
        let n = behaviors.len();
        let mut rng = Pcg32::seed_from(config.seed);
        let data = SyntheticImages::generate(&config.task.spec, config.train_samples, &mut rng);
        let mut shards = data.shard(n + 1);
        let manager_shard = shards.pop().expect("manager shard");
        let test = SyntheticImages::generate(&config.task.spec, config.test_samples, &mut rng);
        let (test_inputs, test_labels) = test.full_batch();

        let address = Address::derive(&config.seed.to_be_bytes());
        let workers: Vec<PoolWorker> = behaviors
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (&behavior, shard))| {
                // Workers register heterogeneous GPUs, cycling the catalogue
                // (the manager calibrates against the top-2).
                let gpu = GpuModel::ALL[i % GpuModel::ALL.len()];
                PoolWorker::new(i, &config.task, &address, shard, gpu, behavior)
            })
            .collect();
        let mut manager = PoolManager::new(
            config.task,
            config.scheme,
            address,
            manager_shard,
            config.q_samples,
            config.steps_per_epoch,
            config.seed,
        );
        // §V-C: calibrate on the top-2 GPUs registered by the workers.
        let mut registered: Vec<GpuModel> = workers.iter().map(|w| w.gpu).collect();
        registered.sort_by(|a, b| {
            b.fp32_tflops()
                .partial_cmp(&a.fp32_tflops())
                .expect("finite TFLOPS")
        });
        registered.dedup();
        let top2 = match registered.as_slice() {
            [only] => (*only, *only),
            [first, second, ..] => (*first, *second),
            [] => unreachable!("pool has workers"),
        };
        manager.set_calibration_gpus(top2);
        Self {
            config,
            manager,
            workers,
            test_inputs,
            test_labels,
        }
    }

    /// The pool's manager.
    pub fn manager(&self) -> &PoolManager {
        &self.manager
    }

    /// The pool's workers.
    pub fn workers(&self) -> &[PoolWorker] {
        &self.workers
    }

    /// Current global-model accuracy on the held-out test set.
    pub fn test_accuracy(&self) -> f32 {
        let mut model = self
            .manager
            .config()
            .build_encoded_model(&self.manager.address);
        model.load_params(self.manager.global_weights());
        let logits = model.forward(&self.test_inputs, false);
        accuracy(&logits, &self.test_labels)
    }

    /// Runs one epoch and returns its record.
    pub fn run_epoch(&mut self, epoch: u64) -> EpochRecord {
        let start = std::time::Instant::now();
        let report = self.manager.run_epoch(&mut self.workers, epoch);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Runs one epoch with workers training — and the manager verifying —
    /// on parallel OS threads (crossbeam scoped threads). Semantically
    /// identical to [`MiningPool::run_epoch`]: nonces, sampling decisions
    /// and noise seeds are drawn serially, so the verdicts and the
    /// aggregated model are bit-for-bit the same.
    pub fn run_epoch_parallel(&mut self, epoch: u64) -> EpochRecord {
        use parking_lot::Mutex;

        let start = std::time::Instant::now();
        let n = self.workers.len();
        let plan = self.manager.begin_epoch(n, epoch);

        // Phase 1: workers train concurrently.
        let config = *self.manager.config();
        let global = self.manager.global_weights().to_vec();
        let submissions: Mutex<Vec<Option<crate::worker::EpochSubmission>>> =
            Mutex::new((0..n).map(|_| None).collect());
        crossbeam::thread::scope(|scope| {
            for (w, worker) in self.workers.iter_mut().enumerate() {
                let plan = &plan;
                let global = &global;
                let submissions = &submissions;
                let config = &config;
                scope.spawn(move |_| {
                    let sub = worker.run_epoch(
                        config,
                        global,
                        plan.nonces[w],
                        plan.steps,
                        epoch,
                        plan.commit_mode(),
                    );
                    submissions.lock()[w] = Some(sub);
                });
            }
        })
        .expect("worker thread panicked");
        let submissions: Vec<crate::worker::EpochSubmission> = submissions
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every worker submitted"))
            .collect();

        // Phase 2: verification also fans out across threads.
        let report = self
            .manager
            .finish_epoch_parallel(&self.workers, &plan, &submissions);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Runs the configured number of epochs.
    pub fn run(&mut self) -> PoolReport {
        self.run_with(false)
    }

    /// Runs the configured number of epochs with parallel worker training.
    pub fn run_parallel(&mut self) -> PoolReport {
        self.run_with(true)
    }

    fn run_with(&mut self, parallel: bool) -> PoolReport {
        let mut epochs = Vec::with_capacity(self.config.epochs);
        for e in 0..self.config.epochs {
            let record = if parallel {
                self.run_epoch_parallel(e as u64)
            } else {
                self.run_epoch(e as u64)
            };
            epochs.push(record);
        }
        PoolReport {
            scheme: self.config.scheme,
            epochs,
            worker_storage_bytes: self.workers.iter().map(|w| w.storage_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_pool_trains_and_passes() {
        let mut pool = MiningPool::new(
            PoolConfig::tiny_demo(Scheme::RPoLv2),
            vec![WorkerBehavior::Honest; 3],
        );
        let report = pool.run();
        assert_eq!(report.rejections(), 0, "honest workers must all pass");
        assert_eq!(report.acceptances(), 6); // 3 workers × 2 epochs
        assert!(report.total_comm_bytes() > 0);
        assert!(report.worker_storage_bytes > 0);
    }

    #[test]
    fn verified_pool_beats_baseline_under_attack() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::ReplayPrevious,
        ];
        let mut cfg = PoolConfig::tiny_demo(Scheme::Baseline);
        cfg.epochs = 3;
        cfg.steps_per_epoch = 8;
        let baseline = MiningPool::new(cfg, behaviors.clone()).run();
        let mut cfg = PoolConfig::tiny_demo(Scheme::RPoLv1);
        cfg.epochs = 3;
        cfg.steps_per_epoch = 8;
        let verified = MiningPool::new(cfg, behaviors).run();
        assert!(verified.rejections() > 0);
        assert!(
            verified.final_accuracy() >= baseline.final_accuracy(),
            "verified {} vs baseline {}",
            verified.final_accuracy(),
            baseline.final_accuracy()
        );
    }

    #[test]
    fn v2_comm_is_cheaper_than_v1_proofs() {
        let behaviors = vec![WorkerBehavior::Honest; 3];
        let v1 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv1), behaviors.clone()).run();
        let v2 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors).run();
        let v1_proofs: u64 = v1.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
        let v2_proofs: u64 = v2.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
        assert!(
            v2_proofs < v1_proofs,
            "v2 proof bytes {v2_proofs} should undercut v1 {v1_proofs}"
        );
    }

    #[test]
    fn baseline_workers_store_nothing() {
        let report = MiningPool::new(
            PoolConfig::tiny_demo(Scheme::Baseline),
            vec![WorkerBehavior::Honest; 2],
        )
        .run();
        assert_eq!(report.worker_storage_bytes, 0);
    }

    #[test]
    fn small_pools_calibrate_against_registered_gpus() {
        // With 2 workers the registered GPUs are {G3090, GA10}; with 1 it
        // degenerates to a same-GPU pair. Both must calibrate and verify
        // honest workers cleanly.
        for n in [1usize, 2] {
            let mut pool = MiningPool::new(
                PoolConfig::tiny_demo(Scheme::RPoLv2),
                vec![WorkerBehavior::Honest; n],
            );
            let report = pool.run();
            assert_eq!(report.rejections(), 0, "{n}-worker pool rejected honesty");
            for rec in &report.epochs {
                let cal = rec.report.calibration.expect("v2 calibrates");
                assert!(cal.alpha > 0.0);
            }
        }
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ];
        let serial =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors.clone()).run();
        let parallel =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors).run_parallel();
        assert_eq!(serial.accuracy_curve(), parallel.accuracy_curve());
        for (a, b) in serial.epochs.iter().zip(&parallel.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.rejected, b.report.rejected);
            assert_eq!(a.report.comm, b.report.comm);
        }
    }

    #[test]
    fn accuracy_curve_has_one_point_per_epoch() {
        let mut cfg = PoolConfig::tiny_demo(Scheme::Baseline);
        cfg.epochs = 3;
        let report = MiningPool::new(cfg, vec![WorkerBehavior::Honest; 2]).run();
        assert_eq!(report.accuracy_curve().len(), 3);
    }
}
