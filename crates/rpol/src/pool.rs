//! The assembled mining pool: data sharding, multi-epoch training with
//! verification, accuracy tracking, and accounting — the engine behind the
//! Fig. 6 attack experiments and the §VII-E overhead measurements.

use crate::adversary::WorkerBehavior;
use crate::committee::{partition, Hierarchy};
use crate::manager::{CommStats, EpochReport, Participant, PoolManager};
use crate::tasks::TaskConfig;
use crate::transport::{link_state, FaultConfig, LinkState, MsgKind, Transport, TransportStats};
use crate::verify::{ProofProvider, ProofUnavailable, SampleVerdict, WorkerVerdict};
use crate::wire;
use crate::worker::{CommitMode, EpochSubmission, PoolWorker};
use rpol_crypto::Address;
use rpol_exec::Executor;
use rpol_nn::data::SyntheticImages;
use rpol_nn::metrics::correct_count;
use rpol_nn::model::Sequential;
use rpol_obs::{event, span, Recorder};
use rpol_sim::gpu::GpuModel;
use rpol_sim::SimClock;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::{Arc, OnceLock, RwLock};

/// Fixed evaluation chunk (rows per forward pass). Serial and parallel
/// evaluation run the same chunk shapes and merge integer correct-counts
/// in index order, so their reported accuracy is bitwise identical.
const EVAL_CHUNK: usize = 16;

/// Which runtime drives a multi-epoch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// Single-threaded reference path; never constructs an executor.
    Serial,
    /// Per-epoch crossbeam scoped threads (pre-executor baseline).
    Scoped,
    /// Persistent executor with train/verify phase overlap.
    Overlapped,
}

/// Which verification scheme the pool runs (§VII-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// No verification — every submission is aggregated (insecure).
    Baseline,
    /// Sampled replay with raw-weight proofs.
    RPoLv1,
    /// Sampled replay with LSH commitments and adaptive calibration.
    RPoLv2,
    /// Sampled replay over bf16-lattice checkpoints: quantized commitment
    /// digests (half the hashed bytes), packed wire framing (half the
    /// payload bytes), and a raw-distance double-check escape hatch when
    /// an LSH match is borderline.
    RPoLv3,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scheme::Baseline => "Baseline",
            Scheme::RPoLv1 => "RPoLv1",
            Scheme::RPoLv2 => "RPoLv2",
            Scheme::RPoLv3 => "RPoLv3",
        };
        f.write_str(name)
    }
}

/// Pool-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// The training task.
    pub task: TaskConfig,
    /// Verification scheme.
    pub scheme: Scheme,
    /// Number of epochs to run.
    pub epochs: usize,
    /// Training steps per worker per epoch.
    pub steps_per_epoch: usize,
    /// Training samples drawn for the whole pool (split into n+1 shards).
    pub train_samples: usize,
    /// Held-out test samples for accuracy tracking.
    pub test_samples: usize,
    /// Checkpoints sampled per worker per epoch (paper: 3).
    pub q_samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault-injecting transport between manager and workers. `None` runs
    /// the legacy in-process protocol (perfect channels, no framing).
    pub fault: Option<FaultConfig>,
    /// Two-tier committee hierarchy (DESIGN.md §15). `None` runs the flat
    /// single-manager pipeline. Accept/reject/quarantine sets are bitwise
    /// identical either way at equal sampling parameters; the hierarchy
    /// changes *where* verification runs and how much memory peaks, not
    /// what is decided.
    pub hierarchy: Option<Hierarchy>,
}

impl PoolConfig {
    /// A minimal configuration for tests and doc examples.
    pub fn tiny_demo(scheme: Scheme) -> Self {
        Self {
            task: TaskConfig::tiny(),
            scheme,
            epochs: 2,
            steps_per_epoch: 4,
            train_samples: 160,
            test_samples: 40,
            q_samples: 2,
            seed: 0xD0_0D,
            fault: None,
            hierarchy: None,
        }
    }

    /// A configuration matching the paper's experimental shape: task A/B,
    /// 10 workers, 3 sampled checkpoints.
    pub fn paper_like(task: TaskConfig, scheme: Scheme, epochs: usize) -> Self {
        Self {
            task,
            scheme,
            epochs,
            steps_per_epoch: 15,
            train_samples: 1_760, // 11 shards × 160
            test_samples: 300,
            q_samples: 3,
            seed: 0x009A_9E12,
            fault: None,
            hierarchy: None,
        }
    }

    /// Routes every protocol message through a fault-injecting transport.
    ///
    /// # Panics
    ///
    /// Panics if the fault config fails [`FaultConfig::validate`].
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        fault.validate().expect("invalid fault config");
        assert!(
            self.hierarchy.is_none(),
            "hierarchy over the fault-injecting transport is not supported"
        );
        self.fault = Some(fault);
        self
    }

    /// Shards verification into a two-tier committee hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on a baseline scheme (no verdicts to commit) or when faults
    /// are configured (the chaos transport path stays flat).
    pub fn with_hierarchy(mut self, hierarchy: Hierarchy) -> Self {
        assert!(
            !matches!(self.scheme, Scheme::Baseline),
            "hierarchy requires a verifying scheme: the baseline emits no verdicts to commit"
        );
        assert!(
            self.fault.is_none(),
            "hierarchy over the fault-injecting transport is not supported"
        );
        self.hierarchy = Some(hierarchy);
        self
    }
}

/// One epoch's row in the pool report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The manager's protocol report.
    pub report: EpochReport,
    /// Global-model test accuracy after this epoch's aggregation.
    pub test_accuracy: f32,
    /// Real wall-clock seconds the epoch took in this process (training +
    /// verification + evaluation) — the in-process complement to the
    /// analytic Table II model.
    pub wall_seconds: f64,
    /// Simulated transport time and event counters for the epoch (empty
    /// without a fault-injecting transport).
    pub transport_time: SimClock,
}

/// The full run record (returned by [`MiningPool::run`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolReport {
    /// The scheme that produced this report.
    pub scheme: Scheme,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Total checkpoint storage held by workers at the end (bytes).
    pub worker_storage_bytes: u64,
}

impl PoolReport {
    /// The accuracy curve across epochs.
    pub fn accuracy_curve(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.test_accuracy).collect()
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.test_accuracy).unwrap_or(0.0)
    }

    /// Total rejected submissions across the run.
    pub fn rejections(&self) -> usize {
        self.epochs.iter().map(|e| e.report.rejected.len()).sum()
    }

    /// Total accepted submissions across the run.
    pub fn acceptances(&self) -> usize {
        self.epochs.iter().map(|e| e.report.accepted.len()).sum()
    }

    /// Total double-checks triggered across the run.
    pub fn double_checks(&self) -> usize {
        self.epochs.iter().map(|e| e.report.double_checks).sum()
    }

    /// Total bytes moved across the run.
    pub fn total_comm_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.report.comm.total()).sum()
    }

    /// Total wall-clock seconds across epochs.
    pub fn total_wall_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.wall_seconds).sum()
    }

    /// Total epoch-quarantine events across the run (a worker quarantined
    /// in `k` epochs counts `k` times).
    pub fn quarantine_events(&self) -> usize {
        self.epochs.iter().map(|e| e.report.quarantined.len()).sum()
    }

    /// Whether `worker` was quarantined in every epoch of the run.
    pub fn quarantined_throughout(&self, worker: usize) -> bool {
        self.epochs
            .iter()
            .all(|e| e.report.quarantined.contains(&worker))
    }

    /// Merged transport counters across the run (all zero without a
    /// fault-injecting transport).
    pub fn transport_totals(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for e in &self.epochs {
            total.merge(&e.report.transport);
        }
        total
    }
}

/// Per-provider mutable state: the RPC sequence counter plus the stats
/// and clock this worker's proof traffic accumulates. Kept behind a mutex
/// so a provider can be shared with the parallel verification fan-out;
/// the counters are merged back into the epoch totals in worker-id order,
/// so scheduling never shows in the report.
struct ProviderState {
    seq: u64,
    stats: TransportStats,
    clock: SimClock,
}

/// A [`ProofProvider`] that reaches its worker through the lossy
/// transport: each opening is a proof-request / proof-response RPC whose
/// legs can drop, corrupt, truncate, or time out. Exhausted retries
/// surface as [`ProofUnavailable`] and quarantine the worker.
struct TransportProvider<'a> {
    transport: &'a Transport,
    worker: &'a PoolWorker,
    epoch: u64,
    rec: &'a Recorder,
    /// RPoLv3: openings ride the packed (bf16 lattice) framing.
    packed: bool,
    link_request: LinkState,
    link_response: LinkState,
    state: parking_lot::Mutex<ProviderState>,
}

impl<'a> TransportProvider<'a> {
    fn new(
        transport: &'a Transport,
        worker: &'a PoolWorker,
        epoch: u64,
        rec: &'a Recorder,
        packed: bool,
    ) -> Self {
        Self {
            transport,
            worker,
            epoch,
            rec,
            packed,
            link_request: link_state(&worker.behavior(), epoch, MsgKind::ProofRequest),
            link_response: link_state(&worker.behavior(), epoch, MsgKind::ProofResponse),
            state: parking_lot::Mutex::new(ProviderState {
                seq: 0,
                stats: TransportStats::default(),
                clock: SimClock::new(),
            }),
        }
    }
}

impl ProofProvider for TransportProvider<'_> {
    fn open_checkpoint(&self, index: usize) -> Result<Cow<'_, [f32]>, ProofUnavailable> {
        let unavailable = ProofUnavailable { index };
        let mut guard = self.state.lock();
        let seq = guard.seq;
        guard.seq += 1;
        let ProviderState { stats, clock, .. } = &mut *guard;

        // Request leg: manager → worker.
        let request = wire::encode_proof_request(&[index]);
        let delivered = self
            .transport
            .exchange(
                self.epoch,
                self.worker.id,
                MsgKind::ProofRequest,
                seq,
                &request,
                self.link_request,
                stats,
                clock,
                self.rec,
            )
            .map_err(|_| unavailable)?;
        let samples = wire::decode_proof_request(delivered).map_err(|_| unavailable)?;
        let &sample = samples.first().ok_or(unavailable)?;

        // The worker opens from local storage (infallible in-process).
        let weights = self
            .worker
            .open_checkpoint(sample)
            .map_err(|_| unavailable)?;

        // Response leg: worker → manager.
        let response = if self.packed {
            wire::encode_proof_response_packed(sample, &weights)
        } else {
            wire::encode_proof_response(sample, &weights)
        };
        stats.bytes_saved += (wire::proof_response_raw_wire_size(weights.len()) as u64)
            .saturating_sub(response.len() as u64);
        let delivered = self
            .transport
            .exchange(
                self.epoch,
                self.worker.id,
                MsgKind::ProofResponse,
                seq,
                &response,
                self.link_response,
                stats,
                clock,
                self.rec,
            )
            .map_err(|_| unavailable)?;
        let (got_index, got_weights) =
            wire::decode_proof_response(delivered).map_err(|_| unavailable)?;
        if got_index != index {
            return Err(unavailable);
        }
        // Decoded off the wire: necessarily an owned buffer.
        Ok(Cow::Owned(got_weights))
    }
}

/// A mining pool: one manager plus a set of (possibly adversarial)
/// workers, run for a configured number of epochs.
///
/// # Examples
///
/// ```
/// use rpol::pool::{MiningPool, PoolConfig, Scheme};
/// use rpol::adversary::WorkerBehavior;
///
/// let mut pool = MiningPool::new(
///     PoolConfig::tiny_demo(Scheme::RPoLv1),
///     vec![WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious],
/// );
/// let report = pool.run();
/// assert!(report.rejections() > 0); // the replayer is caught
/// ```
pub struct MiningPool {
    pub(crate) config: PoolConfig,
    pub(crate) manager: PoolManager,
    pub(crate) workers: Vec<PoolWorker>,
    /// Held-out test set, pre-split into [`EVAL_CHUNK`]-row batches.
    test_chunks: Vec<(rpol_tensor::Tensor, Vec<usize>)>,
    /// Observability handle: phase spans, per-epoch metric publication.
    /// Defaults to the shared no-op recorder (free when off).
    pub(crate) recorder: Arc<Recorder>,
    /// The persistent executor behind every parallel run: constructed once
    /// (lazily, on the first parallel epoch) and reused across all epochs
    /// and phases. Serial runs never construct it.
    executor: Option<Arc<Executor>>,
    /// Requested executor width; `None` falls back to
    /// [`Executor::default_threads`].
    threads: Option<usize>,
    /// Pooled evaluation models for [`MiningPool::test_accuracy`], built
    /// once and reloaded with the current global weights per use.
    eval_pool: parking_lot::Mutex<Vec<Sequential>>,
}

impl MiningPool {
    /// Builds a pool with one worker per behaviour entry.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors` is empty or the configured sample counts are
    /// too small for `behaviors.len() + 1` shards.
    pub fn new(config: PoolConfig, behaviors: Vec<WorkerBehavior>) -> Self {
        assert!(!behaviors.is_empty(), "pool needs at least one worker");
        let n = behaviors.len();
        let mut rng = Pcg32::seed_from(config.seed);
        let data = SyntheticImages::generate(&config.task.spec, config.train_samples, &mut rng);
        let mut shards = data.shard(n + 1);
        let manager_shard = shards.pop().expect("manager shard");
        let test = SyntheticImages::generate(&config.task.spec, config.test_samples, &mut rng);
        let test_chunks: Vec<(rpol_tensor::Tensor, Vec<usize>)> = (0..test.len())
            .step_by(EVAL_CHUNK)
            .map(|start| {
                let indices: Vec<usize> = (start..(start + EVAL_CHUNK).min(test.len())).collect();
                test.batch(&indices)
            })
            .collect();

        let address = Address::derive(&config.seed.to_be_bytes());
        let workers: Vec<PoolWorker> = behaviors
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (&behavior, shard))| {
                // Workers register heterogeneous GPUs, cycling the catalogue
                // (the manager calibrates against the top-2).
                let gpu = GpuModel::ALL[i % GpuModel::ALL.len()];
                PoolWorker::new(i, &config.task, &address, shard, gpu, behavior)
            })
            .collect();
        let mut manager = PoolManager::new(
            config.task,
            config.scheme,
            address,
            manager_shard,
            config.q_samples,
            config.steps_per_epoch,
            config.seed,
        );
        // §V-C: calibrate on the top-2 GPUs registered by the workers.
        let mut registered: Vec<GpuModel> = workers.iter().map(|w| w.gpu).collect();
        registered.sort_by(|a, b| {
            b.fp32_tflops()
                .partial_cmp(&a.fp32_tflops())
                .expect("finite TFLOPS")
        });
        registered.dedup();
        let top2 = match registered.as_slice() {
            [only] => (*only, *only),
            [first, second, ..] => (*first, *second),
            [] => unreachable!("pool has workers"),
        };
        manager.set_calibration_gpus(top2);
        Self {
            config,
            manager,
            workers,
            test_chunks,
            recorder: rpol_obs::noop().clone(),
            executor: None,
            threads: None,
            eval_pool: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Sets the executor width for parallel runs. Must be called before
    /// the first parallel epoch constructs the pool's persistent executor.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The pool's persistent executor, constructed on first use and then
    /// reused for every epoch and phase — parallel epochs spawn zero
    /// threads after this. The manager shares the handle for verification
    /// and calibration fan-out.
    pub(crate) fn ensure_executor(&mut self) -> Arc<Executor> {
        if self.executor.is_none() {
            let threads = self.threads.unwrap_or_else(Executor::default_threads);
            let exec = Arc::new(Executor::with_recorder(threads, self.recorder.clone()));
            self.manager.set_executor(Arc::clone(&exec));
            self.executor = Some(exec);
        }
        Arc::clone(self.executor.as_ref().expect("executor constructed"))
    }

    /// Attaches an observability recorder: epoch/phase spans, transport
    /// events, and per-epoch metric publication all land on `rec`. The
    /// manager (and through it the verifier) shares the same handle.
    /// Metrics are mirrored from the epoch reports at deterministic merge
    /// points, so exported totals always equal the report's own numbers.
    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.manager.set_recorder(rec.clone());
        self.recorder = rec;
        self
    }

    /// The pool's manager.
    pub fn manager(&self) -> &PoolManager {
        &self.manager
    }

    /// The pool's workers.
    pub fn workers(&self) -> &[PoolWorker] {
        &self.workers
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Dissolves the pool into its workers — the client side of a socket
    /// run builds a pool with the shared seed (so data generation matches
    /// the server bit-for-bit), then takes the workers and drops the rest.
    pub fn into_workers(self) -> Vec<PoolWorker> {
        self.workers
    }

    /// Current global-model accuracy on the held-out test set, evaluated
    /// in fixed [`EVAL_CHUNK`]-row batches — on the persistent executor
    /// when one is attached. Per-chunk integer correct-counts are merged
    /// in index order, so serial and parallel evaluation agree bitwise.
    pub fn test_accuracy(&self) -> f32 {
        let total: usize = self
            .test_chunks
            .iter()
            .map(|(_, labels)| labels.len())
            .sum();
        let eval_chunk = |i: usize| {
            let (inputs, labels) = &self.test_chunks[i];
            let _g = span!(
                self.recorder,
                "rpol.pool.eval_chunk",
                chunk = i,
                rows = labels.len()
            );
            let mut model = self.checkout_eval_model();
            let logits = model.forward(inputs, false);
            let correct = correct_count(&logits, labels);
            self.eval_pool.lock().push(model);
            correct
        };
        let correct: usize = match &self.executor {
            Some(exec) => exec
                .run_indexed(self.test_chunks.len(), eval_chunk)
                .into_iter()
                .sum(),
            None => (0..self.test_chunks.len()).map(eval_chunk).sum(),
        };
        correct as f32 / total as f32
    }

    /// Checks an evaluation model out of the pool (building one on a
    /// miss) and loads the current global weights into it.
    fn checkout_eval_model(&self) -> Sequential {
        let mut model = self.eval_pool.lock().pop().unwrap_or_else(|| {
            self.manager
                .config()
                .build_encoded_model(&self.manager.address)
        });
        model.load_params(self.manager.global_weights());
        model
    }

    /// Runs one epoch and returns its record.
    pub fn run_epoch(&mut self, epoch: u64) -> EpochRecord {
        let start = std::time::Instant::now();
        let _epoch_span = span!(self.recorder, "rpol.pool.epoch", epoch);
        let report = self.manager.run_epoch(&mut self.workers, epoch);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: SimClock::new(),
        }
    }

    /// Runs one epoch on the pool's persistent executor with **phase
    /// overlap**: every worker's training is one task, and the moment
    /// worker `w`'s submission lands, one verification task per sampled
    /// checkpoint of `w` is spawned — other workers may still be training.
    /// Zero threads are spawned per epoch; the executor is constructed
    /// once for the pool's lifetime.
    ///
    /// Bitwise identical to [`MiningPool::run_epoch`] at every thread
    /// count: the sampling schedule is drawn eagerly from the same RNG
    /// stream (training never touches the manager's RNG), per-sample
    /// verdicts merge in index order, and evaluation chunks are fixed.
    pub fn run_epoch_parallel(&mut self, epoch: u64) -> EpochRecord {
        use parking_lot::Mutex;

        let exec = self.ensure_executor();
        let start = std::time::Instant::now();
        let recorder = self.recorder.clone();
        let _epoch_span = span!(recorder, "rpol.pool.epoch", epoch);
        let n = self.workers.len();
        let plan = self.manager.begin_epoch(n, epoch);
        // Eager draw of the verification schedule — same RNG stream as the
        // serial path's post-training draw. `None` for the baseline
        // scheme, which never draws sampling state.
        let prepared = self.manager.prepare_verification(&plan, n);

        let config = *self.manager.config();
        let global = self.manager.global_weights().to_vec();
        let manager = &self.manager;

        // Each worker moves by value into its training task; verification
        // tasks read it back from its slot as soon as training stores it.
        let slots: Vec<RwLock<Option<PoolWorker>>> = std::mem::take(&mut self.workers)
            .into_iter()
            .map(|w| RwLock::new(Some(w)))
            .collect();
        let submissions: Vec<OnceLock<EpochSubmission>> = (0..n).map(|_| OnceLock::new()).collect();
        let sample_slots: Vec<Vec<Mutex<Option<SampleVerdict>>>> = (0..n)
            .map(|w| {
                let q = prepared.as_ref().map_or(0, |p| p.sample_count(w));
                (0..q).map(|_| Mutex::new(None)).collect()
            })
            .collect();

        exec.scope(|s| {
            for w in 0..n {
                let slot = &slots[w];
                let submission = &submissions[w];
                let verdicts = &sample_slots[w];
                let plan = &plan;
                let prepared = prepared.as_ref();
                let config = &config;
                let global = &global;
                let recorder = &recorder;
                s.spawn(move || {
                    let mut worker = slot.write().expect("worker slot").take().expect("present");
                    let sub = {
                        let _g = span!(
                            recorder,
                            "rpol.worker.train_epoch",
                            epoch,
                            worker = w,
                            steps = plan.steps
                        );
                        worker.run_epoch(
                            config,
                            global,
                            plan.nonces[w],
                            plan.steps,
                            epoch,
                            plan.commit_mode(),
                        )
                    };
                    *slot.write().expect("worker slot") = Some(worker);
                    assert!(submission.set(sub).is_ok(), "one submission per worker");
                    // This worker's commit landed: fan its sampled
                    // checkpoints out as independent tasks right away.
                    if let Some(prepared) = prepared {
                        span!(
                            recorder,
                            "rpol.verify.worker",
                            epoch = plan.epoch,
                            worker = w,
                            samples = prepared.sample_count(w)
                        );
                        for (pos, verdict_slot) in verdicts.iter().enumerate() {
                            s.spawn(move || {
                                let guard = slot.read().expect("worker slot");
                                let worker = guard.as_ref().expect("trained worker stored");
                                let part = Participant {
                                    id: w,
                                    address: worker.address,
                                    shard: worker.shard(),
                                    submission: submission.get().expect("submission stored"),
                                    provider: worker,
                                };
                                *verdict_slot.lock() = Some(
                                    manager.verify_prepared_sample(&part, plan, prepared, pos),
                                );
                            });
                        }
                    }
                });
            }
        });

        // Deterministic reduction: reassemble state and merge per-sample
        // verdicts in (worker, sample) index order.
        self.workers = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("worker slot")
                    .expect("worker returned to its slot")
            })
            .collect();
        let submissions: Vec<EpochSubmission> = submissions
            .into_iter()
            .map(|s| s.into_inner().expect("every worker submitted"))
            .collect();
        let verdict_list: Option<Vec<WorkerVerdict>> = prepared.as_ref().map(|_| {
            sample_slots
                .iter()
                .map(|per_worker| {
                    WorkerVerdict::from_samples(
                        per_worker
                            .iter()
                            .map(|m| m.lock().take().expect("sample verified")),
                    )
                })
                .collect()
        });

        let participants: Vec<Participant<'_>> = self
            .workers
            .iter()
            .map(|worker| Participant {
                id: worker.id,
                address: worker.address,
                shard: worker.shard(),
                submission: &submissions[worker.id],
                provider: worker,
            })
            .collect();
        let model_bytes = (self.manager.global_weights().len() * 4) as u64;
        let mut comm = CommStats {
            broadcast_bytes: model_bytes * n as u64,
            ..CommStats::default()
        };
        for sub in &submissions {
            comm.submission_bytes += sub.upload_bytes;
        }
        let report = self
            .manager
            .reduce_epoch(&plan, &participants, &[], comm, verdict_list);
        drop(participants);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: SimClock::new(),
        }
    }

    /// Runs one epoch through the two-tier committee hierarchy
    /// (DESIGN.md §15), **streaming committee-by-committee** so peak
    /// commitment memory is O(committee size), never O(pool size):
    ///
    /// 1. The roster is rendezvous-partitioned into committees (seeded on
    ///    the pool seed, so the assignment is stable across epochs and
    ///    churn moves O(1/C) workers).
    /// 2. Each committee's sub-manager trains its members (on the
    ///    persistent executor when `parallel`), runs the existing
    ///    sampled-replay verification over them, and emits a
    ///    Merkle-committed verdict batch over canonical verdict leaves.
    /// 3. The top manager ingests only the batch (root + verdicts + byte
    ///    counts) off the framed wire format, checks root consistency,
    ///    spot-audits `q_top` verdicts per committee — Merkle inclusion
    ///    proof plus a full re-replay of the audited worker — and folds
    ///    accepted updates into an order-invariant fixed-point aggregation
    ///    accumulator. The committee's submissions are dropped before the
    ///    next committee trains.
    ///
    /// Bitwise identical accept/reject/quarantine sets to the flat path at
    /// equal sampling parameters and any thread count: the manager RNG is
    /// consumed in exactly the flat order (`begin_epoch` nonces, then
    /// `prepare_verification` assignments for all workers), each verdict
    /// depends only on its own worker's assignment, audit sampling uses an
    /// independent PRF, and the fixed-point aggregation makes the
    /// committee-order fold equal the worker-order fold exactly.
    fn run_epoch_hierarchical(&mut self, epoch: u64, parallel: bool) -> EpochRecord {
        let start = std::time::Instant::now();
        let recorder = self.recorder.clone();
        let _epoch_span = span!(recorder, "rpol.pool.epoch", epoch);
        let hierarchy = self
            .config
            .hierarchy
            .expect("hierarchical path needs a hierarchy");
        let exec = parallel.then(|| self.ensure_executor());
        let n = self.workers.len();
        // Identical RNG consumption to the flat paths: nonces, then the
        // full verification schedule, before any committee runs.
        let plan = self.manager.begin_epoch(n, epoch);
        let prepared = self
            .manager
            .prepare_verification(&plan, n)
            .expect("hierarchy requires a verifying scheme");
        let committees = partition(self.config.seed, n, hierarchy.committees);

        let config = *self.manager.config();
        let global = self.manager.global_weights().to_vec();
        let model_bytes = (global.len() * 4) as u64;
        let mut comm = CommStats {
            broadcast_bytes: model_bytes * n as u64,
            ..CommStats::default()
        };
        let mut ingest = self.manager.ingest_begin(hierarchy, &[]);

        for (c, members) in committees.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let _committee_span = span!(
                recorder,
                "rpol.pool.committee",
                epoch,
                committee = c,
                members = members.len()
            );
            // Sub-manager phase 1: train this committee's members. Only
            // their submissions are resident — the previous committee's
            // were dropped at the end of its loop iteration.
            let subs: Vec<EpochSubmission> = if let Some(exec) = &exec {
                let slots: Vec<OnceLock<EpochSubmission>> =
                    members.iter().map(|_| OnceLock::new()).collect();
                let member_pos: std::collections::HashMap<usize, usize> =
                    members.iter().enumerate().map(|(p, &w)| (w, p)).collect();
                exec.scope(|s| {
                    for (w, worker) in self.workers.iter_mut().enumerate() {
                        let Some(&pos) = member_pos.get(&w) else {
                            continue;
                        };
                        let slot = &slots[pos];
                        let plan = &plan;
                        let config = &config;
                        let global = &global;
                        let recorder = &recorder;
                        s.spawn(move || {
                            let _g = span!(
                                recorder,
                                "rpol.worker.train_epoch",
                                epoch,
                                worker = w,
                                steps = plan.steps
                            );
                            let sub = worker.run_epoch(
                                config,
                                global,
                                plan.nonces[w],
                                plan.steps,
                                epoch,
                                plan.commit_mode(),
                            );
                            assert!(slot.set(sub).is_ok(), "one submission per worker");
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("member trained"))
                    .collect()
            } else {
                members
                    .iter()
                    .map(|&w| {
                        let _g = span!(
                            recorder,
                            "rpol.worker.train_epoch",
                            epoch,
                            worker = w,
                            steps = plan.steps
                        );
                        self.workers[w].run_epoch(
                            &config,
                            &global,
                            plan.nonces[w],
                            plan.steps,
                            epoch,
                            plan.commit_mode(),
                        )
                    })
                    .collect()
            };

            // Sub-manager phase 2 + top-manager ingest: sampled-replay
            // verification, Merkle-committed batch over the framed wire
            // format, root check, spot audits, classification, and the
            // fixed-point aggregation fold — all shared with the socket
            // server through the manager's ingest API.
            let participants: Vec<Participant<'_>> = members
                .iter()
                .zip(&subs)
                .map(|(&w, sub)| {
                    let worker = &self.workers[w];
                    Participant {
                        id: w,
                        address: worker.address,
                        shard: worker.shard(),
                        submission: sub,
                        provider: worker,
                    }
                })
                .collect();
            self.manager.ingest_committee(
                &mut ingest,
                self.config.seed,
                c,
                &participants,
                &plan,
                &prepared,
                parallel,
            );
            drop(participants);
            comm.submission_bytes += subs.iter().map(|s| s.upload_bytes).sum::<u64>();
            // `subs` drops here: the next committee starts from a clean
            // memory floor.
        }

        let report = self.manager.ingest_finish(ingest, &plan, comm);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: SimClock::new(),
        }
    }

    /// Runs one epoch on per-epoch crossbeam scoped threads: the pre-
    /// executor runtime, retained as the benchmark baseline the persistent
    /// executor is measured against. Training is a hard barrier before
    /// worker-granular verification — no phase overlap. Assumes no
    /// executor has been attached (use a fresh pool for baseline runs).
    pub fn run_epoch_scoped(&mut self, epoch: u64) -> EpochRecord {
        use parking_lot::Mutex;

        let start = std::time::Instant::now();
        let recorder = self.recorder.clone();
        let _epoch_span = span!(recorder, "rpol.pool.epoch", epoch);
        let n = self.workers.len();
        let plan = self.manager.begin_epoch(n, epoch);

        // Phase 1: workers train concurrently.
        let config = *self.manager.config();
        let global = self.manager.global_weights().to_vec();
        let submissions: Mutex<Vec<Option<crate::worker::EpochSubmission>>> =
            Mutex::new((0..n).map(|_| None).collect());
        crossbeam::thread::scope(|scope| {
            for (w, worker) in self.workers.iter_mut().enumerate() {
                let plan = &plan;
                let global = &global;
                let submissions = &submissions;
                let config = &config;
                let recorder = &recorder;
                scope.spawn(move |_| {
                    let _g = span!(
                        recorder,
                        "rpol.worker.train_epoch",
                        epoch,
                        worker = w,
                        steps = plan.steps
                    );
                    let sub = worker.run_epoch(
                        config,
                        global,
                        plan.nonces[w],
                        plan.steps,
                        epoch,
                        plan.commit_mode(),
                    );
                    submissions.lock()[w] = Some(sub);
                });
            }
        })
        .expect("worker thread panicked");
        let submissions: Vec<crate::worker::EpochSubmission> = submissions
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every worker submitted"))
            .collect();

        // Phase 2: verification also fans out across threads.
        let report = self
            .manager
            .finish_epoch_parallel(&self.workers, &plan, &submissions);
        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: SimClock::new(),
        }
    }

    /// Runs the configured number of epochs.
    pub fn run(&mut self) -> PoolReport {
        self.run_with(RunMode::Serial)
    }

    /// Runs the configured number of epochs on the persistent executor
    /// with train/verify phase overlap ([`MiningPool::run_epoch_parallel`]).
    pub fn run_parallel(&mut self) -> PoolReport {
        self.ensure_executor();
        self.run_with(RunMode::Overlapped)
    }

    /// Runs the configured number of epochs on per-epoch scoped threads
    /// ([`MiningPool::run_epoch_scoped`]) — the pre-executor baseline kept
    /// for benchmarking. Never constructs the persistent executor.
    pub fn run_scoped(&mut self) -> PoolReport {
        self.run_with(RunMode::Scoped)
    }

    fn run_with(&mut self, mode: RunMode) -> PoolReport {
        if let Some(hierarchy) = self.config.hierarchy {
            assert!(
                !matches!(self.config.scheme, Scheme::Baseline),
                "hierarchy requires a verifying scheme: the baseline emits no verdicts to commit"
            );
            assert!(
                self.config.fault.is_none(),
                "hierarchy over the fault-injecting transport is not supported"
            );
            hierarchy
                .validate(self.workers.len(), self.config.seed)
                .expect("invalid hierarchy for this roster");
        }
        let mut epochs = Vec::with_capacity(self.config.epochs);
        for e in 0..self.config.epochs {
            let record = if self.config.fault.is_some() {
                self.run_epoch_transport(e as u64, mode != RunMode::Serial)
            } else if self.config.hierarchy.is_some() {
                self.run_epoch_hierarchical(e as u64, mode != RunMode::Serial)
            } else {
                match mode {
                    RunMode::Serial => self.run_epoch(e as u64),
                    RunMode::Scoped => self.run_epoch_scoped(e as u64),
                    RunMode::Overlapped => self.run_epoch_parallel(e as u64),
                }
            };
            self.publish_epoch(&record);
            epochs.push(record);
        }
        let report = PoolReport {
            scheme: self.config.scheme,
            epochs,
            worker_storage_bytes: self.workers.iter().map(|w| w.storage_bytes()).sum(),
        };
        self.recorder.gauge_set(
            "rpol.pool.worker_storage_bytes",
            report.worker_storage_bytes as f64,
        );
        report
    }

    /// Mirrors one finished epoch into the recorder. Runs at the serial
    /// point after all per-worker state has been merged in worker-id
    /// order, so every exported counter equals the corresponding
    /// [`EpochReport`] total exactly — parallel scheduling never shows.
    pub(crate) fn publish_epoch(&self, record: &EpochRecord) {
        let rec = &*self.recorder;
        if !rec.enabled() {
            return;
        }
        let report = &record.report;
        rec.counter_add("rpol.pool.epochs", 1);
        rec.counter_add("rpol.pool.accepted", report.accepted.len() as u64);
        rec.counter_add("rpol.pool.rejected", report.rejected.len() as u64);
        rec.counter_add("rpol.pool.quarantined", report.quarantined.len() as u64);
        rec.counter_add("rpol.verify.double_checks", report.double_checks as u64);
        rec.counter_add("rpol.verify.replayed_steps", report.replayed_steps);
        rec.counter_add("rpol.commit.bytes_hashed", report.commit_bytes_hashed);
        rec.counter_add("rpol.comm.broadcast_bytes", report.comm.broadcast_bytes);
        rec.counter_add("rpol.comm.submission_bytes", report.comm.submission_bytes);
        rec.counter_add("rpol.comm.proof_bytes", report.comm.proof_bytes);
        rec.counter_add("rpol.pool.peak_commit_bytes", report.peak_commit_bytes);
        if let Some(h) = &report.hierarchy {
            rec.counter_add("rpol.committee.verdicts", h.verdicts);
            rec.counter_add("rpol.committee.audits", h.audits);
            rec.counter_add("rpol.committee.audit_mismatch", h.audit_mismatches);
            rec.counter_add("rpol.committee.batch_bytes", h.batch_bytes);
        }
        rec.gauge_set("rpol.pool.test_accuracy", f64::from(record.test_accuracy));
        report.transport.publish(rec);
        record.transport_time.publish(rec, "sim.clock");
        for (phase, seconds) in record.transport_time.iter() {
            event!(
                rec,
                "rpol.pool.phase_time",
                epoch = report.epoch,
                phase,
                seconds
            );
        }
        // Fold the epoch's simulated seconds into the (logical) clock so
        // trace timestamps advance with simulated time across epochs.
        rec.advance_ns((record.transport_time.total() * 1e9) as u64);
    }

    /// Runs one epoch with every protocol message crossing the
    /// fault-injecting transport (DESIGN.md §9).
    ///
    /// Phases, with all fault draws serialized in worker-id order so
    /// `parallel` changes scheduling but never outcomes:
    ///
    /// 1. **Task broadcast** — each worker's [`wire::EpochTask`] (nonce +
    ///    global model) crosses its link; delivery failure quarantines the
    ///    worker before it trains.
    /// 2. **Training** — tasked workers whose submission link is up train
    ///    from the *delivered* task bytes (serially or on threads). A
    ///    worker crashing this epoch trains partial steps that nobody will
    ///    ever see; the simulation skips the wasted compute.
    /// 3. **Submission upload** — results cross the links back; a dead
    ///    peer costs the manager one commitment deadline, an exhausted
    ///    retry budget quarantines.
    /// 4. **Verification** — proof RPCs ride the same transport; openings
    ///    that stop arriving quarantine the worker instead of rejecting
    ///    it. Aggregation and credit run over the survivors.
    ///
    /// Byte accounting: [`CommStats`] counts each logical payload once
    /// (what the protocol *moved*); [`TransportStats::wire_bytes`] counts
    /// physical frames including retransmissions (what the network
    /// *carried*).
    fn run_epoch_transport(&mut self, epoch: u64, parallel: bool) -> EpochRecord {
        use parking_lot::Mutex;

        let start = std::time::Instant::now();
        let recorder = self.recorder.clone();
        let _epoch_span = span!(recorder, "rpol.pool.epoch", epoch);
        let fault = self.config.fault.expect("transport path needs faults");
        let transport = Transport::new(&fault);
        let n = self.workers.len();
        let plan = self.manager.begin_epoch(n, epoch);
        let mut stats = TransportStats::default();
        let mut clock = SimClock::new();
        let mut quarantined: Vec<usize> = Vec::new();
        let mut comm = CommStats::default();

        // Phase 1: task broadcast, serial in worker order.
        let phase_broadcast = span!(recorder, "rpol.pool.task_broadcast", epoch);
        let global = self.manager.global_weights().to_vec();
        let mut tasks: Vec<Option<wire::EpochTask>> = (0..n).map(|_| None).collect();
        for (w, worker) in self.workers.iter().enumerate() {
            let task = wire::EpochTask {
                epoch,
                nonce: plan.nonces[w],
                steps: plan.steps as u32,
                global_weights: global.clone(),
            };
            let payload = wire::encode_epoch_task(&task);
            comm.broadcast_bytes += payload.len() as u64;
            let link = link_state(&worker.behavior(), epoch, MsgKind::Task);
            match transport
                .exchange(
                    epoch,
                    w,
                    MsgKind::Task,
                    0,
                    &payload,
                    link,
                    &mut stats,
                    &mut clock,
                    &recorder,
                )
                .map(wire::decode_epoch_task)
            {
                Ok(Ok(delivered)) => tasks[w] = Some(delivered),
                _ => quarantined.push(w),
            }
        }
        drop(phase_broadcast);

        // Phase 2: training on the delivered tasks. Workers that will not
        // be able to submit (crashed this epoch) skip the doomed compute.
        let phase_training = span!(recorder, "rpol.pool.training", epoch);
        let submission_links: Vec<LinkState> = self
            .workers
            .iter()
            .map(|worker| link_state(&worker.behavior(), epoch, MsgKind::Submission))
            .collect();
        let config = *self.manager.config();
        let commit_mode = plan.commit_mode();
        let mut local: Vec<Option<EpochSubmission>> = (0..n).map(|_| None).collect();
        if parallel {
            let slots: Mutex<Vec<Option<EpochSubmission>>> =
                Mutex::new((0..n).map(|_| None).collect());
            if let Some(exec) = self.executor.clone() {
                // Persistent-executor runtime: training tasks land on the
                // long-lived pool instead of per-epoch OS threads.
                exec.scope(|s| {
                    for (w, worker) in self.workers.iter_mut().enumerate() {
                        let Some(task) = tasks[w].as_ref() else {
                            continue;
                        };
                        if !submission_links[w].alive {
                            continue;
                        }
                        let slots = &slots;
                        let config = &config;
                        let recorder = &recorder;
                        s.spawn(move || {
                            let _g = span!(
                                recorder,
                                "rpol.worker.train_epoch",
                                epoch,
                                worker = w,
                                steps = task.steps
                            );
                            let sub = worker.run_epoch(
                                config,
                                &task.global_weights,
                                task.nonce,
                                task.steps as usize,
                                epoch,
                                commit_mode,
                            );
                            slots.lock()[w] = Some(sub);
                        });
                    }
                });
            } else {
                crossbeam::thread::scope(|scope| {
                    for (w, worker) in self.workers.iter_mut().enumerate() {
                        let Some(task) = tasks[w].as_ref() else {
                            continue;
                        };
                        if !submission_links[w].alive {
                            continue;
                        }
                        let slots = &slots;
                        let config = &config;
                        let recorder = &recorder;
                        scope.spawn(move |_| {
                            let _g = span!(
                                recorder,
                                "rpol.worker.train_epoch",
                                epoch,
                                worker = w,
                                steps = task.steps
                            );
                            let sub = worker.run_epoch(
                                config,
                                &task.global_weights,
                                task.nonce,
                                task.steps as usize,
                                epoch,
                                commit_mode,
                            );
                            slots.lock()[w] = Some(sub);
                        });
                    }
                })
                .expect("worker thread panicked");
            }
            local = slots.into_inner();
        } else {
            for (w, worker) in self.workers.iter_mut().enumerate() {
                let Some(task) = tasks[w].as_ref() else {
                    continue;
                };
                if !submission_links[w].alive {
                    continue;
                }
                let _g = span!(
                    recorder,
                    "rpol.worker.train_epoch",
                    epoch,
                    worker = w,
                    steps = task.steps
                );
                local[w] = Some(worker.run_epoch(
                    &config,
                    &task.global_weights,
                    task.nonce,
                    task.steps as usize,
                    epoch,
                    commit_mode,
                ));
            }
        }
        drop(phase_training);

        // Phase 3: submission upload, serial in worker order.
        let phase_submission = span!(recorder, "rpol.pool.submission", epoch);
        let hashes_per_group = match plan.commit_mode() {
            CommitMode::V2(f) | CommitMode::V3(f) => f.params().k,
            _ => 0,
        };
        let mut delivered: Vec<Option<EpochSubmission>> = (0..n).map(|_| None).collect();
        for w in 0..n {
            if tasks[w].is_none() {
                continue; // already quarantined at task delivery
            }
            if !submission_links[w].alive {
                // The worker fell silent: the manager waits out one
                // commitment deadline, then quarantines it.
                stats.timeouts += 1;
                clock.add(MsgKind::Submission.label(), transport.policy().timeout_s);
                clock.tick("deadline_miss");
                event!(recorder, "rpol.pool.deadline_miss", epoch, worker = w);
                quarantined.push(w);
                continue;
            }
            let sub = local[w].take().expect("tasked live worker trained");
            let payload = wire::encode_submission(&sub.final_weights, sub.commitment.as_ref());
            stats.bytes_saved +=
                (wire::submission_raw_wire_size(sub.final_weights.len(), sub.commitment.as_ref())
                    as u64)
                    .saturating_sub(payload.len() as u64);
            match transport
                .exchange(
                    epoch,
                    w,
                    MsgKind::Submission,
                    0,
                    &payload,
                    submission_links[w],
                    &mut stats,
                    &mut clock,
                    &recorder,
                )
                .map(wire::decode_submission)
            {
                Ok(Ok((final_weights, commitment))) => {
                    comm.submission_bytes += payload.len() as u64;
                    // The manager works from what the wire delivered, not
                    // from the worker's in-process state. Hashing cost is
                    // recomputed from the decoded commitment — a pure
                    // function of model size and scheme, so both sides of
                    // the wire always account the same number.
                    let commit_bytes_hashed = commitment
                        .as_ref()
                        .map_or(0, |c| c.bytes_hashed(final_weights.len(), hashes_per_group));
                    delivered[w] = Some(EpochSubmission {
                        worker_id: w,
                        final_weights,
                        commitment,
                        upload_bytes: payload.len() as u64,
                        commit_bytes_hashed,
                    });
                }
                _ => quarantined.push(w),
            }
        }
        drop(phase_submission);

        // Phase 4: verification over the survivors, openings served
        // through per-worker transport endpoints.
        let phase_verification = span!(recorder, "rpol.pool.verification", epoch);
        let packed = matches!(self.config.scheme, Scheme::RPoLv3);
        let providers: Vec<Option<TransportProvider<'_>>> = self
            .workers
            .iter()
            .enumerate()
            .map(|(w, worker)| {
                delivered[w]
                    .as_ref()
                    .map(|_| TransportProvider::new(&transport, worker, epoch, &recorder, packed))
            })
            .collect();
        let participants: Vec<Participant<'_>> = self
            .workers
            .iter()
            .enumerate()
            .filter_map(|(w, worker)| {
                let submission = delivered[w].as_ref()?;
                let provider = providers[w].as_ref()?;
                Some(Participant {
                    id: w,
                    address: worker.address,
                    shard: worker.shard(),
                    submission,
                    provider,
                })
            })
            .collect();
        let mut report = self.manager.finish_epoch_partial(
            &plan,
            n,
            &participants,
            &quarantined,
            comm,
            parallel,
        );

        // Merge proof-channel traffic in worker-id order: deterministic
        // regardless of verification scheduling.
        for provider in providers.into_iter().flatten() {
            let state = provider.state.into_inner();
            stats.merge(&state.stats);
            clock.merge(&state.clock);
        }
        report.transport = stats;
        drop(phase_verification);

        EpochRecord {
            report,
            test_accuracy: self.test_accuracy(),
            wall_seconds: start.elapsed().as_secs_f64(),
            transport_time: clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_pool_trains_and_passes() {
        let mut pool = MiningPool::new(
            PoolConfig::tiny_demo(Scheme::RPoLv2),
            vec![WorkerBehavior::Honest; 3],
        );
        let report = pool.run();
        assert_eq!(report.rejections(), 0, "honest workers must all pass");
        assert_eq!(report.acceptances(), 6); // 3 workers × 2 epochs
        assert!(report.total_comm_bytes() > 0);
        assert!(report.worker_storage_bytes > 0);
    }

    #[test]
    fn verified_pool_beats_baseline_under_attack() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::ReplayPrevious,
        ];
        let mut cfg = PoolConfig::tiny_demo(Scheme::Baseline);
        cfg.epochs = 3;
        cfg.steps_per_epoch = 8;
        let baseline = MiningPool::new(cfg, behaviors.clone()).run();
        let mut cfg = PoolConfig::tiny_demo(Scheme::RPoLv1);
        cfg.epochs = 3;
        cfg.steps_per_epoch = 8;
        let verified = MiningPool::new(cfg, behaviors).run();
        assert!(verified.rejections() > 0);
        assert!(
            verified.final_accuracy() >= baseline.final_accuracy(),
            "verified {} vs baseline {}",
            verified.final_accuracy(),
            baseline.final_accuracy()
        );
    }

    #[test]
    fn v2_comm_is_cheaper_than_v1_proofs() {
        let behaviors = vec![WorkerBehavior::Honest; 3];
        let v1 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv1), behaviors.clone()).run();
        let v2 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors).run();
        let v1_proofs: u64 = v1.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
        let v2_proofs: u64 = v2.epochs.iter().map(|e| e.report.comm.proof_bytes).sum();
        assert!(
            v2_proofs < v1_proofs,
            "v2 proof bytes {v2_proofs} should undercut v1 {v1_proofs}"
        );
    }

    #[test]
    fn v3_matches_v1_detection_with_fewer_bytes() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ];
        let v1 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv1), behaviors.clone()).run();
        let v3 = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv3), behaviors).run();
        // Detection is unchanged: same accept/reject sets every epoch.
        for (a, b) in v1.epochs.iter().zip(&v3.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.rejected, b.report.rejected);
        }
        // Packed uploads and quantized digests shrink both data planes.
        let sum =
            |r: &PoolReport, f: fn(&EpochRecord) -> u64| -> u64 { r.epochs.iter().map(f).sum() };
        let v1_sub = sum(&v1, |e| e.report.comm.submission_bytes);
        let v3_sub = sum(&v3, |e| e.report.comm.submission_bytes);
        assert!(v3_sub < v1_sub, "v3 uploads {v3_sub} vs v1 {v1_sub}");
        let v1_hashed = sum(&v1, |e| e.report.commit_bytes_hashed);
        let v3_hashed = sum(&v3, |e| e.report.commit_bytes_hashed);
        assert!(
            v3_hashed < v1_hashed,
            "v3 hashed {v3_hashed} vs v1 {v1_hashed}"
        );
        let v1_proof = sum(&v1, |e| e.report.comm.proof_bytes);
        let v3_proof = sum(&v3, |e| e.report.comm.proof_bytes);
        assert!(v3_proof < v1_proof, "v3 proofs {v3_proof} vs v1 {v1_proof}");
    }

    #[test]
    fn v3_parallel_run_matches_serial_exactly() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ];
        let serial =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv3), behaviors.clone()).run();
        let parallel =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv3), behaviors).run_parallel();
        assert_eq!(serial.accuracy_curve(), parallel.accuracy_curve());
        for (a, b) in serial.epochs.iter().zip(&parallel.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.rejected, b.report.rejected);
            assert_eq!(a.report.comm, b.report.comm);
            assert_eq!(a.report.commit_bytes_hashed, b.report.commit_bytes_hashed);
        }
    }

    #[test]
    fn v3_transport_saves_wire_bytes_without_losing_detection() {
        let behaviors = vec![WorkerBehavior::Honest, WorkerBehavior::ReplayPrevious];
        let cfg = PoolConfig::tiny_demo(Scheme::RPoLv3).with_faults(FaultConfig::ideal(3));
        let v3 = MiningPool::new(cfg, behaviors.clone()).run();
        assert!(v3.rejections() > 0, "replayer must still be caught");
        let saved = v3.transport_totals().bytes_saved;
        assert!(saved > 0, "packed framing saved nothing");

        // The raw schemes save nothing: their encodings ARE the raw framing.
        let cfg = PoolConfig::tiny_demo(Scheme::RPoLv1).with_faults(FaultConfig::ideal(3));
        let v1 = MiningPool::new(cfg, behaviors).run();
        assert_eq!(v1.transport_totals().bytes_saved, 0);
        // And v3's savings cover ≥40% of the weight payload it replaced:
        // every submission and opening moves half the raw weight bytes.
        assert!(
            v3.transport_totals().wire_bytes < v1.transport_totals().wire_bytes,
            "v3 wire {} vs v1 {}",
            v3.transport_totals().wire_bytes,
            v1.transport_totals().wire_bytes
        );
    }

    #[test]
    fn baseline_workers_store_nothing() {
        let report = MiningPool::new(
            PoolConfig::tiny_demo(Scheme::Baseline),
            vec![WorkerBehavior::Honest; 2],
        )
        .run();
        assert_eq!(report.worker_storage_bytes, 0);
    }

    #[test]
    fn small_pools_calibrate_against_registered_gpus() {
        // With 2 workers the registered GPUs are {G3090, GA10}; with 1 it
        // degenerates to a same-GPU pair. Both must calibrate and verify
        // honest workers cleanly.
        for n in [1usize, 2] {
            let mut pool = MiningPool::new(
                PoolConfig::tiny_demo(Scheme::RPoLv2),
                vec![WorkerBehavior::Honest; n],
            );
            let report = pool.run();
            assert_eq!(report.rejections(), 0, "{n}-worker pool rejected honesty");
            for rec in &report.epochs {
                let cal = rec.report.calibration.expect("v2 calibrates");
                assert!(cal.alpha > 0.0);
            }
        }
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
        ];
        let serial =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors.clone()).run();
        let parallel =
            MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors).run_parallel();
        assert_eq!(serial.accuracy_curve(), parallel.accuracy_curve());
        for (a, b) in serial.epochs.iter().zip(&parallel.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.rejected, b.report.rejected);
            assert_eq!(a.report.comm, b.report.comm);
        }
    }

    #[test]
    fn hierarchical_run_matches_flat_exactly() {
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::Honest,
        ];
        let flat = MiningPool::new(PoolConfig::tiny_demo(Scheme::RPoLv2), behaviors.clone()).run();
        let cfg = PoolConfig::tiny_demo(Scheme::RPoLv2)
            .with_hierarchy(Hierarchy::new(2, 1).expect("valid hierarchy"));
        let hier = MiningPool::new(cfg, behaviors.clone()).run();
        let hier_par = MiningPool::new(cfg, behaviors).run_parallel();
        assert_eq!(flat.accuracy_curve(), hier.accuracy_curve());
        assert_eq!(flat.accuracy_curve(), hier_par.accuracy_curve());
        for (a, b) in flat.epochs.iter().zip(&hier.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.rejected, b.report.rejected);
            assert_eq!(a.report.quarantined, b.report.quarantined);
            assert_eq!(a.report.verdicts, b.report.verdicts);
            assert_eq!(a.report.comm, b.report.comm);
            assert_eq!(a.report.commit_bytes_hashed, b.report.commit_bytes_hashed);
            // Streaming bounds the peak at the largest committee's share.
            let h = b.report.hierarchy.expect("hierarchical run reports");
            assert!(b.report.peak_commit_bytes < a.report.peak_commit_bytes);
            assert_eq!(h.verdicts, 4);
            assert_eq!(h.audits, 2, "one audit per non-empty committee");
            assert_eq!(h.audit_mismatches, 0, "in-process sub-managers are honest");
            assert!(h.batch_bytes > 0);
        }
        for (a, b) in hier.epochs.iter().zip(&hier_par.epochs) {
            assert_eq!(a.report.accepted, b.report.accepted);
            assert_eq!(a.report.verdicts, b.report.verdicts);
            assert_eq!(a.report.hierarchy, b.report.hierarchy);
        }
    }

    #[test]
    fn accuracy_curve_has_one_point_per_epoch() {
        let mut cfg = PoolConfig::tiny_demo(Scheme::Baseline);
        cfg.epochs = 3;
        let report = MiningPool::new(cfg, vec![WorkerBehavior::Honest; 2]).run();
        assert_eq!(report.accuracy_curve().len(), 3);
    }
}
