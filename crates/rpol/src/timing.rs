//! Analytic epoch-time and overhead model for the paper-scale workloads
//! (Tables II and III).
//!
//! The in-process pool (`crate::pool`) measures the *mini* tasks this
//! reproduction actually trains; the paper's Tables II/III are about
//! ImageNet-scale ResNet50/VGG16 runs that no CPU can execute. Those
//! tables are, however, linear consequences of byte counts, FLOP counts
//! and unit prices — all of which the paper states — so this module
//! regenerates them analytically from `rpol_sim`'s workload catalogue.
//!
//! Accounting conventions (reverse-engineered from the paper's numbers,
//! see EXPERIMENTS.md):
//!
//! * Baseline WAN traffic is one model-size transfer per worker per epoch
//!   (Table III's 8.8 GB ≈ 100 × 90.7 MB).
//! * RPoLv1 adds `q·2·W` proof bytes per worker, RPoLv2 `q·1·W`
//!   (62 GB and 35.6 GB rows match at `q = 3`).
//! * The "one-epoch training time" of Table II is the worker-side critical
//!   path (training + model exchange + proof upload); manager-side
//!   verification and calibration overlap with the next epoch and are
//!   reported separately, matching Table III's per-role computation rows.

use crate::pool::Scheme;
use crate::transport::{FaultProfile, RetryPolicy};
use rpol_sim::cost::CostModel;
use rpol_sim::gpu::GpuModel;
use rpol_sim::net::NetworkModel;
use rpol_sim::workload::Workload;
use serde::{Deserialize, Serialize};

/// Inputs of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// The paper-scale workload (model + dataset + batch size).
    pub workload: Workload,
    /// Number of pool workers.
    pub workers: usize,
    /// Verification scheme.
    pub scheme: Scheme,
    /// Worker GPU (paper's cloud: A10).
    pub worker_gpu: GpuModel,
    /// Manager GPU.
    pub manager_gpu: GpuModel,
    /// WAN model.
    pub net: NetworkModel,
    /// Sampled checkpoints per worker per epoch (paper: 3).
    pub q_samples: u64,
    /// Checkpoint interval in steps (paper: 5).
    pub checkpoint_interval: u64,
    /// LSH groups `l` carried per checkpoint in v2 commitments.
    pub lsh_groups: u64,
    /// Total LSH hash budget `k·l` (drives v2's projection storage).
    pub k_lsh: u64,
}

impl TimingConfig {
    /// The paper's §VII-E setting for a given workload/scheme/pool size.
    pub fn paper_setting(workload: Workload, scheme: Scheme, workers: usize) -> Self {
        Self {
            workload,
            workers,
            scheme,
            worker_gpu: GpuModel::GA10,
            manager_gpu: GpuModel::G3090,
            net: NetworkModel::paper_default(),
            q_samples: 3,
            checkpoint_interval: 5,
            lsh_groups: 4,
            k_lsh: 16,
        }
    }
}

/// The model's outputs for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochBreakdown {
    /// Per-worker training compute (seconds).
    pub worker_compute_s: f64,
    /// Manager verification compute (seconds; overlaps next epoch).
    pub manager_verify_s: f64,
    /// Manager calibration compute (seconds; RPoLv2 only).
    pub manager_calibrate_s: f64,
    /// Wall-clock communication on the epoch's critical path (seconds).
    pub comm_s: f64,
    /// Total WAN bytes charged for the epoch.
    pub comm_bytes: u64,
    /// Checkpoint + LSH storage per worker (bytes).
    pub storage_per_worker_bytes: u64,
}

impl EpochBreakdown {
    /// The Table II "one-epoch training time": worker critical path.
    pub fn epoch_seconds(&self) -> f64 {
        self.worker_compute_s + self.comm_s
    }

    /// Total manager compute (Table III "Comp. M").
    pub fn manager_compute_s(&self) -> f64 {
        self.manager_verify_s + self.manager_calibrate_s
    }

    /// Capital cost in USD for the epoch across the whole pool
    /// (Table III bottom row), with checkpoint storage prorated to the
    /// epoch's duration.
    pub fn capital_cost_usd(&self, workers: usize, cost: &CostModel) -> f64 {
        let gpu_seconds = self.worker_compute_s * workers as f64 + self.manager_compute_s();
        let storage_months = self.epoch_seconds() / (30.0 * 24.0 * 3600.0);
        cost.total_usd(
            gpu_seconds,
            self.comm_bytes,
            self.storage_per_worker_bytes * workers as u64,
            storage_months,
        )
    }
}

/// Evaluates the analytic model.
///
/// # Examples
///
/// ```
/// use rpol::pool::Scheme;
/// use rpol::timing::{epoch_breakdown, TimingConfig};
/// use rpol_sim::workload::{DatasetKind, ModelKind, Workload};
///
/// let workload = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
/// let v1 = epoch_breakdown(&TimingConfig::paper_setting(workload, Scheme::RPoLv1, 100));
/// let v2 = epoch_breakdown(&TimingConfig::paper_setting(workload, Scheme::RPoLv2, 100));
/// // LSH halves the verification traffic (Table III).
/// assert!(v2.comm_bytes < v1.comm_bytes);
/// ```
pub fn epoch_breakdown(cfg: &TimingConfig) -> EpochBreakdown {
    let n = cfg.workers;
    let w_bytes = cfg.workload.model.weight_bytes();
    let flops = cfg.workload.flops_per_worker(n);
    let worker_compute_s = cfg.worker_gpu.compute_seconds(flops);

    // WAN traffic charged per epoch (one model-size exchange per worker,
    // plus scheme-specific proof and commitment bytes).
    let legs = comm_legs(cfg);
    let comm_bytes = legs.total();
    let proof_and_commit_per_worker = (legs.commit + legs.proof) / n as u64;

    // Critical-path communication: model broadcast + proof/update upload.
    let mut comm_s = cfg.net.broadcast_seconds(w_bytes, n);
    if proof_and_commit_per_worker > 0 {
        comm_s += cfg.net.gather_seconds(proof_and_commit_per_worker, n);
    }

    // Manager verification: replay q sampled segments per worker.
    let manager_verify_s = match cfg.scheme {
        Scheme::Baseline => 0.0,
        _ => {
            let replay_samples =
                n as u64 * cfg.q_samples * cfg.checkpoint_interval * cfg.workload.batch_size;
            cfg.manager_gpu.compute_seconds(
                replay_samples as f64 * cfg.workload.model.train_flops_per_sample(),
            )
        }
    };

    // Calibration (v2): the manager trains its own sub-task twice.
    let manager_calibrate_s = match cfg.scheme {
        Scheme::RPoLv2 | Scheme::RPoLv3 => 2.0 * cfg.manager_gpu.compute_seconds(flops),
        _ => 0.0,
    };

    // Worker storage: checkpoints; v2 additionally materializes the LSH
    // projection matrix (k·l rows of `dim` f32s, dim = weights/4 bytes).
    let checkpoints = cfg
        .workload
        .checkpoints_per_worker(n, cfg.checkpoint_interval)
        + 1;
    let storage_per_worker_bytes = match cfg.scheme {
        Scheme::Baseline => w_bytes,
        Scheme::RPoLv1 => checkpoints * w_bytes,
        Scheme::RPoLv2 => checkpoints * w_bytes + cfg.k_lsh * w_bytes,
        // Lattice checkpoints pack losslessly to 2 bytes/weight.
        Scheme::RPoLv3 => checkpoints * w_bytes / 2 + cfg.k_lsh * w_bytes,
    };

    EpochBreakdown {
        worker_compute_s,
        manager_verify_s,
        manager_calibrate_s,
        comm_s,
        comm_bytes,
        storage_per_worker_bytes,
    }
}

/// The epoch's clean WAN bytes split by protocol leg, so fault
/// accounting can condition each leg on its prerequisites actually
/// having been delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommLegs {
    /// One model-size exchange per worker (task download / update upload).
    /// Attempted unconditionally every epoch.
    model: u64,
    /// Commitments riding the submission upload — only sent by workers
    /// whose task leg delivered.
    commit: u64,
    /// Sampled proof openings — only requested from workers whose task
    /// *and* submission legs both delivered.
    proof: u64,
}

impl CommLegs {
    fn total(self) -> u64 {
        self.model + self.commit + self.proof
    }
}

/// Splits the clean per-epoch WAN traffic into its protocol legs (shared
/// by [`epoch_breakdown`] and [`epoch_breakdown_faulty`], so the two
/// always agree on the fault-free totals).
fn comm_legs(cfg: &TimingConfig) -> CommLegs {
    let n = cfg.workers as u64;
    let w_bytes = cfg.workload.model.weight_bytes();
    let checkpoints = cfg
        .workload
        .checkpoints_per_worker(cfg.workers, cfg.checkpoint_interval)
        + 1;
    let (proof_per_worker, commit_per_worker) = match cfg.scheme {
        Scheme::Baseline => (0, 0),
        Scheme::RPoLv1 => (cfg.q_samples * 2 * w_bytes, checkpoints * 32),
        Scheme::RPoLv2 => (cfg.q_samples * w_bytes, checkpoints * 32 * cfg.lsh_groups),
        // Openings ride the packed 2-byte encoding; the commitment adds
        // one quantized SHA-256 digest per checkpoint on top of the LSH
        // group digests.
        Scheme::RPoLv3 => (
            cfg.q_samples * w_bytes / 2,
            checkpoints * 32 * (cfg.lsh_groups + 1),
        ),
    };
    CommLegs {
        model: w_bytes * n,
        commit: commit_per_worker * n,
        proof: proof_per_worker * n,
    }
}

/// Fault-adjusted variant of [`epoch_breakdown`]: what the Table II/III
/// numbers become when the WAN drops, corrupts, or truncates frames and
/// the transport masks it with bounded retries.
///
/// Every message that is *attempted* costs
/// [`FaultProfile::expected_attempts`] transmissions in expectation, and
/// each of the two critical-path legs (task download, submission upload)
/// stalls for the expected retry backoff. Crucially, later protocol legs
/// are attempted only when their prerequisites delivered: a worker whose
/// task download exhausted its retry budget (probability `q^r`) never
/// uploads a commitment, and a worker that also lost its submission leg
/// is never asked for proof openings. Charging the blanket multiplier to
/// every leg — the old accounting — double-counted exactly those
/// retransmitted proof-response bytes whose exchange had already died
/// upstream (e.g. truncated, then dropped until exhaustion). Compute and
/// storage are unaffected — faults live on the wire, not in the GPUs.
pub fn epoch_breakdown_faulty(
    cfg: &TimingConfig,
    profile: &FaultProfile,
    policy: &RetryPolicy,
) -> EpochBreakdown {
    let clean = epoch_breakdown(cfg);
    let attempts = profile.expected_attempts(policy.max_attempts);
    let q = profile.attempt_failure_prob();
    // Probability one message survives its whole retry budget.
    let p_ok = 1.0 - q.powi(policy.max_attempts as i32);

    // Expected backoff stall per delivered message: retry `r` happens
    // only if the first `r` attempts all failed, and then waits the
    // nominal backoff for that retry.
    let mut stall_s = 0.0;
    let mut p_reach = q;
    for retry in 1..policy.max_attempts {
        stall_s += p_reach * policy.backoff_s(retry);
        p_reach *= q;
    }

    // Per-leg byte accounting: each leg pays the expected attempts for
    // the messages actually placed on the wire.
    let legs = comm_legs(cfg);
    let model_eff = legs.model as f64 * attempts;
    let commit_eff = legs.commit as f64 * attempts * p_ok;
    let proof_eff = legs.proof as f64 * attempts * p_ok * p_ok;

    EpochBreakdown {
        comm_s: clean.comm_s * attempts + 2.0 * stall_s,
        comm_bytes: (model_eff + commit_eff + proof_eff).round() as u64,
        ..clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_sim::workload::{DatasetKind, ModelKind};

    fn cfg(model: ModelKind, scheme: Scheme, workers: usize) -> TimingConfig {
        TimingConfig::paper_setting(Workload::new(model, DatasetKind::ImageNet), scheme, workers)
    }

    #[test]
    fn scheme_ordering_epoch_time() {
        // Table II shape: baseline < RPoLv2 < RPoLv1 at fixed pool size.
        for model in [ModelKind::ResNet50, ModelKind::Vgg16] {
            for n in [10, 100] {
                let b = epoch_breakdown(&cfg(model, Scheme::Baseline, n)).epoch_seconds();
                let v1 = epoch_breakdown(&cfg(model, Scheme::RPoLv1, n)).epoch_seconds();
                let v2 = epoch_breakdown(&cfg(model, Scheme::RPoLv2, n)).epoch_seconds();
                assert!(b < v2 && v2 < v1, "{model} n={n}: {b} {v2} {v1}");
            }
        }
    }

    #[test]
    fn more_workers_faster_epochs() {
        // Table II: 100 workers finish epochs faster than 10.
        for scheme in [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2] {
            let t10 = epoch_breakdown(&cfg(ModelKind::ResNet50, scheme, 10)).epoch_seconds();
            let t100 = epoch_breakdown(&cfg(ModelKind::ResNet50, scheme, 100)).epoch_seconds();
            assert!(t100 < t10, "{scheme}: {t100} !< {t10}");
        }
    }

    #[test]
    fn lsh_gain_larger_for_comm_dominated_vgg() {
        // Table II: RPoLv2's speedup over v1 is bigger for VGG16 (bigger
        // weights → comm dominated) than for ResNet50.
        let gain = |model| {
            let v1 = epoch_breakdown(&cfg(model, Scheme::RPoLv1, 100)).epoch_seconds();
            let v2 = epoch_breakdown(&cfg(model, Scheme::RPoLv2, 100)).epoch_seconds();
            (v1 - v2) / v1
        };
        assert!(gain(ModelKind::Vgg16) > gain(ModelKind::ResNet50));
    }

    #[test]
    fn table3_comm_bytes_match_paper() {
        // 100 workers, ResNet50/ImageNet: baseline ≈ 9 GB, v1 ≈ 63 GB,
        // v2 ≈ 36 GB (paper: 8.8 / 62 / 35.6).
        let gb = 1e9;
        let b = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::Baseline, 100));
        let v1 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv1, 100));
        let v2 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv2, 100));
        assert!((b.comm_bytes as f64 / gb - 9.07).abs() < 0.5);
        assert!((v1.comm_bytes as f64 / gb - 63.5).abs() < 2.0);
        assert!((v2.comm_bytes as f64 / gb - 36.3).abs() < 1.5);
        // Verification-only traffic: v2 cuts v1's by half.
        let v1_extra = v1.comm_bytes - b.comm_bytes;
        let v2_extra = v2.comm_bytes - b.comm_bytes;
        let ratio = v2_extra as f64 / v1_extra as f64;
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn v2_calibration_costs_manager_extra_compute() {
        // Table III: manager compute v2 > v1 (sub-task trained twice).
        let v1 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv1, 100));
        let v2 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv2, 100));
        assert!(v2.manager_compute_s() > v1.manager_compute_s());
        assert_eq!(v1.manager_calibrate_s, 0.0);
    }

    #[test]
    fn v2_storage_exceeds_v1() {
        // Table III: v2 stores LSH projections on top of checkpoints.
        let v1 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv1, 100));
        let v2 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv2, 100));
        let b = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::Baseline, 100));
        assert!(b.storage_per_worker_bytes < v1.storage_per_worker_bytes);
        assert!(v1.storage_per_worker_bytes < v2.storage_per_worker_bytes);
    }

    #[test]
    fn faulty_breakdown_costs_more_than_clean() {
        let c = cfg(ModelKind::ResNet50, Scheme::RPoLv2, 100);
        let policy = RetryPolicy::default();
        let clean = epoch_breakdown(&c);
        let ideal = epoch_breakdown_faulty(&c, &FaultProfile::ideal(), &policy);
        // A perfect network costs exactly the clean model.
        assert_eq!(ideal, clean);

        let lossy = epoch_breakdown_faulty(&c, &FaultProfile::lossy(), &policy);
        assert!(lossy.comm_s > clean.comm_s);
        assert!(lossy.comm_bytes > clean.comm_bytes);
        // Faults touch only the wire.
        assert_eq!(lossy.worker_compute_s, clean.worker_compute_s);
        assert_eq!(lossy.manager_verify_s, clean.manager_verify_s);
        assert_eq!(
            lossy.storage_per_worker_bytes,
            clean.storage_per_worker_bytes
        );
        // ~12% combined loss rate inflates traffic by roughly 1/(1-q),
        // never more than 2x under the default retry budget.
        let inflation = lossy.comm_bytes as f64 / clean.comm_bytes as f64;
        assert!((1.05..2.0).contains(&inflation), "inflation {inflation}");
    }

    #[test]
    fn faulty_comm_monotone_in_drop_rate() {
        let c = cfg(ModelKind::Vgg16, Scheme::RPoLv1, 10);
        let policy = RetryPolicy::default();
        let mut last = epoch_breakdown_faulty(&c, &FaultProfile::ideal(), &policy);
        for drop_prob in [0.05, 0.15, 0.30, 0.60] {
            let profile = FaultProfile {
                drop_prob,
                ..FaultProfile::ideal()
            };
            let next = epoch_breakdown_faulty(&c, &profile, &policy);
            assert!(
                next.comm_s > last.comm_s && next.comm_bytes > last.comm_bytes,
                "drop {drop_prob}: {next:?} !> {last:?}"
            );
            last = next;
        }
    }

    #[test]
    fn faulty_bytes_never_exceed_blanket_multiplier() {
        // Regression for the old accounting, which charged every leg the
        // blanket expected-attempts multiplier: proof-response bytes were
        // retransmission-charged even for exchanges that had already died
        // upstream. With any real loss rate the per-leg total must come in
        // strictly under `clean × E[attempts]`.
        let policy = RetryPolicy::default();
        for scheme in [Scheme::RPoLv1, Scheme::RPoLv2] {
            let c = cfg(ModelKind::ResNet50, scheme, 100);
            let clean = epoch_breakdown(&c);
            for profile in [FaultProfile::lossy(), FaultProfile::harsh()] {
                let attempts = profile.expected_attempts(policy.max_attempts);
                let blanket = (clean.comm_bytes as f64 * attempts).round() as u64;
                let faulty = epoch_breakdown_faulty(&c, &profile, &policy);
                assert!(
                    faulty.comm_bytes < blanket,
                    "{scheme}: per-leg {} !< blanket {blanket}",
                    faulty.comm_bytes
                );
                // But the surviving legs still pay their retransmissions.
                assert!(faulty.comm_bytes > clean.comm_bytes);
            }
        }
    }

    #[test]
    fn faulty_table3_byte_totals_pinned() {
        // Pins the lossy-profile Table III byte totals (ResNet50/ImageNet,
        // 100 workers, default retry budget) so accounting changes cannot
        // slip in silently. The lossy profile's combined per-attempt loss
        // rate is ~12.7%, so traffic inflates by E ≈ 1.145 with the
        // commit/proof legs discounted by delivery probability.
        let policy = RetryPolicy::default();
        let profile = FaultProfile::lossy();
        let pinned = [
            (Scheme::Baseline, 10_387_276_697_u64),
            (Scheme::RPoLv1, 72_710_498_929),
            (Scheme::RPoLv2, 41_549_169_997),
        ];
        for (scheme, expected) in pinned {
            let got =
                epoch_breakdown_faulty(&cfg(ModelKind::ResNet50, scheme, 100), &profile, &policy)
                    .comm_bytes;
            assert_eq!(got, expected, "{scheme}: {got} != pinned {expected}");
        }
    }

    #[test]
    fn proof_legs_discounted_by_upstream_delivery() {
        // Under a harsh profile the proof leg is conditioned on two
        // delivered upstream legs (p_ok²), the commit leg on one (p_ok);
        // the verification-only surcharge over baseline must therefore
        // shrink relative to the model leg as faults worsen.
        let policy = RetryPolicy::default();
        let surcharge_ratio = |profile: &FaultProfile| {
            let b = epoch_breakdown_faulty(
                &cfg(ModelKind::ResNet50, Scheme::Baseline, 100),
                profile,
                &policy,
            );
            let v1 = epoch_breakdown_faulty(
                &cfg(ModelKind::ResNet50, Scheme::RPoLv1, 100),
                profile,
                &policy,
            );
            (v1.comm_bytes - b.comm_bytes) as f64 / b.comm_bytes as f64
        };
        let extreme = FaultProfile {
            drop_prob: 0.65,
            ..FaultProfile::ideal()
        };
        assert!(surcharge_ratio(&extreme) < surcharge_ratio(&FaultProfile::ideal()));
    }

    #[test]
    fn capital_cost_ordering_matches_table3() {
        // Baseline < RPoLv2 < RPoLv1; v2 roughly a third cheaper than v1.
        let cost = CostModel::paper_default();
        let b = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::Baseline, 100))
            .capital_cost_usd(100, &cost);
        let v1 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv1, 100))
            .capital_cost_usd(100, &cost);
        let v2 = epoch_breakdown(&cfg(ModelKind::ResNet50, Scheme::RPoLv2, 100))
            .capital_cost_usd(100, &cost);
        assert!(b < v2 && v2 < v1, "{b} {v2} {v1}");
        let saving = (v1 - v2) / v1;
        assert!(
            (0.2..0.5).contains(&saving),
            "v2 saving {saving} out of the paper's ~35% band"
        );
    }
}
