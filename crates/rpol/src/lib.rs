//! # RPoL: robust and efficient proof of learning for secure pooled mining
//!
//! A from-scratch Rust reproduction of *"Secure Collaborative Learning in
//! Mining Pool via Robust and Efficient Verification"* (ICDCS 2023).
//!
//! A PoUW mining pool distributes a DNN training task over untrusted
//! workers. RPoL lets the pool manager verify, by sampled replay, that each
//! worker actually performed its training — while tolerating the inherent
//! reproduction errors of parallel hardware and keeping verification
//! traffic low. Three mechanisms make it work:
//!
//! 1. **Address-encoded model** ([`amlayer`]) — a frozen, spectrally
//!    normalized residual layer derived from the manager's blockchain
//!    address. It preserves accuracy, is cheap, and makes a stolen model
//!    worthless: swapping in another address's layer collapses accuracy.
//! 2. **Commitment-based secure sampling** ([`commitment`], [`worker`],
//!    [`manager`]) — workers train with PRF-deterministic batches,
//!    checkpoint every `i` steps, and commit to the ordered checkpoint
//!    digests *before* the manager reveals which checkpoints it samples.
//! 3. **LSH verification with adaptive calibration** ([`verify`],
//!    [`calibrate`]) — commitments carry p-stable LSH digests; the manager
//!    replays each sampled step and fuzzy-matches signatures, falling back
//!    to a raw-weight double-check so honest workers are never rejected.
//!
//! The [`pool`] module assembles everything into a runnable mining pool
//! with configurable adversaries; [`sampling`] and [`economics`] provide
//! the paper's Theorem 2/3 sample-count analysis.
//!
//! # Examples
//!
//! End-to-end: one honest worker, one epoch, verified with LSH:
//!
//! ```
//! use rpol::pool::{MiningPool, PoolConfig, Scheme};
//! use rpol::adversary::WorkerBehavior;
//!
//! let config = PoolConfig::tiny_demo(Scheme::RPoLv2);
//! let mut pool = MiningPool::new(config, vec![WorkerBehavior::Honest; 3]);
//! let report = pool.run();
//! assert_eq!(report.rejections(), 0); // honest workers always pass
//! ```

pub mod adversary;
pub mod amlayer;
pub mod calibrate;
pub mod client;
pub mod commitment;
pub mod committee;
pub mod decentralized;
pub mod economics;
pub mod judge;
pub mod manager;
pub mod mining;
pub(crate) mod poll;
pub mod pool;
pub mod sampling;
pub mod server;
pub mod tasks;
pub mod timing;
pub mod trainer;
pub mod transport;
pub mod verify;
pub mod wire;
pub mod worker;

pub use amlayer::AmLayer;
pub use calibrate::{CalibrationResult, Calibrator};
pub use pool::{MiningPool, PoolConfig, PoolReport, Scheme};
pub use transport::{FaultConfig, FaultProfile, RetryPolicy, Transport, TransportStats};
pub use verify::{VerificationOutcome, Verifier};
