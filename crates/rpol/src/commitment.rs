//! Epoch commitments over checkpoint sequences (§V-B, §V-C).
//!
//! At the end of an epoch a worker commits to its ordered checkpoints
//! *before* learning which ones will be sampled:
//!
//! * **RPoLv1** commits to the SHA-256 of each checkpoint's raw weights;
//!   opening a sample means shipping both raw weight vectors.
//! * **RPoLv2** commits to the per-group LSH digests of each checkpoint's
//!   weights; opening a sample means shipping only the *input* weights —
//!   the output is checked by fuzzy-matching the replayed weights' LSH
//!   signature against the committed group digests.
//! * **RPoLv3** commits to the bf16 **lattice image** of each checkpoint:
//!   the LSH group digests of the quantized weights plus one SHA-256 over
//!   the packed 2-byte image. V3 workers train *on* the lattice (weights
//!   are snapped at every checkpoint boundary), so the image is the
//!   checkpoint — the quant digest is an exact V1-grade binding at half
//!   the hashed bytes, and the LSH entries drive the fuzzy accept with a
//!   raw-distance escape hatch for borderline (single-group) matches.

use rpol_crypto::commitment::{Commitment, HashListCommitment};
use rpol_crypto::sha256::{Digest, Sha256};
use rpol_lsh::{LshFamily, Signature};
use serde::{Deserialize, Serialize};

/// An RPoLv2 commitment: ordered per-checkpoint LSH group digests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshCommitment {
    entries: Vec<Vec<Digest>>,
}

impl LshCommitment {
    /// Commits to checkpoints by hashing each with the epoch's LSH family.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty or any checkpoint's length
    /// mismatches the family dimension.
    pub fn commit(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        assert!(!checkpoints.is_empty(), "no checkpoints to commit");
        // One GEMM pass computes every checkpoint's projections, and one
        // batch-hash pass digests every group — bitwise identical to the
        // per-checkpoint `family.hash(w).group_digests()` chain.
        let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();
        let signatures = family.hash_batch(&refs);
        let entries = Signature::group_digests_batch(&signatures);
        Self { entries }
    }

    /// Reassembles a commitment from raw per-checkpoint group digests
    /// (the wire-decoding path).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, any entry is empty, or entries have
    /// unequal group counts.
    pub fn from_entries(entries: Vec<Vec<Digest>>) -> Self {
        assert!(!entries.is_empty(), "no committed checkpoints");
        let l = entries[0].len();
        assert!(l > 0, "empty group digest list");
        assert!(
            entries.iter().all(|e| e.len() == l),
            "inconsistent group counts"
        );
        Self { entries }
    }

    /// The committed group digests for checkpoint `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn entry(&self, index: usize) -> &[Digest] {
        &self.entries[index]
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the commitment is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A single digest binding the whole commitment.
    pub fn value(&self) -> Digest {
        let mut h = Sha256::new();
        for entry in &self.entries {
            for d in entry {
                h.update(d.as_bytes());
            }
        }
        h.finalize()
    }

    /// Bytes crossing the wire when the commitment is submitted
    /// (`32 · l` per checkpoint).
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(|e| e.len() * 32).sum()
    }
}

/// An RPoLv3 commitment: per-checkpoint LSH group digests over the bf16
/// lattice image, plus one SHA-256 of the packed 2-byte image.
///
/// Committing always quantizes: the committed object is the checkpoint's
/// bf16 image regardless of what the caller passes. V3 workers keep their
/// checkpoints *on* the lattice (the trainer snaps at every boundary), so
/// for them the image is the checkpoint itself and the quant digest binds
/// the full-precision weights exactly — the verifier enforces lattice
/// membership on every opened checkpoint, making the 2-byte digest as
/// binding as RPoLv1's 4-byte one at half the hashed bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantCommitment {
    entries: Vec<Vec<Digest>>,
    quant_digests: Vec<Digest>,
}

impl QuantCommitment {
    /// Commits to the bf16 images of `checkpoints` with the epoch's LSH
    /// family.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty or any checkpoint's length
    /// mismatches the family dimension.
    pub fn commit(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        assert!(!checkpoints.is_empty(), "no checkpoints to commit");
        // Snap every checkpoint onto the lattice (a no-op image copy for
        // V3-trained checkpoints), then reuse the batched GEMM + multi-lane
        // hash pipelines over the quantized weights.
        let images: Vec<Vec<f32>> = checkpoints
            .iter()
            .map(|w| rpol_tensor::quant::bf16_image(w))
            .collect();
        let refs: Vec<&[f32]> = images.iter().map(|w| w.as_slice()).collect();
        let signatures = family.hash_batch(&refs);
        let entries = Signature::group_digests_batch(&signatures);
        let quant_digests = rpol_crypto::sha256_bf16_batch(&refs);
        Self {
            entries,
            quant_digests,
        }
    }

    /// Reassembles a commitment from raw per-checkpoint group digests and
    /// packed-image digests (the wire-decoding path).
    ///
    /// # Panics
    ///
    /// Panics if the parts are empty, disagree in checkpoint count, or
    /// entries have inconsistent group counts.
    pub fn from_parts(entries: Vec<Vec<Digest>>, quant_digests: Vec<Digest>) -> Self {
        assert!(!entries.is_empty(), "no committed checkpoints");
        assert_eq!(
            entries.len(),
            quant_digests.len(),
            "entry/digest count mismatch"
        );
        let l = entries[0].len();
        assert!(l > 0, "empty group digest list");
        assert!(
            entries.iter().all(|e| e.len() == l),
            "inconsistent group counts"
        );
        Self {
            entries,
            quant_digests,
        }
    }

    /// The committed LSH group digests for checkpoint `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn entry(&self, index: usize) -> &[Digest] {
        &self.entries[index]
    }

    /// The committed packed-image digest for checkpoint `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn quant_digest(&self, index: usize) -> &Digest {
        &self.quant_digests[index]
    }

    /// All committed packed-image digests, in checkpoint order.
    pub fn quant_digests(&self) -> &[Digest] {
        &self.quant_digests
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the commitment is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A single digest binding the whole commitment.
    pub fn value(&self) -> Digest {
        let mut h = Sha256::new();
        for (entry, qd) in self.entries.iter().zip(&self.quant_digests) {
            for d in entry {
                h.update(d.as_bytes());
            }
            h.update(qd.as_bytes());
        }
        h.finalize()
    }

    /// Bytes crossing the wire when the commitment is submitted
    /// (`32 · (l + 1)` per checkpoint).
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(|e| (e.len() + 1) * 32).sum()
    }
}

/// A scheme-tagged epoch commitment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpochCommitment {
    /// Raw-hash commitment (RPoLv1).
    V1(HashListCommitment),
    /// LSH commitment (RPoLv2).
    V2(LshCommitment),
    /// Quantized lattice commitment (RPoLv3).
    V3(QuantCommitment),
}

impl EpochCommitment {
    /// Builds the RPoLv1 commitment over raw checkpoint weights.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty.
    pub fn commit_v1(checkpoints: &[Vec<f32>]) -> Self {
        assert!(!checkpoints.is_empty(), "no checkpoints to commit");
        // All checkpoint digests in one multi-lane pass: checkpoints share
        // a length, so the batch hasher keeps every SIMD lane occupied.
        let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();
        let digests: Vec<Digest> = rpol_crypto::sha256_f32_batch(&refs);
        let commitment = EpochCommitment::V1(HashListCommitment::commit(&digests));
        commitment.count_commit(checkpoints.len());
        commitment
    }

    /// Builds the RPoLv2 commitment with the epoch's LSH family.
    pub fn commit_v2(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        let commitment = EpochCommitment::V2(LshCommitment::commit(checkpoints, family));
        commitment.count_commit(checkpoints.len());
        commitment
    }

    /// Builds the RPoLv3 quantized commitment with the epoch's LSH family.
    pub fn commit_v3(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        let commitment = EpochCommitment::V3(QuantCommitment::commit(checkpoints, family));
        commitment.count_commit(checkpoints.len());
        commitment
    }

    /// Bumps the process-wide commit counters. Workers commit from inside
    /// training threads, so this leaf cannot thread an explicit recorder;
    /// the counters are plain atomics and scheduling-independent.
    fn count_commit(&self, checkpoints: usize) {
        if rpol_obs::global_enabled() {
            let rec = rpol_obs::global();
            rec.counter_add("rpol.commit.epochs", 1);
            rec.counter_add("rpol.commit.checkpoints", checkpoints as u64);
            rec.counter_add("rpol.commit.wire_bytes", self.wire_size() as u64);
        }
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        match self {
            EpochCommitment::V1(c) => c.len(),
            EpochCommitment::V2(c) => c.len(),
            EpochCommitment::V3(c) => c.len(),
        }
    }

    /// Whether no checkpoints are committed (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes crossing the wire at submission time.
    pub fn wire_size(&self) -> usize {
        match self {
            EpochCommitment::V1(c) => c.wire_size(),
            EpochCommitment::V2(c) => c.wire_size(),
            EpochCommitment::V3(c) => c.wire_size(),
        }
    }

    /// Bytes *hashed* to build this commitment, the throughput currency of
    /// the digest pipeline. Deterministic in the commitment's shape so the
    /// worker (in-process) and the manager (after transport decode) agree:
    ///
    /// * V1 digests each checkpoint's raw f32 image — `len · 4` per
    ///   checkpoint;
    /// * V2 digests `l` group messages of `k` 8-byte values;
    /// * V3 digests the packed 2-byte bf16 image *and* the `l` group
    ///   messages.
    pub fn bytes_hashed(&self, model_len: usize, hashes_per_group: usize) -> u64 {
        let n = self.len() as u64;
        match self {
            EpochCommitment::V1(_) => n * model_len as u64 * 4,
            EpochCommitment::V2(c) => n * c.entry(0).len() as u64 * hashes_per_group as u64 * 8,
            EpochCommitment::V3(c) => {
                let lsh = c.entry(0).len() as u64 * hashes_per_group as u64 * 8;
                n * (model_len as u64 * 2 + lsh)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_lsh::LshParams;

    fn checkpoints(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..dim).map(|j| (i * dim + j) as f32 * 0.01).collect())
            .collect()
    }

    fn family(dim: usize) -> LshFamily {
        LshFamily::generate(dim, LshParams::new(1.0, 4, 4), 42)
    }

    #[test]
    fn v1_binds_each_checkpoint() {
        let cps = checkpoints(4, 8);
        let c1 = EpochCommitment::commit_v1(&cps);
        let mut tampered = cps.clone();
        tampered[2][0] += 1e-4;
        let c2 = EpochCommitment::commit_v1(&tampered);
        assert_ne!(c1, c2);
        assert_eq!(c1.len(), 4);
    }

    #[test]
    fn v1_digests_equal_scalar_hashing() {
        // The batched commitment path must reproduce the scalar
        // per-checkpoint digests exactly.
        let cps = checkpoints(5, 33);
        match EpochCommitment::commit_v1(&cps) {
            EpochCommitment::V1(list) => {
                for (i, cp) in cps.iter().enumerate() {
                    assert_eq!(list.digest_at(i), rpol_crypto::sha256::sha256_f32(cp));
                }
            }
            _ => unreachable!("commit_v1 built a non-V1 commitment"),
        }
    }

    #[test]
    fn v2_entries_match_family_hash() {
        let cps = checkpoints(3, 8);
        let fam = family(8);
        let c = LshCommitment::commit(&cps, &fam);
        for (i, cp) in cps.iter().enumerate() {
            assert_eq!(c.entry(i), fam.hash(cp).group_digests().as_slice());
        }
    }

    #[test]
    fn v2_wire_size_is_l_digests_per_checkpoint() {
        let cps = checkpoints(5, 8);
        let c = LshCommitment::commit(&cps, &family(8));
        assert_eq!(c.wire_size(), 5 * 4 * 32); // l = 4 groups
    }

    #[test]
    fn v2_value_binds_order() {
        let cps = checkpoints(3, 8);
        let fam = family(8);
        let a = LshCommitment::commit(&cps, &fam).value();
        let mut swapped = cps.clone();
        swapped.swap(0, 2);
        let b = LshCommitment::commit(&swapped, &fam).value();
        assert_ne!(a, b);
    }

    #[test]
    fn v3_commits_the_lattice_image() {
        let cps = checkpoints(3, 8);
        let fam = family(8);
        let c = QuantCommitment::commit(&cps, &fam);
        for (i, cp) in cps.iter().enumerate() {
            let image = rpol_tensor::quant::bf16_image(cp);
            assert_eq!(c.entry(i), fam.hash(&image).group_digests().as_slice());
            assert_eq!(
                *c.quant_digest(i),
                rpol_crypto::sha256(&rpol_crypto::bytes::bf16_as_le_bytes(cp))
            );
        }
        // Sub-lattice perturbations vanish in the image: committing the
        // snapped checkpoints gives the identical commitment. (V3 workers
        // train on the lattice, so this is the no-op case, not a leak.)
        let snapped: Vec<Vec<f32>> = cps
            .iter()
            .map(|w| rpol_tensor::quant::bf16_image(w))
            .collect();
        assert_eq!(c, QuantCommitment::commit(&snapped, &fam));
    }

    #[test]
    fn v3_quant_digest_binds_lattice_steps() {
        let cps: Vec<Vec<f32>> = checkpoints(2, 8)
            .iter()
            .map(|w| rpol_tensor::quant::bf16_image(w))
            .collect();
        let fam = family(8);
        let a = QuantCommitment::commit(&cps, &fam);
        let mut tampered = cps.clone();
        // One lattice step on one weight: the smallest representable change.
        tampered[1][3] = f32::from_bits(tampered[1][3].to_bits() + 0x1_0000);
        let b = QuantCommitment::commit(&tampered, &fam);
        assert_ne!(a.quant_digest(1), b.quant_digest(1));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn v3_wire_size_adds_one_digest_per_checkpoint() {
        let cps = checkpoints(5, 8);
        let c = QuantCommitment::commit(&cps, &family(8));
        assert_eq!(c.wire_size(), 5 * (4 + 1) * 32); // l = 4 groups + quant digest
    }

    #[test]
    fn v3_from_parts_round_trips() {
        let cps = checkpoints(3, 8);
        let c = QuantCommitment::commit(&cps, &family(8));
        let entries: Vec<Vec<Digest>> = (0..c.len()).map(|i| c.entry(i).to_vec()).collect();
        let rebuilt = QuantCommitment::from_parts(entries, c.quant_digests().to_vec());
        assert_eq!(rebuilt, c);
        assert_eq!(rebuilt.value(), c.value());
    }

    #[test]
    fn bytes_hashed_tracks_scheme_costs() {
        let dim = 512;
        let cps = checkpoints(3, dim);
        let fam = family(dim); // l = 4, k = 4
        let v1 = EpochCommitment::commit_v1(&cps);
        let v2 = EpochCommitment::commit_v2(&cps, &fam);
        let v3 = EpochCommitment::commit_v3(&cps, &fam);
        assert_eq!(v1.bytes_hashed(dim, 4), 3 * dim as u64 * 4);
        assert_eq!(v2.bytes_hashed(dim, 4), 3 * 4 * 4 * 8);
        assert_eq!(v3.bytes_hashed(dim, 4), 3 * (dim as u64 * 2 + 4 * 4 * 8));
        // The V3 checkpoint-image hashing is half of V1's.
        assert!(v3.bytes_hashed(dim, 4) < v1.bytes_hashed(dim, 4));
    }

    #[test]
    fn v2_much_smaller_than_v1_proofs() {
        // The point of RPoLv2: commitment grows with l (constant), not
        // with model size.
        let dim = 10_000;
        let cps = checkpoints(2, dim);
        let c = LshCommitment::commit(&cps, &family(dim));
        assert!(c.wire_size() < dim); // 256 bytes vs 40 KB of weights
    }
}
