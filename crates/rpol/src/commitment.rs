//! Epoch commitments over checkpoint sequences (§V-B, §V-C).
//!
//! At the end of an epoch a worker commits to its ordered checkpoints
//! *before* learning which ones will be sampled:
//!
//! * **RPoLv1** commits to the SHA-256 of each checkpoint's raw weights;
//!   opening a sample means shipping both raw weight vectors.
//! * **RPoLv2** commits to the per-group LSH digests of each checkpoint's
//!   weights; opening a sample means shipping only the *input* weights —
//!   the output is checked by fuzzy-matching the replayed weights' LSH
//!   signature against the committed group digests.

use rpol_crypto::commitment::{Commitment, HashListCommitment};
use rpol_crypto::sha256::{Digest, Sha256};
use rpol_lsh::{LshFamily, Signature};
use serde::{Deserialize, Serialize};

/// An RPoLv2 commitment: ordered per-checkpoint LSH group digests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshCommitment {
    entries: Vec<Vec<Digest>>,
}

impl LshCommitment {
    /// Commits to checkpoints by hashing each with the epoch's LSH family.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty or any checkpoint's length
    /// mismatches the family dimension.
    pub fn commit(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        assert!(!checkpoints.is_empty(), "no checkpoints to commit");
        // One GEMM pass computes every checkpoint's projections, and one
        // batch-hash pass digests every group — bitwise identical to the
        // per-checkpoint `family.hash(w).group_digests()` chain.
        let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();
        let signatures = family.hash_batch(&refs);
        let entries = Signature::group_digests_batch(&signatures);
        Self { entries }
    }

    /// Reassembles a commitment from raw per-checkpoint group digests
    /// (the wire-decoding path).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, any entry is empty, or entries have
    /// unequal group counts.
    pub fn from_entries(entries: Vec<Vec<Digest>>) -> Self {
        assert!(!entries.is_empty(), "no committed checkpoints");
        let l = entries[0].len();
        assert!(l > 0, "empty group digest list");
        assert!(
            entries.iter().all(|e| e.len() == l),
            "inconsistent group counts"
        );
        Self { entries }
    }

    /// The committed group digests for checkpoint `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn entry(&self, index: usize) -> &[Digest] {
        &self.entries[index]
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the commitment is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A single digest binding the whole commitment.
    pub fn value(&self) -> Digest {
        let mut h = Sha256::new();
        for entry in &self.entries {
            for d in entry {
                h.update(d.as_bytes());
            }
        }
        h.finalize()
    }

    /// Bytes crossing the wire when the commitment is submitted
    /// (`32 · l` per checkpoint).
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(|e| e.len() * 32).sum()
    }
}

/// A scheme-tagged epoch commitment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpochCommitment {
    /// Raw-hash commitment (RPoLv1).
    V1(HashListCommitment),
    /// LSH commitment (RPoLv2).
    V2(LshCommitment),
}

impl EpochCommitment {
    /// Builds the RPoLv1 commitment over raw checkpoint weights.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty.
    pub fn commit_v1(checkpoints: &[Vec<f32>]) -> Self {
        assert!(!checkpoints.is_empty(), "no checkpoints to commit");
        // All checkpoint digests in one multi-lane pass: checkpoints share
        // a length, so the batch hasher keeps every SIMD lane occupied.
        let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();
        let digests: Vec<Digest> = rpol_crypto::sha256_f32_batch(&refs);
        let commitment = EpochCommitment::V1(HashListCommitment::commit(&digests));
        commitment.count_commit(checkpoints.len());
        commitment
    }

    /// Builds the RPoLv2 commitment with the epoch's LSH family.
    pub fn commit_v2(checkpoints: &[Vec<f32>], family: &LshFamily) -> Self {
        let commitment = EpochCommitment::V2(LshCommitment::commit(checkpoints, family));
        commitment.count_commit(checkpoints.len());
        commitment
    }

    /// Bumps the process-wide commit counters. Workers commit from inside
    /// training threads, so this leaf cannot thread an explicit recorder;
    /// the counters are plain atomics and scheduling-independent.
    fn count_commit(&self, checkpoints: usize) {
        if rpol_obs::global_enabled() {
            let rec = rpol_obs::global();
            rec.counter_add("rpol.commit.epochs", 1);
            rec.counter_add("rpol.commit.checkpoints", checkpoints as u64);
            rec.counter_add("rpol.commit.wire_bytes", self.wire_size() as u64);
        }
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        match self {
            EpochCommitment::V1(c) => c.len(),
            EpochCommitment::V2(c) => c.len(),
        }
    }

    /// Whether no checkpoints are committed (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes crossing the wire at submission time.
    pub fn wire_size(&self) -> usize {
        match self {
            EpochCommitment::V1(c) => c.wire_size(),
            EpochCommitment::V2(c) => c.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_lsh::LshParams;

    fn checkpoints(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..dim).map(|j| (i * dim + j) as f32 * 0.01).collect())
            .collect()
    }

    fn family(dim: usize) -> LshFamily {
        LshFamily::generate(dim, LshParams::new(1.0, 4, 4), 42)
    }

    #[test]
    fn v1_binds_each_checkpoint() {
        let cps = checkpoints(4, 8);
        let c1 = EpochCommitment::commit_v1(&cps);
        let mut tampered = cps.clone();
        tampered[2][0] += 1e-4;
        let c2 = EpochCommitment::commit_v1(&tampered);
        assert_ne!(c1, c2);
        assert_eq!(c1.len(), 4);
    }

    #[test]
    fn v1_digests_equal_scalar_hashing() {
        // The batched commitment path must reproduce the scalar
        // per-checkpoint digests exactly.
        let cps = checkpoints(5, 33);
        match EpochCommitment::commit_v1(&cps) {
            EpochCommitment::V1(list) => {
                for (i, cp) in cps.iter().enumerate() {
                    assert_eq!(list.digest_at(i), rpol_crypto::sha256::sha256_f32(cp));
                }
            }
            EpochCommitment::V2(_) => unreachable!("commit_v1 built a V2"),
        }
    }

    #[test]
    fn v2_entries_match_family_hash() {
        let cps = checkpoints(3, 8);
        let fam = family(8);
        let c = LshCommitment::commit(&cps, &fam);
        for (i, cp) in cps.iter().enumerate() {
            assert_eq!(c.entry(i), fam.hash(cp).group_digests().as_slice());
        }
    }

    #[test]
    fn v2_wire_size_is_l_digests_per_checkpoint() {
        let cps = checkpoints(5, 8);
        let c = LshCommitment::commit(&cps, &family(8));
        assert_eq!(c.wire_size(), 5 * 4 * 32); // l = 4 groups
    }

    #[test]
    fn v2_value_binds_order() {
        let cps = checkpoints(3, 8);
        let fam = family(8);
        let a = LshCommitment::commit(&cps, &fam).value();
        let mut swapped = cps.clone();
        swapped.swap(0, 2);
        let b = LshCommitment::commit(&swapped, &fam).value();
        assert_ne!(a, b);
    }

    #[test]
    fn v2_much_smaller_than_v1_proofs() {
        // The point of RPoLv2: commitment grows with l (constant), not
        // with model size.
        let dim = 10_000;
        let cps = checkpoints(2, dim);
        let c = LshCommitment::commit(&cps, &family(dim));
        assert!(c.wire_size() < dim); // 256 bytes vs 40 KB of weights
    }
}
