//! The mining competition: pools racing over consecutive consensus rounds.
//!
//! §VII-E's bottom line is that RPoL "helps the pool win the mining
//! competition": a verified pool keeps its global model clean of
//! adversarial updates, so within the same wall-clock budget it proposes a
//! better-generalizing model than an unverified pool suffering the same
//! adversary mix. This module makes that claim measurable: it runs several
//! [`MiningPool`]s against each other across consensus rounds, counting
//! wins and distributing rewards, with the block-difficulty control the
//! paper flags as future work ("the difficulty level (test set accuracy)
//! should be adjusted to accommodate a reasonable block production time").

use crate::judge::TaskJudge;
use crate::pool::{MiningPool, PoolConfig};
use rpol_chain::block::Block;
use rpol_chain::consensus::{ConsensusRound, Proposal};
use rpol_chain::task::TrainingTask;
use rpol_chain::Ledger;
use serde::{Deserialize, Serialize};

/// Adjusts the per-round epoch budget so block production stays near a
/// target cadence — the paper's future-work "difficulty level" control,
/// driven by the winning accuracy instead of wall-clock (deterministic).
///
/// If the winner overshoots the target accuracy, later rounds get fewer
/// epochs (blocks were "too easy"); undershooting buys more epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyController {
    /// Desired winning accuracy per round.
    pub target_accuracy: f32,
    /// Current epoch budget per round.
    pub epochs: usize,
    /// Bounds on the budget.
    pub min_epochs: usize,
    /// Upper bound on the budget.
    pub max_epochs: usize,
}

impl DifficultyController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_epochs ≤ epochs ≤ max_epochs` and the target
    /// is a probability.
    pub fn new(target_accuracy: f32, epochs: usize, min_epochs: usize, max_epochs: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_accuracy),
            "target accuracy must be in [0, 1]"
        );
        assert!(
            min_epochs > 0 && min_epochs <= epochs && epochs <= max_epochs,
            "invalid epoch bounds"
        );
        Self {
            target_accuracy,
            epochs,
            min_epochs,
            max_epochs,
        }
    }

    /// Updates the budget from the round's winning accuracy.
    pub fn observe(&mut self, winning_accuracy: f32) {
        if winning_accuracy > self.target_accuracy + 0.05 {
            self.epochs = (self.epochs - 1).max(self.min_epochs);
        } else if winning_accuracy < self.target_accuracy - 0.05 {
            self.epochs = (self.epochs + 1).min(self.max_epochs);
        }
    }
}

/// One competitor: a pool-configuration template plus its standing.
#[derive(Debug)]
struct Competitor {
    name: String,
    config: PoolConfig,
    behaviors: Vec<crate::adversary::WorkerBehavior>,
    wins: usize,
    rewards: f64,
}

/// The outcome of a full competition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompetitionReport {
    /// `(competitor name, rounds won, total rewards)` in registration order.
    pub standings: Vec<(String, usize, f64)>,
    /// Winning accuracy per round.
    pub winning_accuracies: Vec<f32>,
    /// Epoch budget per round (difficulty trace).
    pub epoch_budgets: Vec<usize>,
    /// Final chain height (== rounds with a valid winner).
    pub chain_height: u64,
}

impl CompetitionReport {
    /// Rounds won by `name` (0 when unknown).
    pub fn wins(&self, name: &str) -> usize {
        self.standings
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, w, _)| *w)
            .unwrap_or(0)
    }
}

/// Runs a mining competition between pools over `rounds` consensus rounds.
///
/// Every round each competitor trains a *fresh* pool (fresh model, same
/// worker mix) for the controller's epoch budget, proposes its model, and
/// consensus scores all proposals on the round's held-out test set; the
/// winner's block extends the ledger and earns `reward_per_round`,
/// distributed within the pool by verified contribution.
pub struct MiningCompetition {
    task_template: TrainingTask,
    judge_config: crate::tasks::TaskConfig,
    controller: DifficultyController,
    reward_per_round: f64,
    competitors: Vec<Competitor>,
}

impl MiningCompetition {
    /// Creates a competition for a task.
    pub fn new(
        task_template: TrainingTask,
        judge_config: crate::tasks::TaskConfig,
        controller: DifficultyController,
        reward_per_round: f64,
    ) -> Self {
        Self {
            task_template,
            judge_config,
            controller,
            reward_per_round,
            competitors: Vec::new(),
        }
    }

    /// Registers a competitor pool template.
    pub fn register(
        &mut self,
        name: &str,
        config: PoolConfig,
        behaviors: Vec<crate::adversary::WorkerBehavior>,
    ) {
        self.competitors.push(Competitor {
            name: name.to_string(),
            config,
            behaviors,
            wins: 0,
            rewards: 0.0,
        });
    }

    /// Runs `rounds` rounds and returns the standings.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two competitors are registered.
    pub fn run(mut self, rounds: usize) -> CompetitionReport {
        assert!(
            self.competitors.len() >= 2,
            "a competition needs at least two pools"
        );
        let mut ledger = Ledger::new();
        let mut winning_accuracies = Vec::with_capacity(rounds);
        let mut epoch_budgets = Vec::with_capacity(rounds);
        let judge = TaskJudge::new(self.judge_config);

        for round_ix in 0..rounds {
            let epochs = self.controller.epochs;
            epoch_budgets.push(epochs);
            let task = TrainingTask::new(
                1 + round_ix as u64,
                self.task_template.spec,
                self.task_template.train_samples,
                self.task_template.test_samples,
                0x0C0FFEE ^ round_ix as u64,
                epochs,
            );
            let mut consensus = ConsensusRound::open(
                &task,
                ledger.tip_hash(),
                ledger.height() + 1,
                self.competitors.len(),
            );

            // Every pool trains this round's task from scratch.
            let mut pool_handles = Vec::new();
            for (ci, competitor) in self.competitors.iter().enumerate() {
                let mut config = competitor.config;
                config.epochs = epochs;
                config.task.spec = task.spec;
                // Distinct seeds per (pool, round) for distinct addresses
                // and data draws.
                config.seed ^= ((round_ix as u64) << 32) | ((ci as u64) << 16);
                let mut pool = MiningPool::new(config, competitor.behaviors.clone());
                pool.run_parallel();
                let weights = pool.manager().global_weights().to_vec();
                consensus.submit(Proposal {
                    block: Block::new(
                        ledger.height() + 1,
                        ledger.tip_hash(),
                        task.id,
                        pool.manager().address,
                        &weights,
                        config.task.lipschitz_c,
                    ),
                    weights,
                });
                pool_handles.push(pool);
            }

            let outcome = consensus.close(&judge).expect("some proposal is valid");
            winning_accuracies.push(outcome.winner.test_accuracy);
            self.controller.observe(outcome.winner.test_accuracy);

            // Credit the winning pool.
            for (competitor, pool) in self.competitors.iter_mut().zip(&pool_handles) {
                if pool.manager().address == outcome.winner.proposer {
                    competitor.wins += 1;
                    competitor.rewards += self.reward_per_round;
                }
            }
            ledger.append(outcome.winner).expect("valid extension");
        }

        assert!(ledger.validate(), "competition produced an invalid chain");
        CompetitionReport {
            standings: self
                .competitors
                .iter()
                .map(|c| (c.name.clone(), c.wins, c.rewards))
                .collect(),
            winning_accuracies,
            epoch_budgets,
            chain_height: ledger.height(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::WorkerBehavior;
    use crate::pool::{PoolConfig, Scheme};
    use crate::tasks::TaskConfig;

    fn tiny_task() -> (TrainingTask, TaskConfig) {
        let cfg = TaskConfig::tiny();
        (TrainingTask::new(0, cfg.spec, 120, 40, 1, 2), cfg)
    }

    #[test]
    fn verified_pool_outcompetes_infiltrated_baseline() {
        let (task, cfg) = tiny_task();
        let controller = DifficultyController::new(0.8, 2, 1, 3);
        let mut competition = MiningCompetition::new(task, cfg, controller, 10.0);
        // Both pools have the same worker mix (half cheaters); only the
        // verification scheme differs.
        let behaviors = vec![
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::ReplayPrevious,
        ];
        let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
        config.steps_per_epoch = 6;
        competition.register("verified", config, behaviors.clone());
        let mut config = PoolConfig::tiny_demo(Scheme::Baseline);
        config.steps_per_epoch = 6;
        competition.register("unverified", config, behaviors);

        let report = competition.run(4);
        assert_eq!(report.chain_height, 4);
        assert_eq!(report.winning_accuracies.len(), 4);
        assert!(
            report.wins("verified") + report.wins("unverified") == 4,
            "every round has a winner"
        );
        assert!(
            report.wins("verified") >= report.wins("unverified"),
            "verification should win at least as often: {:?}",
            report.standings
        );
    }

    #[test]
    fn difficulty_controller_tracks_target() {
        let mut dc = DifficultyController::new(0.5, 3, 1, 6);
        dc.observe(0.9); // too easy → harder (fewer epochs)
        assert_eq!(dc.epochs, 2);
        dc.observe(0.2); // too hard → easier
        dc.observe(0.2);
        assert_eq!(dc.epochs, 4);
        // Clamped at bounds.
        for _ in 0..10 {
            dc.observe(0.0);
        }
        assert_eq!(dc.epochs, 6);
        for _ in 0..10 {
            dc.observe(1.0);
        }
        assert_eq!(dc.epochs, 1);
    }

    #[test]
    fn rewards_follow_wins() {
        let (task, cfg) = tiny_task();
        let controller = DifficultyController::new(0.8, 1, 1, 2);
        let mut competition = MiningCompetition::new(task, cfg, controller, 7.5);
        let honest = vec![WorkerBehavior::Honest; 2];
        let mut config = PoolConfig::tiny_demo(Scheme::RPoLv1);
        config.steps_per_epoch = 4;
        competition.register("a", config, honest.clone());
        competition.register("b", config, honest);
        let report = competition.run(2);
        for (name, wins, rewards) in &report.standings {
            assert!(
                (*rewards - *wins as f64 * 7.5).abs() < 1e-9,
                "{name}: {wins} wins but {rewards} rewards"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two pools")]
    fn lonely_competition_rejected() {
        let (task, cfg) = tiny_task();
        let competition =
            MiningCompetition::new(task, cfg, DifficultyController::new(0.5, 1, 1, 2), 1.0);
        competition.run(1);
    }
}
