//! A lossy, deterministic transport between the pool manager and its
//! workers.
//!
//! Every protocol message — epoch task, submission, proof request, proof
//! response — is encoded through [`crate::wire`], sealed in a checksummed
//! frame, and pushed through a simulated link that can **drop**, **corrupt**
//! or **truncate** it, delay it past the sender's timeout, or find the peer
//! crashed. The sender runs a bounded retry loop with exponential backoff;
//! what survives is either a checksum-verified payload or a
//! [`TransportError::Exhausted`] that the pool turns into an epoch
//! quarantine (see DESIGN.md §9).
//!
//! **Determinism contract.** Every fault draw comes from a PRNG seeded by
//! `(fault seed, epoch, worker, message kind, sequence number, attempt)` —
//! nothing else. Two runs with the same seed inject byte-identical faults,
//! and per-worker draws are independent of scheduling order, so the
//! parallel pool replays the serial pool exactly.

use crate::adversary::WorkerBehavior;
use crate::wire::{open_frame, seal_frame, FRAME_HEADER_BYTES};
use rpol_obs::{event, Recorder};
use rpol_sim::{NetworkModel, SimClock};
use rpol_tensor::rng::{Pcg32, SplitMix64};
use serde::{Deserialize, Serialize};

use bytes::Bytes;

/// Per-link fault probabilities and latency jitter, applied independently
/// to every transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability an attempt is silently dropped (sender sees a timeout).
    pub drop_prob: f64,
    /// Probability 1–4 delivered bytes are flipped.
    pub corrupt_prob: f64,
    /// Probability the delivery is cut short.
    pub truncate_prob: f64,
    /// Mean of the exponential latency jitter added to each attempt, in
    /// seconds (0 disables jitter).
    pub jitter_latency_s: f64,
}

impl FaultProfile {
    /// A perfect network: nothing is ever lost.
    pub fn ideal() -> Self {
        Self {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            jitter_latency_s: 0.0,
        }
    }

    /// The acceptance-criteria profile: 10% drop, 2% corruption, 1%
    /// truncation, 5 ms mean jitter. An epoch completes with retries.
    pub fn lossy() -> Self {
        Self {
            drop_prob: 0.10,
            corrupt_prob: 0.02,
            truncate_prob: 0.01,
            jitter_latency_s: 0.005,
        }
    }

    /// A hostile network: every fourth attempt vanishes outright.
    pub fn harsh() -> Self {
        Self {
            drop_prob: 0.25,
            corrupt_prob: 0.10,
            truncate_prob: 0.05,
            jitter_latency_s: 0.02,
        }
    }

    /// Validates that all probabilities lie in `[0, 1)` and the jitter is
    /// non-negative and finite. A probability of exactly 1 would make
    /// every exchange fail and is treated as a configuration error.
    pub fn validate(&self) -> Result<(), &'static str> {
        let probs = [self.drop_prob, self.corrupt_prob, self.truncate_prob];
        if probs
            .iter()
            .any(|p| !p.is_finite() || !(0.0..1.0).contains(p))
        {
            return Err("fault probabilities must lie in [0, 1)");
        }
        if !self.jitter_latency_s.is_finite() || self.jitter_latency_s < 0.0 {
            return Err("latency jitter must be non-negative and finite");
        }
        Ok(())
    }

    /// Probability a single attempt fails to deliver a verified payload
    /// (dropped, corrupted, or truncated; latency timeouts not included).
    pub fn attempt_failure_prob(&self) -> f64 {
        1.0 - (1.0 - self.drop_prob) * (1.0 - self.corrupt_prob) * (1.0 - self.truncate_prob)
    }

    /// Expected transmission attempts per delivered message under a retry
    /// budget of `max_attempts`: `E = (1 − q^r) / (1 − q)` for per-attempt
    /// failure probability `q`.
    pub fn expected_attempts(&self, max_attempts: u32) -> f64 {
        let q = self.attempt_failure_prob();
        if q == 0.0 {
            return 1.0;
        }
        (1.0 - q.powi(max_attempts as i32)) / (1.0 - q)
    }
}

/// Sender-side retry discipline: per-attempt timeout plus capped
/// exponential backoff with multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transmission attempts before the exchange is abandoned.
    pub max_attempts: u32,
    /// Seconds the sender waits for one attempt before declaring it lost.
    pub timeout_s: f64,
    /// Backoff before the first retry, in seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff, in seconds.
    pub backoff_cap_s: f64,
    /// Backoff jitter as a fraction of the nominal backoff (±half).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            timeout_s: 1.0,
            backoff_base_s: 0.05,
            backoff_factor: 2.0,
            backoff_cap_s: 2.0,
            jitter_frac: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_attempts == 0 {
            return Err("retry policy needs at least one attempt");
        }
        let times = [
            self.timeout_s,
            self.backoff_base_s,
            self.backoff_factor,
            self.backoff_cap_s,
            self.jitter_frac,
        ];
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err("retry timings must be non-negative and finite");
        }
        if self.timeout_s <= 0.0 {
            return Err("timeout must be positive");
        }
        Ok(())
    }

    /// Nominal backoff (pre-jitter) before retry number `retry` (1-based).
    ///
    /// Saturates at [`backoff_cap_s`](Self::backoff_cap_s) for any retry
    /// count: the exponential factor is accumulated multiplicatively and
    /// clamped the moment it crosses the cap, so even `retry = u32::MAX`
    /// (which would overflow an `i32` exponent and turn `powi` into
    /// `inf` — or `0.0 × inf = NaN` with a zero base) yields a finite,
    /// capped delay.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        // At most 63 doublings separate any positive base from any finite
        // cap; beyond that the product has saturated (or, for factors
        // below 1, converged toward zero).
        let exponent = retry.max(1).saturating_sub(1).min(63);
        let mut nominal = self.backoff_base_s;
        for _ in 0..exponent {
            nominal *= self.backoff_factor;
            if nominal >= self.backoff_cap_s {
                return self.backoff_cap_s;
            }
        }
        nominal.min(self.backoff_cap_s)
    }
}

/// Everything the pool needs to stand up a faulty transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-attempt fault probabilities.
    pub profile: FaultProfile,
    /// Sender-side retry discipline.
    pub policy: RetryPolicy,
    /// Bandwidth/latency model for transfer times.
    pub net: NetworkModel,
    /// Root seed for all fault draws.
    pub seed: u64,
}

impl FaultConfig {
    /// A lossy-profile config with default retries and the paper network.
    pub fn lossy(seed: u64) -> Self {
        Self {
            profile: FaultProfile::lossy(),
            policy: RetryPolicy::default(),
            net: NetworkModel::paper_default(),
            seed,
        }
    }

    /// An ideal-profile config (frames and retries active, no faults).
    pub fn ideal(seed: u64) -> Self {
        Self {
            profile: FaultProfile::ideal(),
            policy: RetryPolicy::default(),
            net: NetworkModel::paper_default(),
            seed,
        }
    }

    /// Validates profile and policy together.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.profile.validate()?;
        self.policy.validate()
    }
}

/// Which protocol message an exchange carries — part of the fault seed, so
/// faults on one leg never shift draws on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgKind {
    /// Manager → worker epoch assignment (nonce + global model).
    Task,
    /// Worker → manager epoch submission (weights + commitment).
    Submission,
    /// Manager → worker checkpoint-opening request.
    ProofRequest,
    /// Worker → manager checkpoint opening.
    ProofResponse,
}

impl MsgKind {
    /// Stable discriminant mixed into the fault seed.
    fn discriminant(self) -> u64 {
        match self {
            MsgKind::Task => 1,
            MsgKind::Submission => 2,
            MsgKind::ProofRequest => 3,
            MsgKind::ProofResponse => 4,
        }
    }

    /// Wire encoding of the discriminant, for control frames that name a
    /// message kind (the chaos proxy's `ChaosGone` side-channel).
    pub fn wire_code(self) -> u8 {
        self.discriminant() as u8
    }

    /// Inverse of [`MsgKind::wire_code`].
    pub fn from_wire_code(v: u8) -> Option<Self> {
        match v {
            1 => Some(MsgKind::Task),
            2 => Some(MsgKind::Submission),
            3 => Some(MsgKind::ProofRequest),
            4 => Some(MsgKind::ProofResponse),
            _ => None,
        }
    }

    /// Clock category for time spent on this kind of exchange.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Task => "net:task",
            MsgKind::Submission => "net:submission",
            MsgKind::ProofRequest => "net:proof_req",
            MsgKind::ProofResponse => "net:proof_resp",
        }
    }
}

/// Counters describing what the transport did and suffered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Logical exchanges requested (successful or not).
    pub exchanges: u64,
    /// Transmission attempts, including first sends.
    pub attempts: u64,
    /// Attempts beyond the first per exchange.
    pub retries: u64,
    /// Attempts lost outright on the link.
    pub drops: u64,
    /// Deliveries whose checksum caught flipped bytes.
    pub corruptions: u64,
    /// Deliveries cut short on the link.
    pub truncations: u64,
    /// Attempts abandoned at the sender's timeout (drops, dead peers,
    /// and latency overruns all surface here).
    pub timeouts: u64,
    /// Exchanges that exhausted the retry budget.
    pub failures: u64,
    /// Physical bytes pushed onto the wire, retransmissions included.
    pub wire_bytes: u64,
    /// Payload bytes the compressed wire encodings avoided sending,
    /// relative to raw framing of the same messages (RPoLv3 packed
    /// submissions and proof responses). Counted once per logical
    /// message at encode time, so it is independent of retry luck.
    pub bytes_saved: u64,
}

impl TransportStats {
    /// Mirrors the counters into an observability registry under
    /// `rpol.transport.*`. The struct's public fields remain the source of
    /// truth (and the protocol's API); the registry entries are views,
    /// published at the pool's deterministic epoch-merge points so the
    /// export always agrees with [`crate::manager::EpochReport`].
    pub fn publish(&self, rec: &Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("rpol.transport.exchanges", self.exchanges);
        rec.counter_add("rpol.transport.attempts", self.attempts);
        rec.counter_add("rpol.transport.retries", self.retries);
        rec.counter_add("rpol.transport.drops", self.drops);
        rec.counter_add("rpol.transport.corruptions", self.corruptions);
        rec.counter_add("rpol.transport.truncations", self.truncations);
        rec.counter_add("rpol.transport.timeouts", self.timeouts);
        rec.counter_add("rpol.transport.failures", self.failures);
        rec.counter_add("rpol.transport.wire_bytes", self.wire_bytes);
        rec.counter_add("rpol.wire.bytes_saved", self.bytes_saved);
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &TransportStats) {
        self.exchanges += other.exchanges;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.drops += other.drops;
        self.corruptions += other.corruptions;
        self.truncations += other.truncations;
        self.timeouts += other.timeouts;
        self.failures += other.failures;
        self.wire_bytes += other.wire_bytes;
        self.bytes_saved += other.bytes_saved;
    }
}

/// Why an exchange failed permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// Every attempt in the retry budget was lost, corrupted, truncated,
    /// timed out, or met a dead peer.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Exhausted { attempts } => {
                write!(f, "exchange failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// The receiving end of a link as the transport sees it for one exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Whether the peer is up at all; a dead peer times out every attempt.
    pub alive: bool,
    /// Latency multiplier (stragglers run ≥ 1; healthy links run 1).
    pub slowdown: f64,
}

impl LinkState {
    /// A healthy link.
    pub fn healthy() -> Self {
        Self {
            alive: true,
            slowdown: 1.0,
        }
    }
}

/// Computes a worker's link state for one leg of the protocol.
///
/// A [`WorkerBehavior::CrashAt`] worker dies *during* its crash epoch: it
/// still receives that epoch's task (the assignment lands before training
/// starts) but never answers again — submissions and proof exchanges from
/// the crash epoch onward meet a dead peer. A
/// [`WorkerBehavior::Straggler`] stays alive with every exchange slowed by
/// its multiplier. All other behaviours get a healthy link.
pub fn link_state(behavior: &WorkerBehavior, epoch: u64, kind: MsgKind) -> LinkState {
    match *behavior {
        WorkerBehavior::CrashAt { epoch: crash, .. } => {
            let alive = match kind {
                MsgKind::Task => epoch <= crash,
                _ => epoch < crash,
            };
            LinkState {
                alive,
                slowdown: 1.0,
            }
        }
        WorkerBehavior::Straggler { slowdown } => LinkState {
            alive: true,
            slowdown: f64::from(slowdown).max(1.0),
        },
        _ => LinkState::healthy(),
    }
}

/// Builds the byte image a chaos proxy puts on a *stream* for a faulty
/// attempt. The simulated link mutates frames anywhere (including the
/// header), which a datagram can absorb but a TCP stream cannot: a flipped
/// length field would desynchronize every later frame. The ghost therefore
/// keeps the framing self-consistent while guaranteeing rejection:
///
/// - corruption flips are remapped into the payload region (`pos %
///   payload_len`), leaving magic and length intact;
/// - truncation keeps the header and cuts the payload to what survives of
///   the simulated `keep` bytes, rewriting the length field to match;
/// - one digest byte is always poisoned, so the receiver reports
///   [`DecodeError::ChecksumMismatch`](crate::wire::DecodeError) and
///   resynchronizes on the very next byte — even in the astronomically
///   rare case where remapped flips cancel each other out.
fn stream_safe_ghost(framed: &Bytes, flips: &[(usize, u8)], trunc_keep: Option<usize>) -> Bytes {
    let mut ghost = framed.to_vec();
    let payload_len = framed.len() - FRAME_HEADER_BYTES;
    for &(pos, mask) in flips {
        ghost[FRAME_HEADER_BYTES + pos % payload_len.max(1)] ^= mask;
    }
    // Digest bytes sit at header offsets 8..16; poisoning one makes the
    // checksum failure unconditional.
    ghost[8] ^= 0xA5;
    if let Some(keep) = trunc_keep {
        let kept_payload = keep.saturating_sub(FRAME_HEADER_BYTES);
        ghost.truncate(FRAME_HEADER_BYTES + kept_payload);
        ghost[4..8].copy_from_slice(&(kept_payload as u32).to_le_bytes());
    }
    Bytes::from(ghost)
}

/// The fault-injecting channel. Stateless apart from its configuration:
/// all randomness is derived per-exchange, so a `Transport` can be shared
/// freely across threads.
#[derive(Debug, Clone, Copy)]
pub struct Transport {
    profile: FaultProfile,
    policy: RetryPolicy,
    net: NetworkModel,
    seed: u64,
}

impl Transport {
    /// Builds a transport from a validated config.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`FaultConfig::validate`] — pool
    /// construction is expected to have validated it already.
    pub fn new(config: &FaultConfig) -> Self {
        config.validate().expect("invalid fault config");
        Self {
            profile: config.profile,
            policy: config.policy,
            net: config.net,
            seed: config.seed,
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Deterministic per-attempt fault RNG: chained SplitMix64 over the
    /// exchange coordinates. Changing any coordinate decorrelates every
    /// draw; holding all fixed reproduces them bit-for-bit.
    fn attempt_rng(
        &self,
        epoch: u64,
        worker: usize,
        kind: MsgKind,
        seq: u64,
        attempt: u32,
    ) -> Pcg32 {
        let mut h = self.seed;
        for v in [
            epoch,
            worker as u64,
            kind.discriminant(),
            seq,
            u64::from(attempt),
        ] {
            h = SplitMix64::new(h ^ v).next_u64();
        }
        Pcg32::seed_from(h)
    }

    /// Pushes one sealed payload across the link, retrying on loss.
    ///
    /// On success returns the checksum-verified payload exactly as sealed;
    /// the caller decodes it with the matching `wire` decoder. Elapsed
    /// simulated time lands in `clock` under the kind's label; event
    /// counters land in `stats`. Individual faults and the exchange outcome
    /// are traced on `rec` (pass [`rpol_obs::noop`] when not observing).
    ///
    /// # Errors
    ///
    /// [`TransportError::Exhausted`] when the retry budget runs out.
    #[allow(clippy::too_many_arguments)]
    pub fn exchange(
        &self,
        epoch: u64,
        worker: usize,
        kind: MsgKind,
        seq: u64,
        payload: &Bytes,
        link: LinkState,
        stats: &mut TransportStats,
        clock: &mut SimClock,
        rec: &Recorder,
    ) -> Result<Bytes, TransportError> {
        self.exchange_tapped(
            epoch, worker, kind, seq, payload, link, stats, clock, rec, None,
        )
    }

    /// Chaos-proxy mode: replays the exact fault draws of [`exchange`] but
    /// additionally emits the frames a *real* byte stream should carry for
    /// each attempt — mutilated "ghost" frames for corrupted/truncated
    /// attempts (stream-safe: header length stays consistent and the
    /// digest field is poisoned, so the receiver's [`FrameAssembler`]
    /// discards them without desyncing), nothing for dropped/timed-out
    /// attempts, and the pristine frame for the delivering attempt.
    ///
    /// Stats, clock charges, events, and the delivered/exhausted outcome
    /// are bit-identical to the simulated link for the same coordinates —
    /// that is the parity contract `tests/net_parity.rs` enforces.
    ///
    /// [`FrameAssembler`]: crate::wire::FrameAssembler
    #[allow(clippy::too_many_arguments)]
    pub fn chaos_frames(
        &self,
        epoch: u64,
        worker: usize,
        kind: MsgKind,
        seq: u64,
        payload: &Bytes,
        link: LinkState,
        stats: &mut TransportStats,
        clock: &mut SimClock,
        rec: &Recorder,
    ) -> (Vec<Bytes>, Result<(), TransportError>) {
        let mut writes = Vec::new();
        let outcome = self
            .exchange_tapped(
                epoch,
                worker,
                kind,
                seq,
                payload,
                link,
                stats,
                clock,
                rec,
                Some(&mut writes),
            )
            .map(|_| ());
        (writes, outcome)
    }

    /// Recomputes an exchange's outcome, stats, and clock charges from the
    /// payload *length* alone. Every fault draw depends only on the
    /// exchange coordinates and the framed length — never on payload
    /// content — so the receiving side of a chaos-proxied socket can
    /// account an exchange it did not send and agree bit-for-bit with the
    /// sender (and with the simulated link).
    #[allow(clippy::too_many_arguments)]
    pub fn chaos_outcome(
        &self,
        epoch: u64,
        worker: usize,
        kind: MsgKind,
        seq: u64,
        payload_len: usize,
        link: LinkState,
        stats: &mut TransportStats,
        clock: &mut SimClock,
        rec: &Recorder,
    ) -> Result<(), TransportError> {
        let dummy = Bytes::from(vec![0u8; payload_len]);
        self.exchange_tapped(
            epoch, worker, kind, seq, &dummy, link, stats, clock, rec, None,
        )
        .map(|_| ())
    }

    #[allow(clippy::too_many_arguments)]
    fn exchange_tapped(
        &self,
        epoch: u64,
        worker: usize,
        kind: MsgKind,
        seq: u64,
        payload: &Bytes,
        link: LinkState,
        stats: &mut TransportStats,
        clock: &mut SimClock,
        rec: &Recorder,
        mut taps: Option<&mut Vec<Bytes>>,
    ) -> Result<Bytes, TransportError> {
        let framed = seal_frame(payload);
        stats.exchanges += 1;
        let done = |attempts: u32, ok: bool, rec: &Recorder| {
            rec.observe("rpol.transport.attempts_per_exchange", u64::from(attempts));
            event!(
                rec,
                "rpol.transport.exchange",
                epoch,
                worker,
                kind = kind.label(),
                seq,
                attempts,
                ok,
            );
        };
        for attempt in 0..self.policy.max_attempts {
            let mut rng = self.attempt_rng(epoch, worker, kind, seq, attempt);
            stats.attempts += 1;
            if attempt > 0 {
                stats.retries += 1;
                clock.tick("retry");
                let jitter = 1.0 + self.policy.jitter_frac * (rng.next_f64() - 0.5);
                clock.add(kind.label(), self.policy.backoff_s(attempt) * jitter);
            }

            // The frame leaves the sender no matter what happens to it.
            stats.wire_bytes += framed.len() as u64;

            // A dead peer never acknowledges: the sender waits out its
            // full timeout each attempt.
            if !link.alive {
                stats.timeouts += 1;
                clock.add(kind.label(), self.policy.timeout_s);
                event!(
                    rec,
                    "rpol.transport.dead_peer",
                    epoch,
                    worker,
                    kind = kind.label(),
                    attempt
                );
                continue;
            }

            // Transfer time plus exponential jitter, scaled by the peer's
            // slowdown. Arriving after the timeout is as good as lost.
            let base = self.net.p2p_seconds(framed.len() as u64) * link.slowdown;
            let jitter = if self.profile.jitter_latency_s > 0.0 {
                -self.profile.jitter_latency_s * (1.0 - rng.next_f64()).ln()
            } else {
                0.0
            };
            let latency = base + jitter;
            if latency > self.policy.timeout_s {
                stats.timeouts += 1;
                clock.tick("latency_timeout");
                clock.add(kind.label(), self.policy.timeout_s);
                event!(
                    rec,
                    "rpol.transport.latency_timeout",
                    epoch,
                    worker,
                    kind = kind.label(),
                    attempt
                );
                continue;
            }

            if rng.next_f64() < self.profile.drop_prob {
                stats.drops += 1;
                stats.timeouts += 1;
                clock.tick("drop");
                clock.add(kind.label(), self.policy.timeout_s);
                event!(
                    rec,
                    "rpol.transport.drop",
                    epoch,
                    worker,
                    kind = kind.label(),
                    attempt
                );
                continue;
            }

            clock.add(kind.label(), latency);
            let mut delivered = framed.to_vec();
            let mut mutated = false;
            let mut flips: Vec<(usize, u8)> = Vec::new();
            let mut trunc_keep: Option<usize> = None;
            if rng.next_f64() < self.profile.corrupt_prob {
                stats.corruptions += 1;
                clock.tick("corruption");
                event!(
                    rec,
                    "rpol.transport.corruption",
                    epoch,
                    worker,
                    kind = kind.label(),
                    attempt
                );
                mutated = true;
                let n_flips = 1 + rng.next_below(4) as usize;
                for _ in 0..n_flips {
                    let pos = rng.next_below(delivered.len() as u32) as usize;
                    let mask = (rng.next_u32() % 255 + 1) as u8; // never 0: always a real flip
                    delivered[pos] ^= mask;
                    flips.push((pos, mask));
                }
            }
            if rng.next_f64() < self.profile.truncate_prob {
                stats.truncations += 1;
                clock.tick("truncation");
                event!(
                    rec,
                    "rpol.transport.truncation",
                    epoch,
                    worker,
                    kind = kind.label(),
                    attempt
                );
                mutated = true;
                let keep = rng.next_below(delivered.len() as u32) as usize;
                delivered.truncate(keep);
                trunc_keep = Some(keep);
            }

            match open_frame(Bytes::from(delivered)) {
                Ok(verified) => {
                    if let Some(taps) = taps.as_deref_mut() {
                        taps.push(framed.clone());
                    }
                    done(attempt + 1, true, rec);
                    return Ok(verified);
                }
                Err(_) => {
                    if let Some(taps) = taps.as_deref_mut() {
                        taps.push(stream_safe_ghost(&framed, &flips, trunc_keep));
                    }
                    // The checksum caught the mutation — indistinguishable
                    // from a drop to the protocol, so retry. An unmutated
                    // frame always reopens (we sealed it ourselves).
                    debug_assert!(mutated, "pristine frame failed to open");
                    continue;
                }
            }
        }
        stats.failures += 1;
        clock.tick("exchange_failure");
        done(self.policy.max_attempts, false, rec);
        Err(TransportError::Exhausted {
            attempts: self.policy.max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_proof_request;

    fn payload() -> Bytes {
        encode_proof_request(&[1, 2, 3, 4])
    }

    fn run_exchange(
        profile: FaultProfile,
        policy: RetryPolicy,
        link: LinkState,
        seed: u64,
    ) -> (Result<Bytes, TransportError>, TransportStats, SimClock) {
        let transport = Transport::new(&FaultConfig {
            profile,
            policy,
            net: NetworkModel::paper_default(),
            seed,
        });
        let mut stats = TransportStats::default();
        let mut clock = SimClock::new();
        let got = transport.exchange(
            0,
            0,
            MsgKind::ProofRequest,
            7,
            &payload(),
            link,
            &mut stats,
            &mut clock,
            rpol_obs::noop(),
        );
        (got, stats, clock)
    }

    #[test]
    fn ideal_link_delivers_first_try() {
        let (got, stats, clock) = run_exchange(
            FaultProfile::ideal(),
            RetryPolicy::default(),
            LinkState::healthy(),
            1,
        );
        assert_eq!(got.expect("delivered"), payload());
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failures, 0);
        assert!(clock.get(MsgKind::ProofRequest.label()) > 0.0);
    }

    #[test]
    fn dead_peer_exhausts_and_fails() {
        let policy = RetryPolicy::default();
        let (got, stats, clock) = run_exchange(
            FaultProfile::ideal(),
            policy,
            LinkState {
                alive: false,
                slowdown: 1.0,
            },
            1,
        );
        assert_eq!(
            got,
            Err(TransportError::Exhausted {
                attempts: policy.max_attempts
            })
        );
        assert_eq!(stats.timeouts, u64::from(policy.max_attempts));
        assert_eq!(stats.failures, 1);
        // Every attempt waits out the full timeout, plus backoffs.
        assert!(clock.total() >= policy.timeout_s * f64::from(policy.max_attempts));
    }

    #[test]
    fn extreme_straggler_times_out() {
        let (got, stats, _) = run_exchange(
            FaultProfile::ideal(),
            RetryPolicy::default(),
            LinkState {
                alive: true,
                slowdown: 1e6,
            },
            1,
        );
        assert!(got.is_err());
        assert!(stats.timeouts > 0);
    }

    #[test]
    fn mild_straggler_still_delivers() {
        let (got, _, clock) = run_exchange(
            FaultProfile::ideal(),
            RetryPolicy::default(),
            LinkState {
                alive: true,
                slowdown: 4.0,
            },
            1,
        );
        assert!(got.is_ok());
        // Slower than the healthy link would have been.
        let healthy = run_exchange(
            FaultProfile::ideal(),
            RetryPolicy::default(),
            LinkState::healthy(),
            1,
        )
        .2;
        assert!(clock.total() > healthy.total());
    }

    #[test]
    fn lossy_link_retries_but_delivers() {
        // Across many seeds, a lossy link must deliver via retries and
        // must record the occasional drop/corruption it survived.
        let mut total = TransportStats::default();
        for seed in 0..64 {
            let (got, stats, _) = run_exchange(
                FaultProfile::lossy(),
                RetryPolicy::default(),
                LinkState::healthy(),
                seed,
            );
            assert!(got.is_ok(), "seed {seed} failed: {got:?}");
            total.merge(&stats);
        }
        assert!(total.retries > 0, "no retries across 64 lossy exchanges");
        assert!(total.drops + total.corruptions + total.truncations > 0);
        assert_eq!(total.failures, 0);
    }

    #[test]
    fn fault_draws_are_reproducible() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let a = run_exchange(
                FaultProfile::harsh(),
                RetryPolicy::default(),
                LinkState::healthy(),
                seed,
            );
            let b = run_exchange(
                FaultProfile::harsh(),
                RetryPolicy::default(),
                LinkState::healthy(),
                seed,
            );
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2, "clocks diverged for seed {seed}");
        }
    }

    #[test]
    fn corruption_never_reaches_the_caller() {
        // 100% corruption: every delivery has flipped bytes, so the
        // checksum must reject every attempt — never hand bad bytes back.
        let profile = FaultProfile {
            corrupt_prob: 0.999_999,
            ..FaultProfile::ideal()
        };
        let (got, stats, _) =
            run_exchange(profile, RetryPolicy::default(), LinkState::healthy(), 3);
        assert!(got.is_err());
        assert_eq!(
            stats.corruptions,
            u64::from(RetryPolicy::default().max_attempts)
        );
    }

    #[test]
    fn expected_attempts_formula() {
        assert_eq!(FaultProfile::ideal().expected_attempts(6), 1.0);
        let lossy = FaultProfile::lossy();
        let e = lossy.expected_attempts(6);
        let q = lossy.attempt_failure_prob();
        assert!(e > 1.0 && e < 1.0 / (1.0 - q) + 1e-9, "E = {e}");
    }

    #[test]
    fn profile_and_policy_validation() {
        assert!(FaultProfile::lossy().validate().is_ok());
        assert!(FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::ideal()
        }
        .validate()
        .is_err());
        assert!(FaultProfile {
            jitter_latency_s: f64::NAN,
            ..FaultProfile::ideal()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            timeout_s: 0.0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn exchange_traces_outcome_and_stats_publish_matches() {
        let rec = rpol_obs::Recorder::logical();
        let transport = Transport::new(&FaultConfig::lossy(5));
        let mut stats = TransportStats::default();
        let mut clock = SimClock::new();
        let got = transport.exchange(
            0,
            1,
            MsgKind::Task,
            0,
            &payload(),
            LinkState::healthy(),
            &mut stats,
            &mut clock,
            &rec,
        );
        assert!(got.is_ok());
        let events = rec.events();
        let exchanges: Vec<_> = events
            .iter()
            .filter(|e| e.name == "rpol.transport.exchange")
            .collect();
        assert_eq!(exchanges.len(), 1, "one completion event per exchange");
        stats.publish(&rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("rpol.transport.exchanges"), stats.exchanges);
        assert_eq!(snap.counter("rpol.transport.attempts"), stats.attempts);
        assert_eq!(snap.counter("rpol.transport.wire_bytes"), stats.wire_bytes);
        assert_eq!(
            snap.histograms["rpol.transport.attempts_per_exchange"].count,
            stats.exchanges
        );
    }

    #[test]
    fn crash_link_semantics() {
        let crash = WorkerBehavior::CrashAt {
            epoch: 2,
            after_steps: 3,
        };
        // Before the crash epoch: fully alive.
        assert!(link_state(&crash, 1, MsgKind::Submission).alive);
        // Crash epoch: receives the task, answers nothing.
        assert!(link_state(&crash, 2, MsgKind::Task).alive);
        assert!(!link_state(&crash, 2, MsgKind::Submission).alive);
        assert!(!link_state(&crash, 2, MsgKind::ProofResponse).alive);
        // After: gone entirely.
        assert!(!link_state(&crash, 3, MsgKind::Task).alive);

        let slow = WorkerBehavior::Straggler { slowdown: 8.0 };
        let link = link_state(&slow, 0, MsgKind::Task);
        assert!(link.alive);
        assert_eq!(link.slowdown, 8.0);

        assert_eq!(
            link_state(&WorkerBehavior::Honest, 5, MsgKind::Task),
            LinkState::healthy()
        );
    }

    #[test]
    fn backoff_saturates_at_cap_for_huge_retry_counts() {
        let policy = RetryPolicy::default();
        // Normal ramp is untouched: 0.05 · 2^(r−1), capped at 2.0.
        assert_eq!(policy.backoff_s(1), 0.05);
        assert_eq!(policy.backoff_s(2), 0.10);
        assert_eq!(policy.backoff_s(5), 0.80);
        assert_eq!(policy.backoff_s(7), 2.0);
        // retry = 63 used to compute 2^62 before the cap; it must land
        // exactly on the cap, finite.
        assert_eq!(policy.backoff_s(63), policy.backoff_cap_s);
        assert_eq!(policy.backoff_s(u32::MAX), policy.backoff_cap_s);
        // A zero base with a huge exponent was the 0·inf = NaN trap.
        let zero_base = RetryPolicy {
            backoff_base_s: 0.0,
            ..RetryPolicy::default()
        };
        for retry in [1, 63, 64, 1_000_000] {
            let b = zero_base.backoff_s(retry);
            assert!(b.is_finite() && b == 0.0, "retry {retry} gave {b}");
        }
        // Explosive factors saturate instead of overflowing to inf.
        let explosive = RetryPolicy {
            backoff_factor: 1e300,
            ..RetryPolicy::default()
        };
        assert_eq!(explosive.backoff_s(63), explosive.backoff_cap_s);
    }

    /// The chaos proxy must replay `exchange`'s draws exactly: identical
    /// stats and clock, ghost frames that fail `open_frame` without
    /// breaking stream framing, and a final pristine frame iff delivered.
    #[test]
    fn chaos_frames_mirror_exchange_bit_for_bit() {
        let profile = FaultProfile {
            drop_prob: 0.3,
            corrupt_prob: 0.3,
            truncate_prob: 0.2,
            jitter_latency_s: 0.0,
        };
        let config = FaultConfig {
            profile,
            policy: RetryPolicy::default(),
            net: NetworkModel::paper_default(),
            seed: 77,
        };
        let transport = Transport::new(&config);
        let rec = rpol_obs::noop();
        for seq in 0..64u64 {
            let mut sim_stats = TransportStats::default();
            let mut sim_clock = SimClock::new();
            let sim = transport.exchange(
                3,
                seq as usize % 7,
                MsgKind::ProofResponse,
                seq,
                &payload(),
                LinkState::healthy(),
                &mut sim_stats,
                &mut sim_clock,
                rec,
            );
            let mut net_stats = TransportStats::default();
            let mut net_clock = SimClock::new();
            let (writes, outcome) = transport.chaos_frames(
                3,
                seq as usize % 7,
                MsgKind::ProofResponse,
                seq,
                &payload(),
                LinkState::healthy(),
                &mut net_stats,
                &mut net_clock,
                rec,
            );
            assert_eq!(sim.is_ok(), outcome.is_ok(), "seq {seq}");
            assert_eq!(sim_stats, net_stats, "seq {seq}");
            assert_eq!(sim_clock, net_clock, "seq {seq}");
            // Every write but a final pristine one is a rejected ghost
            // whose header still describes its own length exactly.
            for (i, frame) in writes.iter().enumerate() {
                let last = i + 1 == writes.len();
                let opened = open_frame(frame.clone());
                if last && sim.is_ok() {
                    assert_eq!(opened.expect("pristine"), payload(), "seq {seq}");
                } else {
                    assert!(opened.is_err(), "ghost {i} of seq {seq} opened");
                    let framed_len =
                        u32::from_le_bytes(frame[4..8].try_into().expect("len field")) as usize;
                    assert_eq!(frame.len(), FRAME_HEADER_BYTES + framed_len, "seq {seq}");
                }
            }
            // Mutated attempts emit ghosts; drops/timeouts emit nothing —
            // so writes never exceed attempts.
            assert!(writes.len() as u64 <= net_stats.attempts);
        }
    }

    /// `chaos_outcome` agrees with the sender knowing only the length.
    #[test]
    fn chaos_outcome_agrees_from_length_alone() {
        let transport = Transport::new(&FaultConfig {
            profile: FaultProfile::harsh(),
            policy: RetryPolicy::default(),
            net: NetworkModel::paper_default(),
            seed: 1234,
        });
        let rec = rpol_obs::noop();
        for seq in 0..32u64 {
            let mut a_stats = TransportStats::default();
            let mut a_clock = SimClock::new();
            let sent = transport.exchange(
                1,
                2,
                MsgKind::Submission,
                seq,
                &payload(),
                LinkState::healthy(),
                &mut a_stats,
                &mut a_clock,
                rec,
            );
            let mut b_stats = TransportStats::default();
            let mut b_clock = SimClock::new();
            let got = transport.chaos_outcome(
                1,
                2,
                MsgKind::Submission,
                seq,
                payload().len(),
                LinkState::healthy(),
                &mut b_stats,
                &mut b_clock,
                rec,
            );
            assert_eq!(sent.is_ok(), got.is_ok(), "seq {seq}");
            assert_eq!(a_stats, b_stats, "seq {seq}");
            assert_eq!(a_clock, b_clock, "seq {seq}");
        }
    }
}
