//! Decentralized verification — the paper's second future-work item:
//! "decentralized verification will be implemented to enable multiple
//! workers to securely accelerate the verification in parallel."
//!
//! Instead of the manager replaying every sampled checkpoint itself, it
//! delegates each sample to a committee of other pool workers. Each
//! committee member replays the segment on its own hardware and votes
//! accept/reject; the manager tallies a majority. Safeguards:
//!
//! * a worker never sits on a committee judging **its own** submission;
//! * committees are drawn by the manager's RNG *after* commitments are in
//!   (same commit-then-sample discipline as §V-B);
//! * ties or too-small committees fall back to manager-side replay,
//!   so a colluding minority can never acquit a cheater outright —
//!   dishonest votes only cost the pool a fallback replay;
//! * each member votes with its own replay noise, so the committee also
//!   exercises the robustness bound β across heterogeneous hardware.

use crate::commitment::EpochCommitment;
use crate::tasks::TaskConfig;
use crate::trainer::Segment;
use crate::verify::{ProofProvider, VerificationOutcome, Verifier, WorkerVerdict};
use crate::worker::PoolWorker;
use rpol_lsh::LshFamily;
use rpol_sim::gpu::NoiseInjector;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// How a committee member voted on one sampled checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vote {
    /// The voting worker's id.
    pub voter: usize,
    /// The voter's verification outcome for the sample.
    pub outcome: VerificationOutcome,
}

/// The tally for one sampled checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommitteeDecision {
    /// The sampled segment index.
    pub sample: usize,
    /// Individual votes.
    pub votes: Vec<Vote>,
    /// Majority outcome; `None` when the committee tied and the manager
    /// must replay the sample itself.
    pub majority_accept: Option<bool>,
}

/// Verification-committee configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitteeConfig {
    /// Committee size per sample (odd values avoid ties).
    pub size: usize,
}

impl Default for CommitteeConfig {
    fn default() -> Self {
        Self { size: 3 }
    }
}

/// Runs decentralized verification of one worker's epoch submission.
///
/// `subject` is the worker under verification; `committee_pool` the other
/// workers (the subject is filtered out defensively). Returns the
/// per-sample decisions plus a [`WorkerVerdict`]-compatible summary where
/// ties are resolved by a manager-side replay using `manager_noise`.
///
/// # Panics
///
/// Panics if the committee pool (excluding the subject) is empty.
#[allow(clippy::too_many_arguments)]
pub fn committee_verify(
    config: &TaskConfig,
    subject: &PoolWorker,
    committee_pool: &[&PoolWorker],
    commitment: &EpochCommitment,
    segments: &[Segment],
    samples: &[usize],
    nonce: u64,
    beta: f32,
    family: Option<&LshFamily>,
    committee: CommitteeConfig,
    rng: &mut Pcg32,
    manager_noise: NoiseInjector,
) -> (Vec<CommitteeDecision>, WorkerVerdict) {
    let eligible: Vec<&&PoolWorker> = committee_pool
        .iter()
        .filter(|w| w.id != subject.id)
        .collect();
    assert!(
        !eligible.is_empty(),
        "decentralized verification needs at least one other worker"
    );

    let mut decisions = Vec::with_capacity(samples.len());
    let mut outcomes = Vec::with_capacity(samples.len());
    let mut proof_bytes = 0u64;
    let mut replayed_steps = 0u64;
    let opening = subject
        .open_checkpoint(0)
        .expect("in-process worker openings are infallible");
    let mut scratch = config.build_model_like(&opening);

    for &sample in samples {
        // Draw the committee for this sample (with replacement across
        // samples, without replacement within one).
        let mut order: Vec<usize> = (0..eligible.len()).collect();
        rng.shuffle(&mut order);
        let members = &order[..committee.size.min(eligible.len())];

        let mut votes = Vec::with_capacity(members.len());
        for &m in members {
            let voter = eligible[m];
            let mut verifier = Verifier::new(
                config,
                subject.shard(),
                nonce,
                beta,
                family,
                NoiseInjector::new(voter.gpu, rng.next_u64()),
            );
            let verdict =
                verifier.verify_samples(&mut scratch, commitment, segments, &[sample], subject);
            proof_bytes += verdict.proof_bytes;
            replayed_steps += verdict.replayed_steps;
            votes.push(Vote {
                voter: voter.id,
                outcome: verdict.outcomes[0].1,
            });
        }
        let accepts = votes.iter().filter(|v| v.outcome.is_accepted()).count();
        let rejects = votes.len() - accepts;
        let majority_accept = match accepts.cmp(&rejects) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        };

        // Tie → manager replays the sample itself.
        let final_outcome = match majority_accept {
            Some(true) => VerificationOutcome::Accepted {
                double_checked: false,
            },
            Some(false) => votes
                .iter()
                .find(|v| !v.outcome.is_accepted())
                .map(|v| v.outcome)
                .expect("a rejecting vote exists"),
            None => {
                let mut verifier = Verifier::new(
                    config,
                    subject.shard(),
                    nonce,
                    beta,
                    family,
                    manager_noise.clone(),
                );
                let verdict =
                    verifier.verify_samples(&mut scratch, commitment, segments, &[sample], subject);
                proof_bytes += verdict.proof_bytes;
                replayed_steps += verdict.replayed_steps;
                verdict.outcomes[0].1
            }
        };
        outcomes.push((sample, final_outcome));
        decisions.push(CommitteeDecision {
            sample,
            votes,
            majority_accept,
        });
    }

    (
        decisions,
        WorkerVerdict {
            outcomes,
            proof_bytes,
            replayed_steps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::WorkerBehavior;
    use crate::trainer::epoch_segments;
    use crate::worker::CommitMode;
    use rpol_crypto::Address;
    use rpol_nn::data::SyntheticImages;
    use rpol_sim::gpu::GpuModel;

    fn build_workers(behaviors: &[WorkerBehavior]) -> (TaskConfig, Vec<PoolWorker>, Vec<f32>) {
        let cfg = TaskConfig::tiny();
        let manager = Address::from_seed(5);
        let data =
            SyntheticImages::generate(&cfg.spec, 32 * behaviors.len(), &mut Pcg32::seed_from(9));
        let shards = data.shard(behaviors.len());
        let workers: Vec<PoolWorker> = behaviors
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (&b, shard))| {
                PoolWorker::new(i, &cfg, &manager, shard, GpuModel::ALL[i % 4], b)
            })
            .collect();
        let global = cfg.build_encoded_model(&manager).flatten_params();
        (cfg, workers, global)
    }

    fn run_committee(
        behaviors: &[WorkerBehavior],
        subject_id: usize,
    ) -> (Vec<CommitteeDecision>, WorkerVerdict) {
        let (cfg, mut workers, global) = build_workers(behaviors);
        let steps = 6;
        let nonce = 0x33;
        let submission =
            workers[subject_id].run_epoch(&cfg, &global, nonce, steps, 0, CommitMode::V1);
        let segments = epoch_segments(steps, cfg.checkpoint_interval);
        let subject = &workers[subject_id];
        let committee_pool: Vec<&PoolWorker> = workers.iter().collect();
        let mut rng = Pcg32::seed_from(0x17);
        committee_verify(
            &cfg,
            subject,
            &committee_pool,
            submission.commitment.as_ref().expect("committed"),
            &segments,
            &[0, 1, 2],
            nonce,
            0.5,
            None,
            CommitteeConfig::default(),
            &mut rng,
            NoiseInjector::new(GpuModel::G3090, 0x99),
        )
    }

    #[test]
    fn committee_accepts_honest_subject() {
        let behaviors = [WorkerBehavior::Honest; 4];
        let (decisions, verdict) = run_committee(&behaviors, 0);
        assert!(verdict.all_accepted(), "{decisions:?}");
        for d in &decisions {
            assert_eq!(d.majority_accept, Some(true));
            assert!(
                d.votes.iter().all(|v| v.voter != 0),
                "subject voted on itself"
            );
        }
    }

    #[test]
    fn committee_rejects_replaying_subject() {
        let behaviors = [
            WorkerBehavior::ReplayPrevious,
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
            WorkerBehavior::Honest,
        ];
        let (decisions, verdict) = run_committee(&behaviors, 0);
        assert!(!verdict.all_accepted());
        assert!(decisions.iter().any(|d| d.majority_accept == Some(false)));
    }

    #[test]
    fn committee_spreads_replay_load() {
        let behaviors = [WorkerBehavior::Honest; 5];
        let (decisions, verdict) = run_committee(&behaviors, 2);
        // 3 samples × 3 committee members replayed in parallel.
        assert_eq!(decisions.len(), 3);
        assert!(decisions.iter().all(|d| d.votes.len() == 3));
        // Replayed steps are the committee's, not the manager's: 9 segment
        // replays of 2 steps each (tiny task interval = 2).
        assert_eq!(verdict.replayed_steps, 18);
    }

    #[test]
    #[should_panic(expected = "at least one other worker")]
    fn lone_worker_cannot_self_verify() {
        let behaviors = [WorkerBehavior::Honest];
        run_committee(&behaviors, 0);
    }
}
