//! The worker side of the socket service (DESIGN.md §14): a
//! [`WorkerClient`] owns one [`PoolWorker`], connects to the manager's
//! [`PoolServer`](crate::server::PoolServer), and serves the epoch
//! protocol — train on delivered tasks, upload submissions, answer
//! sampled-proof openings — over a blocking stream with read timeouts.
//!
//! # Robustness
//!
//! * **Reconnects** — a dropped or refused connection is retried with
//!   the shared [`RetryPolicy`]'s capped exponential backoff (scaled to
//!   real time by [`ClientTuning::backoff_scale`]).
//! * **Heartbeats** — an idle link sends [`NetControl::Ping`] so the
//!   server's slowloris sweep never mistakes a healthy-but-quiet worker
//!   for a dead one.
//! * **Chaos proxy** — every protocol upload runs through
//!   [`Transport::chaos_frames`] first: ghost frames are written for the
//!   server's assembler to reject, and an exhausted retry budget is
//!   announced with [`NetControl::ChaosGone`] so the server re-derives
//!   the identical fault accounting from its own copy of the seed.

use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::pool::PoolConfig;
use crate::server::{scheme_from_code, NetStream};
use crate::transport::{FaultConfig, LinkState, MsgKind, RetryPolicy, Transport, TransportStats};
use crate::verify::ProofProvider;
use crate::wire::{self, BusyReason, FamilySpec, FrameAssembler, NetControl, PayloadClass};
use crate::worker::{CommitMode, PoolWorker};
use rpol_lsh::{LshFamily, LshParams};
use rpol_obs::{Recorder, TraceContext, Value};
use rpol_sim::SimClock;
use std::sync::Arc;

/// Client-side timeouts and reconnect policy.
#[derive(Debug, Clone)]
pub struct ClientTuning {
    /// Reconnect backoff schedule (shares the transport's capped
    /// exponential [`RetryPolicy::backoff_s`]).
    pub retry: RetryPolicy,
    /// Multiplier turning the policy's simulated backoff seconds into
    /// real sleep seconds (tests want fast reconnects).
    pub backoff_scale: f64,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Poll tick: how long a blocking read waits before the idle path
    /// (heartbeats, shutdown checks) runs.
    pub read_timeout: Duration,
    /// Give up on a handshake not answered within this deadline.
    pub hello_timeout: Duration,
    /// Send a [`NetControl::Ping`] after this much link silence.
    pub heartbeat_interval: Duration,
    /// Largest accepted frame.
    pub max_frame_bytes: usize,
}

impl Default for ClientTuning {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            backoff_scale: 0.02,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(25),
            hello_timeout: Duration::from_secs(5),
            heartbeat_interval: Duration::from_secs(5),
            max_frame_bytes: 64 << 20,
        }
    }
}

/// What one worker's client session amounted to.
#[derive(Debug, Clone, Default)]
pub struct ClientReport {
    /// The worker's pool id.
    pub worker_id: usize,
    /// Successful connections beyond the first.
    pub reconnects: u64,
    /// Pings sent.
    pub heartbeats: u64,
    /// `Busy` frames received (either reason).
    pub busy_rejects: u64,
    /// Epoch tasks trained.
    pub epochs_trained: u64,
    /// Proof openings answered.
    pub proofs_served: u64,
    /// Frames rejected by the checksum (the server's chaos ghosts).
    pub corrupt_frames: u64,
    /// Checkpoint bytes held at exit (§VII-E storage overhead).
    pub storage_bytes: u64,
    /// Sender-side chaos accounting (submission and proof-response legs).
    pub transport: TransportStats,
    /// The server said [`NetControl::Shutdown`] (as opposed to the client
    /// giving up on reconnects).
    pub clean_shutdown: bool,
}

/// The worker's commitment discipline for the current epoch, derived
/// lazily from the latest [`NetControl::CommitSpec`].
#[derive(Default)]
struct SpecState {
    epoch: u64,
    scheme: u8,
    family_spec: Option<FamilySpec>,
    /// Generated on first use per `(epoch, dim)` — `LshFamily::generate`
    /// is pure, so this matches the manager's family exactly.
    family: Option<LshFamily>,
}

/// One worker, connected to the manager over a socket.
pub struct WorkerClient {
    config: PoolConfig,
    worker: PoolWorker,
    addr: String,
    tuning: ClientTuning,
    transport: Transport,
    /// Defaults to the shared no-op recorder; [`WorkerClient::with_recorder`]
    /// switches tracing on for this worker process.
    recorder: Arc<Recorder>,
}

impl WorkerClient {
    /// Prepares a client for `worker` against the manager at `addr`
    /// ([`BindAddr::parse`](crate::server::BindAddr::parse) syntax). The
    /// chaos proxy is seeded from the pool config exactly like the
    /// server's, so both sides draw identical fault outcomes.
    pub fn new(config: PoolConfig, worker: PoolWorker, addr: String, tuning: ClientTuning) -> Self {
        let fault = config
            .fault
            .unwrap_or_else(|| FaultConfig::ideal(config.seed));
        let transport = Transport::new(&fault);
        Self {
            config,
            worker,
            addr,
            tuning,
            transport,
            recorder: rpol_obs::noop().clone(),
        }
    }

    /// Attaches an observability recorder: protocol-driven trace points
    /// (train, proof) open child spans under the server's propagated
    /// [`TraceContext`], and uploads carry this process's context back.
    /// Timing-driven paths (heartbeats, reconnects, backoff) are never
    /// traced, so a same-seed run replays a byte-identical trace.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    fn connect(&self) -> io::Result<NetStream> {
        let stream = match self.addr.strip_prefix("unix:") {
            Some(path) => NetStream::Unix(UnixStream::connect(path)?),
            None => {
                let addr: SocketAddr = self
                    .addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unresolvable"))?;
                let s = TcpStream::connect_timeout(&addr, self.tuning.connect_timeout)?;
                s.set_nodelay(true)?;
                NetStream::Tcp(s)
            }
        };
        match &stream {
            NetStream::Tcp(s) => s.set_read_timeout(Some(self.tuning.read_timeout))?,
            NetStream::Unix(s) => s.set_read_timeout(Some(self.tuning.read_timeout))?,
        }
        Ok(stream)
    }

    /// Runs the session until the server says shutdown or the reconnect
    /// budget is spent.
    pub fn run(mut self) -> ClientReport {
        let mut report = ClientReport {
            worker_id: self.worker.id,
            ..ClientReport::default()
        };
        let mut stats = TransportStats::default();
        let mut clock = SimClock::new();
        let mut spec = SpecState::default();
        let mut proof_seq: u64 = 0;
        let mut current_epoch: u64 = 0;
        let mut sessions: u64 = 0;
        let mut connect_failures: u32 = 0;

        'outer: loop {
            // Connect (with capped exponential backoff on failure).
            let mut stream = match self.connect() {
                Ok(s) => s,
                Err(_) => {
                    connect_failures += 1;
                    if connect_failures >= self.tuning.retry.max_attempts {
                        break 'outer;
                    }
                    let backoff =
                        self.tuning.retry.backoff_s(connect_failures) * self.tuning.backoff_scale;
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                    continue 'outer;
                }
            };
            connect_failures = 0;

            // Handshake.
            let hello = wire::seal_frame(&wire::encode_net_control(&NetControl::Hello {
                worker: self.worker.id as u32,
                protocol: wire::NET_PROTOCOL,
            }));
            if stream.write_all(&hello).is_err() {
                continue 'outer;
            }
            sessions += 1;
            if sessions > 1 {
                report.reconnects += 1;
            }

            let mut asm = FrameAssembler::new(self.tuning.max_frame_bytes);
            let mut welcomed = false;
            let hello_deadline = Instant::now() + self.tuning.hello_timeout;
            let mut last_activity = Instant::now();
            let mut ping_nonce: u64 = 0;
            let mut chunk = [0u8; 8192];

            // Session loop.
            loop {
                if !welcomed && Instant::now() > hello_deadline {
                    continue 'outer; // server never answered the Hello
                }
                match stream.read(&mut chunk) {
                    Ok(0) => continue 'outer, // EOF: reconnect
                    Ok(k) => {
                        last_activity = Instant::now();
                        asm.push(&chunk[..k]);
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        // Idle tick: heartbeat a quiet-but-healthy link.
                        if welcomed && last_activity.elapsed() >= self.tuning.heartbeat_interval {
                            ping_nonce += 1;
                            let ping =
                                wire::seal_frame(&wire::encode_net_control(&NetControl::Ping {
                                    nonce: ping_nonce,
                                }));
                            if stream.write_all(&ping).is_err() {
                                continue 'outer;
                            }
                            report.heartbeats += 1;
                            last_activity = Instant::now();
                        }
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => continue 'outer,
                }

                // Drain every frame the read produced.
                loop {
                    let payload = match asm.next_frame() {
                        Ok(Some(p)) => p,
                        Ok(None) => break,
                        Err(wire::DecodeError::ChecksumMismatch) => {
                            report.corrupt_frames += 1;
                            continue;
                        }
                        Err(_) => continue,
                    };
                    // Strip the server's optional trace extension before
                    // classifying; all decoding below sees the inner
                    // payload, identical to an untraced run.
                    let (tctx, payload) = wire::split_traced(&payload);
                    match wire::classify_payload(&payload) {
                        PayloadClass::Control => {
                            match wire::decode_net_control(payload) {
                                Ok(NetControl::Welcome { .. }) => welcomed = true,
                                Ok(NetControl::Busy { reason }) => {
                                    report.busy_rejects += 1;
                                    if !welcomed || reason == BusyReason::PoolFull {
                                        // Refused service: back off, retry.
                                        let backoff = self.tuning.retry.backoff_s(1)
                                            * self.tuning.backoff_scale;
                                        std::thread::sleep(Duration::from_secs_f64(backoff));
                                        continue 'outer;
                                    }
                                    // Shedding: our submission was refused;
                                    // nothing to do but wait out the epoch.
                                }
                                Ok(NetControl::CommitSpec {
                                    epoch,
                                    scheme,
                                    family,
                                }) => {
                                    spec = SpecState {
                                        epoch,
                                        scheme,
                                        family_spec: family,
                                        family: None,
                                    };
                                    current_epoch = epoch;
                                }
                                Ok(NetControl::ProofSeq { seq }) => proof_seq = seq,
                                Ok(NetControl::Shutdown) => {
                                    report.clean_shutdown = true;
                                    break 'outer;
                                }
                                // Pong resets last_activity via the read
                                // path; EpochEnd is informational.
                                Ok(_) | Err(_) => {}
                            }
                        }
                        PayloadClass::EpochTask => {
                            if self
                                .handle_task(
                                    &mut stream,
                                    payload,
                                    tctx,
                                    &mut spec,
                                    &mut stats,
                                    &mut clock,
                                )
                                .is_err()
                            {
                                continue 'outer;
                            }
                            report.epochs_trained += 1;
                            current_epoch = spec.epoch;
                            last_activity = Instant::now();
                        }
                        PayloadClass::ProofRequest => {
                            if self
                                .handle_proof_request(
                                    &mut stream,
                                    payload,
                                    tctx,
                                    &spec,
                                    current_epoch,
                                    proof_seq,
                                    &mut stats,
                                    &mut clock,
                                )
                                .is_err()
                            {
                                continue 'outer;
                            }
                            report.proofs_served += 1;
                            last_activity = Instant::now();
                        }
                        // Worker-bound frames only; ignore the rest.
                        _ => {}
                    }
                }
            }
        }

        report.storage_bytes = self.worker.storage_bytes();
        report.transport = stats;
        report
    }

    /// Trains the delivered task and uploads the submission through the
    /// chaos proxy.
    #[allow(clippy::too_many_arguments)]
    fn handle_task(
        &mut self,
        stream: &mut NetStream,
        payload: Bytes,
        tctx: Option<TraceContext>,
        spec: &mut SpecState,
        stats: &mut TransportStats,
        clock: &mut SimClock,
    ) -> io::Result<()> {
        let Ok(task) = wire::decode_epoch_task(payload) else {
            return Ok(()); // checksummed yet malformed: drop, stay connected
        };
        let recorder = self.recorder.clone();
        let (_train_span, train_sid) = recorder.child_span(
            "rpol.client.train",
            tctx.unwrap_or_default(),
            &[
                ("epoch", Value::from(task.epoch)),
                ("worker", Value::from(self.worker.id)),
                ("steps", Value::from(task.steps)),
            ],
        );
        let mode = Self::commit_mode(spec, task.global_weights.len());
        let sub = self.worker.run_epoch(
            &self.config.task,
            &task.global_weights,
            task.nonce,
            task.steps as usize,
            task.epoch,
            mode,
        );
        let payload = wire::encode_submission(&sub.final_weights, sub.commitment.as_ref());
        let raw = wire::submission_raw_wire_size(sub.final_weights.len(), sub.commitment.as_ref());
        let out_ctx = tctx.map(|t| TraceContext {
            trace_id: t.trace_id,
            parent_span: train_sid,
            watermark: 0, // stamped at the actual send in chaos_send
        });
        self.chaos_send(
            stream,
            task.epoch,
            MsgKind::Submission,
            0,
            &payload,
            raw,
            out_ctx,
            stats,
            clock,
        )
    }

    /// Opens the sampled checkpoint and uploads the proof response
    /// through the chaos proxy, under the server-assigned sequence
    /// number.
    #[allow(clippy::too_many_arguments)]
    fn handle_proof_request(
        &mut self,
        stream: &mut NetStream,
        payload: Bytes,
        tctx: Option<TraceContext>,
        spec: &SpecState,
        epoch: u64,
        seq: u64,
        stats: &mut TransportStats,
        clock: &mut SimClock,
    ) -> io::Result<()> {
        let Ok(samples) = wire::decode_proof_request(payload) else {
            return Ok(());
        };
        let Some(&sample) = samples.first() else {
            return Ok(());
        };
        let recorder = self.recorder.clone();
        let (_proof_span, proof_sid) = recorder.child_span(
            "rpol.client.proof",
            tctx.unwrap_or_default(),
            &[
                ("epoch", Value::from(epoch)),
                ("worker", Value::from(self.worker.id)),
                ("sample", Value::from(sample)),
                ("seq", Value::from(seq)),
            ],
        );
        let Ok(weights) = self.worker.open_checkpoint(sample) else {
            return Ok(()); // nothing stored: the server's wait times out
        };
        let packed = spec.scheme == 3;
        let payload = if packed {
            wire::encode_proof_response_packed(sample, &weights)
        } else {
            wire::encode_proof_response(sample, &weights)
        };
        let raw = wire::proof_response_raw_wire_size(weights.len());
        drop(weights);
        let out_ctx = tctx.map(|t| TraceContext {
            trace_id: t.trace_id,
            parent_span: proof_sid,
            watermark: 0, // stamped at the actual send in chaos_send
        });
        self.chaos_send(
            stream,
            epoch,
            MsgKind::ProofResponse,
            seq,
            &payload,
            raw,
            out_ctx,
            stats,
            clock,
        )
    }

    /// Runs a protocol upload through the chaos proxy: writes whatever
    /// frames the lossy link would have produced (ghosts and, on
    /// success, the pristine copy), or announces an exhausted retry
    /// budget with [`NetControl::ChaosGone`].
    #[allow(clippy::too_many_arguments)]
    fn chaos_send(
        &self,
        stream: &mut NetStream,
        epoch: u64,
        kind: MsgKind,
        seq: u64,
        payload: &Bytes,
        raw_len: usize,
        tctx: Option<TraceContext>,
        stats: &mut TransportStats,
        clock: &mut SimClock,
    ) -> io::Result<()> {
        let (mut writes, outcome) = self.transport.chaos_frames(
            epoch,
            self.worker.id,
            kind,
            seq,
            payload,
            LinkState::healthy(),
            stats,
            clock,
            &self.recorder,
        );
        // Wrap only the pristine frame (last write of a success), after the
        // chaos draws, stamping the watermark at the actual send: ghosts and
        // fault outcomes are byte-identical to an untraced run.
        if self.recorder.enabled() && outcome.is_ok() {
            if let (Some(mut ctx), Some(last)) = (tctx, writes.last_mut()) {
                ctx.watermark = self.recorder.now_ns();
                *last = wire::seal_frame(&wire::wrap_traced(ctx, payload));
            }
        }
        if outcome.is_err() {
            writes.push(wire::seal_frame(&wire::encode_net_control(
                &NetControl::ChaosGone {
                    kind: kind.wire_code(),
                    seq,
                    payload_len: payload.len() as u32,
                    raw_len: raw_len as u32,
                },
            )));
        }
        // One gathered write for the whole burst (retry ghosts + pristine
        // copy or ChaosGone): the bytes on the wire are identical to the
        // frame-at-a-time loop this replaces, minus the per-frame syscalls.
        write_all_vectored(stream, &writes)
    }

    /// The commitment mode for this epoch, generating the LSH family on
    /// first use (pure function of the spec's scalars and the model
    /// dimension, so it matches the manager's family bit for bit).
    fn commit_mode(spec: &mut SpecState, dim: usize) -> CommitMode<'_> {
        let needs_family = matches!(scheme_from_code(spec.scheme), Some(s) if matches!(
            s,
            crate::pool::Scheme::RPoLv2 | crate::pool::Scheme::RPoLv3
        ));
        if needs_family && spec.family.is_none() {
            if let Some(fs) = spec.family_spec {
                let params = LshParams::new(fs.r, fs.k as usize, fs.l as usize);
                spec.family = Some(LshFamily::generate(dim, params, fs.seed));
            }
        }
        match (scheme_from_code(spec.scheme), &spec.family) {
            (Some(crate::pool::Scheme::RPoLv1), _) => CommitMode::V1,
            (Some(crate::pool::Scheme::RPoLv2), Some(f)) => CommitMode::V2(f),
            (Some(crate::pool::Scheme::RPoLv3), Some(f)) => CommitMode::V3(f),
            _ => CommitMode::Skip,
        }
    }
}

/// Blocking vectored drain: writes every frame, gathering the remainder
/// of the burst into one `writev` per syscall round. Equivalent on the
/// wire to `write_all` per frame.
fn write_all_vectored(stream: &mut NetStream, frames: &[Bytes]) -> io::Result<()> {
    let mut frame = 0; // first frame with unwritten bytes
    let mut offset = 0; // bytes of that frame already written
    while frame < frames.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() - frame);
        for (i, f) in frames[frame..].iter().enumerate() {
            slices.push(IoSlice::new(if i == 0 { &f[offset..] } else { f }));
        }
        let mut k = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame burst",
                ))
            }
            Ok(k) => k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while k > 0 {
            let left = frames[frame].len() - offset;
            if k >= left {
                k -= left;
                frame += 1;
                offset = 0;
            } else {
                offset += k;
                k = 0;
            }
        }
    }
    Ok(())
}
