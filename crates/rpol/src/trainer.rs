//! The deterministic local training engine (§V-B) with simulated hardware
//! nondeterminism.
//!
//! Both sides of the protocol run this code: workers to train their
//! sub-task, the manager to *replay* sampled checkpoint segments. Batches
//! are selected by the stochastic-yet-deterministic PRF rule
//! `PRF(N·m + n) mod |D_w|`, so a replay touches exactly the same data in
//! exactly the same order; the only divergence between an honest worker
//! and its replay is the injected GPU noise (reproduction error).
//!
//! **Protocol clarification (documented deviation):** replay verification
//! starts from a checkpoint's *weights only*, so stateful optimizers
//! (momentum/Adam) are re-initialized at every checkpoint boundary — by
//! both workers and the verifier. Segments are therefore self-contained:
//! the paper does not spell out how optimizer state crosses sampled
//! checkpoints, and resetting it per segment is the only choice that makes
//! honest replay reproducible without shipping optimizer state in proofs.

use crate::tasks::TaskConfig;
use rpol_crypto::prf::{deterministic_batch, Prf};
use rpol_nn::data::SyntheticImages;
use rpol_nn::loss::softmax_cross_entropy;
use rpol_nn::model::Sequential;
use rpol_sim::gpu::NoiseInjector;
use rpol_tensor::scratch::ScratchArena;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key for one step's PRF batch selection: the full input of
/// [`deterministic_batch`] — `(nonce, step, batch_size, shard_len)`.
type BatchKey = (u64, u64, usize, u64);

/// Process-wide memo of PRF sampling index streams. The same `(nonce,
/// step)` batch is computed by the worker while training and again by the
/// manager for every replay of the segment containing that step; the
/// indices are a pure function of the key, so the replay side reuses the
/// worker's stream instead of re-evaluating `batch_size` PRF calls.
static BATCH_CACHE: OnceLock<Mutex<HashMap<BatchKey, Arc<Vec<usize>>>>> = OnceLock::new();
static BATCH_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static BATCH_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Nonces rotate every epoch, so entries go stale fast; clearing the map
/// when it fills is simpler than LRU and costs one warm-up per epoch.
const BATCH_CACHE_CAP: usize = 8192;

/// Process-lifetime count of batch index streams served from the cache.
pub fn batch_cache_hits() -> u64 {
    BATCH_CACHE_HITS.load(Ordering::Relaxed)
}

/// Process-lifetime count of batch index streams computed from scratch.
pub fn batch_cache_misses() -> u64 {
    BATCH_CACHE_MISSES.load(Ordering::Relaxed)
}

/// Memoized [`deterministic_batch`] — bitwise-identical indices, cached
/// across the train/replay sides of an epoch.
fn cached_batch(nonce: u64, step: u64, batch: usize, len: u64) -> Arc<Vec<usize>> {
    let key = (nonce, step, batch, len);
    let cache = BATCH_CACHE.get_or_init(Default::default);
    if let Some(hit) = cache.lock().expect("batch cache poisoned").get(&key) {
        BATCH_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    BATCH_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let indices = Arc::new(deterministic_batch(
        &Prf::from_nonce(nonce),
        step,
        batch,
        len,
    ));
    let mut map = cache.lock().expect("batch cache poisoned");
    if map.len() >= BATCH_CACHE_CAP {
        map.clear();
    }
    map.entry(key).or_insert_with(|| indices.clone());
    indices
}

/// Flattens only the trainable (non-frozen) parameters into `out`
/// (cleared first), so callers can reuse a scratch buffer across steps.
fn flatten_trainable_into(model: &Sequential, out: &mut Vec<f32>) {
    out.clear();
    model.visit_params(&mut |p| {
        if !p.frozen {
            out.extend_from_slice(p.value.data());
        }
    });
}

/// Euclidean distance between two flat vectors.
fn distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// One checkpoint segment: the training steps between two consecutive
/// stored checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Global step index where the segment starts.
    pub start_step: usize,
    /// Number of steps in the segment (equals the checkpoint interval,
    /// except possibly the last segment of an epoch).
    pub steps: usize,
}

/// Splits an epoch of `total_steps` into checkpoint segments of length
/// `interval` (last may be shorter).
///
/// # Panics
///
/// Panics if either argument is zero.
pub fn epoch_segments(total_steps: usize, interval: usize) -> Vec<Segment> {
    assert!(total_steps > 0, "empty epoch");
    assert!(interval > 0, "zero checkpoint interval");
    let mut segments = Vec::new();
    let mut start = 0;
    while start < total_steps {
        let steps = interval.min(total_steps - start);
        segments.push(Segment {
            start_step: start,
            steps,
        });
        start += steps;
    }
    segments
}

/// The result of one epoch of honest local training.
#[derive(Debug, Clone)]
pub struct EpochTrace {
    /// Checkpointed weight vectors: `checkpoints[0]` is the epoch's input
    /// weights, `checkpoints.last()` the epoch output; one entry per
    /// segment boundary.
    pub checkpoints: Vec<Vec<f32>>,
    /// The segment layout matching `checkpoints` (segment `j` transforms
    /// `checkpoints[j]` into `checkpoints[j+1]`).
    pub segments: Vec<Segment>,
    /// Mean training loss across the epoch.
    pub mean_loss: f32,
}

impl EpochTrace {
    /// The epoch's final weights.
    pub fn final_weights(&self) -> &[f32] {
        self.checkpoints.last().expect("nonempty trace")
    }
}

/// The deterministic trainer used by workers (to train) and by the manager
/// (to replay and to calibrate).
#[derive(Debug)]
pub struct LocalTrainer<'a> {
    config: &'a TaskConfig,
    shard: &'a SyntheticImages,
    noise: NoiseInjector,
    /// Recycled weight-sized working buffers: the per-step flatten /
    /// noise staging copies reuse these instead of allocating. Purely a
    /// memory concern — values are identical to fresh allocations.
    arena: ScratchArena,
}

impl<'a> LocalTrainer<'a> {
    /// Creates a trainer over a data shard with a hardware-noise profile.
    pub fn new(config: &'a TaskConfig, shard: &'a SyntheticImages, noise: NoiseInjector) -> Self {
        Self::with_arena(config, shard, noise, ScratchArena::new())
    }

    /// Like [`new`], but seeded with an existing scratch arena so a caller
    /// replaying many segments (the verifier) carries warmed buffers from
    /// one short-lived trainer to the next. Reclaim it with
    /// [`into_arena`].
    ///
    /// [`new`]: LocalTrainer::new
    /// [`into_arena`]: LocalTrainer::into_arena
    pub fn with_arena(
        config: &'a TaskConfig,
        shard: &'a SyntheticImages,
        noise: NoiseInjector,
        arena: ScratchArena,
    ) -> Self {
        Self {
            config,
            shard,
            noise,
            arena,
        }
    }

    /// Consumes the trainer, returning its scratch arena for reuse.
    pub fn into_arena(self) -> ScratchArena {
        self.arena
    }

    /// Runs `segment.steps` deterministic training steps on `model`
    /// starting at `segment.start_step`, with a fresh optimizer (see the
    /// module docs for why state resets per segment). Returns the mean
    /// loss over the segment.
    pub fn run_segment(&mut self, model: &mut Sequential, nonce: u64, segment: Segment) -> f32 {
        // Stochastic layers (dropout) re-derive their mask streams from
        // the protocol state so replay reproduces them exactly.
        model.reseed(nonce ^ (segment.start_step as u64).wrapping_mul(0x9E37_79B9));
        let mut opt = self.config.optimizer.build();
        let mut total_loss = 0.0;
        for s in 0..segment.steps {
            let step = segment.start_step + s;
            let indices = cached_batch(
                nonce,
                step as u64,
                self.config.batch_size,
                self.shard.len() as u64,
            );
            let (x, labels) = self.shard.batch(&indices);
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            total_loss += loss;
            model.backward(&grad);

            let mut before = self.arena.take_empty(0);
            flatten_trainable_into(model, &mut before);
            model.step(opt.as_mut());
            let mut noisy = self.arena.take_empty(before.len());
            flatten_trainable_into(model, &mut noisy);
            let update_norm = distance(&before, &noisy);
            self.arena.recycle(before);

            // Inject hardware nondeterminism into the trainable weights.
            self.noise.perturb_after_step(&mut noisy, update_norm);
            let mut offset = 0;
            model.visit_params_mut(&mut |p| {
                if !p.frozen {
                    let n = p.value.len();
                    p.value
                        .data_mut()
                        .copy_from_slice(&noisy[offset..offset + n]);
                    offset += n;
                }
            });
            self.arena.recycle(noisy);
        }
        total_loss / segment.steps as f32
    }

    /// Trains one full epoch from the model's current weights, recording a
    /// checkpoint at every segment boundary.
    pub fn run_epoch(
        &mut self,
        model: &mut Sequential,
        nonce: u64,
        total_steps: usize,
    ) -> EpochTrace {
        let segments = epoch_segments(total_steps, self.config.checkpoint_interval);
        let mut checkpoints = vec![model.flatten_params()];
        let mut loss_sum = 0.0;
        for &segment in &segments {
            loss_sum += self.run_segment(model, nonce, segment);
            checkpoints.push(model.flatten_params());
        }
        EpochTrace {
            checkpoints,
            mean_loss: loss_sum / segments.len() as f32,
            segments,
        }
    }

    /// Trains one full epoch **on the bf16 lattice** (RPoLv3): weights are
    /// snapped to the lattice before the first step and again at every
    /// segment boundary, so every recorded checkpoint is exactly
    /// representable in 2 bytes per weight. Gradient steps inside a
    /// segment still run in full f32 — only the protocol-visible states
    /// (the checkpoints the worker commits to and trains onward from) live
    /// on the lattice, the quantized-descent trick that makes the packed
    /// image a lossless, exactly replayable encoding.
    pub fn run_epoch_quantized(
        &mut self,
        model: &mut Sequential,
        nonce: u64,
        total_steps: usize,
    ) -> EpochTrace {
        let segments = epoch_segments(total_steps, self.config.checkpoint_interval);
        let mut input = model.flatten_params();
        rpol_tensor::quant::snap_to_bf16(&mut input);
        model.load_params(&input);
        let mut checkpoints = vec![input];
        let mut loss_sum = 0.0;
        for &segment in &segments {
            loss_sum += self.run_segment(model, nonce, segment);
            let mut snapped = model.flatten_params();
            rpol_tensor::quant::snap_to_bf16(&mut snapped);
            model.load_params(&snapped);
            checkpoints.push(snapped);
        }
        EpochTrace {
            checkpoints,
            mean_loss: loss_sum / segments.len() as f32,
            segments,
        }
    }

    /// Replays one segment from explicit input weights, returning the
    /// resulting weights — the manager's verification primitive.
    pub fn replay_segment(
        &mut self,
        model: &mut Sequential,
        input_weights: &[f32],
        nonce: u64,
        segment: Segment,
    ) -> Vec<f32> {
        model.load_params(input_weights);
        self.run_segment(model, nonce, segment);
        model.flatten_params()
    }

    /// [`replay_segment`] with the RPoLv3 lattice snap applied to the
    /// result, mirroring what an honest quantized worker recorded at the
    /// segment's end.
    ///
    /// [`replay_segment`]: LocalTrainer::replay_segment
    pub fn replay_segment_quantized(
        &mut self,
        model: &mut Sequential,
        input_weights: &[f32],
        nonce: u64,
        segment: Segment,
    ) -> Vec<f32> {
        let mut replayed = self.replay_segment(model, input_weights, nonce, segment);
        rpol_tensor::quant::snap_to_bf16(&mut replayed);
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_sim::gpu::GpuModel;
    use rpol_tensor::rng::Pcg32;

    fn setup() -> (TaskConfig, SyntheticImages) {
        let cfg = TaskConfig::tiny();
        let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
        (cfg, data)
    }

    #[test]
    fn segments_cover_epoch() {
        let segs = epoch_segments(13, 5);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                start_step: 0,
                steps: 5
            }
        );
        assert_eq!(
            segs[2],
            Segment {
                start_step: 10,
                steps: 3
            }
        );
        let total: usize = segs.iter().map(|s| s.steps).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn noiseless_training_is_reproducible() {
        let (cfg, data) = setup();
        let run = || {
            let mut model = cfg.build_model();
            let mut trainer =
                LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
            trainer.run_epoch(&mut model, 42, 6).checkpoints
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noiseless_replay_matches_exactly() {
        let (cfg, data) = setup();
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        let trace = trainer.run_epoch(&mut model, 7, 6);

        let mut verify_model = cfg.build_model();
        let mut verifier =
            LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed =
                verifier.replay_segment(&mut verify_model, &trace.checkpoints[j], 7, *seg);
            assert_eq!(replayed, trace.checkpoints[j + 1], "segment {j}");
        }
    }

    #[test]
    fn noisy_replay_is_close_but_not_exact() {
        let (cfg, data) = setup();
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 1));
        let trace = trainer.run_epoch(&mut model, 7, 6);

        let mut verify_model = cfg.build_model();
        let mut verifier = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::G3090, 2));
        let replayed = verifier.replay_segment(
            &mut verify_model,
            &trace.checkpoints[0],
            7,
            trace.segments[0],
        );
        let dist = distance(&replayed, &trace.checkpoints[1]);
        assert!(dist > 0.0, "noisy runs should differ");
        // Reproduction error is orders of magnitude below the weight-change
        // scale of a segment.
        let progress = distance(&trace.checkpoints[0], &trace.checkpoints[1]);
        assert!(
            dist < progress * 0.2,
            "repro error {dist} vs segment progress {progress}"
        );
    }

    #[test]
    fn quantized_epoch_checkpoints_live_on_the_lattice() {
        let (cfg, data) = setup();
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 3));
        let trace = trainer.run_epoch_quantized(&mut model, 11, 6);
        for (j, cp) in trace.checkpoints.iter().enumerate() {
            assert!(
                rpol_tensor::quant::is_bf16_lattice(cp),
                "checkpoint {j} off the lattice"
            );
        }
        // Training still makes progress on the lattice.
        assert_ne!(trace.checkpoints[0], *trace.final_weights());
    }

    #[test]
    fn quantized_noiseless_replay_matches_exactly() {
        // The quantized analogue of `noiseless_replay_matches_exactly`:
        // replay from a lattice checkpoint, snap the result, and land on
        // the worker's next lattice checkpoint bit for bit.
        let (cfg, data) = setup();
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        let trace = trainer.run_epoch_quantized(&mut model, 7, 6);

        let mut verify_model = cfg.build_model();
        let mut verifier =
            LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed = verifier.replay_segment_quantized(
                &mut verify_model,
                &trace.checkpoints[j],
                7,
                *seg,
            );
            assert_eq!(replayed, trace.checkpoints[j + 1], "segment {j}");
        }
    }

    #[test]
    fn training_reduces_loss_over_epochs() {
        let (cfg, data) = setup();
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::G3090, 5));
        let first = trainer.run_epoch(&mut model, 1, 12).mean_loss;
        let mut last = first;
        for e in 2..=5 {
            last = trainer.run_epoch(&mut model, e, 12).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn stochastic_layers_replay_exactly() {
        // MiniVgg16 contains dropout; the reseed hook must make replay
        // bit-exact on noiseless hardware despite the stochastic masks.
        let mut cfg = TaskConfig::tiny();
        cfg.arch = crate::tasks::ModelArch::MiniVgg16;
        let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(2));
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        let trace = trainer.run_epoch(&mut model, 21, 6);

        let mut verify_model = cfg.build_model();
        let mut verifier =
            LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed =
                verifier.replay_segment(&mut verify_model, &trace.checkpoints[j], 21, *seg);
            assert_eq!(replayed, trace.checkpoints[j + 1], "segment {j}");
        }
    }

    #[test]
    fn batch_cache_matches_prf_oracle() {
        let oracle = deterministic_batch(&Prf::from_nonce(99), 5, 8, 64);
        let first = cached_batch(99, 5, 8, 64);
        let hits_before = batch_cache_hits();
        let second = cached_batch(99, 5, 8, 64);
        assert_eq!(*first, oracle, "cached indices differ from the PRF rule");
        assert_eq!(*second, oracle);
        assert!(
            batch_cache_hits() > hits_before,
            "second lookup of the same step must hit"
        );
        // A different nonce is a different stream, not a stale entry.
        assert_ne!(*cached_batch(100, 5, 8, 64), oracle);
    }

    #[test]
    fn different_nonces_different_trajectories() {
        let (cfg, data) = setup();
        let run = |nonce: u64| {
            let mut model = cfg.build_model();
            let mut trainer =
                LocalTrainer::new(&cfg, &data, NoiseInjector::noiseless(GpuModel::G3090));
            trainer
                .run_epoch(&mut model, nonce, 4)
                .final_weights()
                .to_vec()
        };
        assert_ne!(
            run(1),
            run(2),
            "replay-attack resistance: nonces must matter"
        );
    }
}
