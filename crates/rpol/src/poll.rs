//! Minimal readiness source for the server reactor.
//!
//! The socket server's readiness backend needs exactly three operations:
//! register a socket under a `u64` token, wait (non-blocking) for readable
//! sockets, and let closed sockets fall out of the interest set. On x86_64
//! Linux this is `epoll` — invoked through raw syscalls because the
//! workspace carries no `libc` (every external dependency is an offline
//! compat stand-in). Everywhere else [`Poller::new`] reports
//! `Unsupported` and the server falls back to its portable scan loop.
//!
//! Design notes:
//!
//! - **Level-triggered, read-interest only.** The reactor drains each
//!   ready socket up to its budget and relies on level-triggering to be
//!   re-woken for leftovers; write-interest is tracked in userspace (the
//!   flush queue) because outboxes drain in the same pump that fills them
//!   in the common case.
//! - **No explicit deregistration on close.** The kernel removes an fd
//!   from every epoll interest list when its last descriptor closes,
//!   which is exactly when the reactor drops a `Conn`. [`Poller::del`]
//!   exists for the eviction path where the stream is swapped out before
//!   being dropped, and tolerates `ENOENT`.

/// Whether this build can construct a working [`Poller`].
pub const READINESS_AVAILABLE: bool = cfg!(all(
    feature = "epoll",
    target_os = "linux",
    target_arch = "x86_64"
));

/// One readiness notification: the token passed at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ready {
    /// Token supplied to [`Poller::add`] for the ready fd.
    pub token: u64,
}

#[cfg(all(feature = "epoll", target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::Ready;
    use std::io;

    const SYS_CLOSE: u64 = 3;
    const SYS_EPOLL_WAIT: u64 = 232;
    const SYS_EPOLL_CTL: u64 = 233;
    const SYS_EPOLL_CREATE1: u64 = 291;

    const EPOLL_CLOEXEC: u64 = 0x80000;
    const EPOLL_CTL_ADD: u64 = 1;
    const EPOLL_CTL_DEL: u64 = 2;
    const EPOLLIN: u32 = 0x001;

    const ENOENT: i64 = 2;

    /// Kernel ABI layout for `struct epoll_event` on x86_64 (packed: the
    /// kernel declares it with `__attribute__((packed))` on this arch).
    #[repr(C, packed)]
    #[derive(Debug, Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Raw syscall returning the kernel's `long` result (negative errno on
    /// failure). Only clobbers rcx/r11 per the syscall ABI.
    #[inline]
    unsafe fn syscall4(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64) -> i64 {
        let ret: i64;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error((-ret) as i32))
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance owning its descriptor.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
        /// Reused kernel-event buffer so `wait` never allocates.
        events: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates an epoll instance, or fails with the kernel's error.
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Self {
                epfd: epfd as i32,
                events: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        /// Registers `fd` for level-triggered read readiness under `token`.
        pub fn add(&self, fd: i32, token: u64) -> io::Result<()> {
            let ev = EpollEvent {
                events: EPOLLIN,
                data: token,
            };
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as u64,
                    EPOLL_CTL_ADD,
                    fd as u64,
                    &ev as *const EpollEvent as u64,
                )
            })?;
            Ok(())
        }

        /// Removes `fd` from the interest set. Already-gone fds (closed, so
        /// auto-deregistered by the kernel) are not an error.
        pub fn del(&self, fd: i32) -> io::Result<()> {
            let ev = EpollEvent { events: 0, data: 0 };
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as u64,
                    EPOLL_CTL_DEL,
                    fd as u64,
                    &ev as *const EpollEvent as u64,
                )
            };
            if ret == -ENOENT {
                return Ok(());
            }
            check(ret)?;
            Ok(())
        }

        /// Collects ready tokens, appending to `out`. `timeout_ms = 0`
        /// polls without blocking (the cooperative pump); a positive
        /// timeout parks the caller in the kernel until an event fires or
        /// the timeout lapses — the reactor's idle wait. Returns the
        /// number of events appended.
        pub fn wait(&mut self, out: &mut Vec<Ready>, timeout_ms: i32) -> io::Result<usize> {
            let n = check(unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd as u64,
                    self.events.as_mut_ptr() as u64,
                    self.events.len() as u64,
                    timeout_ms.max(0) as u64,
                )
            })? as usize;
            for ev in &self.events[..n] {
                out.push(Ready { token: ev.data });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                syscall4(SYS_CLOSE, self.epfd as u64, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(all(feature = "epoll", target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::Ready;
    use std::io;

    /// Stub poller for targets without the raw-syscall epoll shim. Never
    /// constructs; the server keeps the portable scan loop.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails: readiness polling is unavailable on this target.
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness backend requires the `epoll` feature on x86_64 linux",
            ))
        }

        /// Unreachable (the stub never constructs).
        pub fn add(&self, _fd: i32, _token: u64) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (the stub never constructs).
        pub fn del(&self, _fd: i32) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (the stub never constructs).
        pub fn wait(&mut self, _out: &mut Vec<Ready>, _timeout_ms: i32) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(all(feature = "epoll", target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn epoll_reports_readable_tcp_data() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("poller");
        poller
            .add(listener.as_raw_fd(), u64::MAX)
            .expect("add listener");

        // Nothing pending: wait returns no events.
        let mut ready = Vec::new();
        assert_eq!(poller.wait(&mut ready, 0).expect("wait"), 0);

        // A connect attempt makes the listener readable.
        let mut client = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(20));
        ready.clear();
        poller.wait(&mut ready, 0).expect("wait");
        assert_eq!(ready, vec![Ready { token: u64::MAX }]);

        // Level-triggered: still readable until accepted.
        ready.clear();
        poller.wait(&mut ready, 0).expect("wait");
        assert_eq!(ready.len(), 1);

        let (server_side, _) = listener.accept().expect("accept");
        poller.add(server_side.as_raw_fd(), 7).expect("add conn");
        ready.clear();
        assert_eq!(poller.wait(&mut ready, 0).expect("wait"), 0);

        client.write_all(b"ping").expect("write");
        std::thread::sleep(std::time::Duration::from_millis(20));
        ready.clear();
        poller.wait(&mut ready, 0).expect("wait");
        assert_eq!(ready, vec![Ready { token: 7 }]);

        // Deregistration stops notifications; double-del is tolerated.
        poller.del(server_side.as_raw_fd()).expect("del");
        poller.del(server_side.as_raw_fd()).expect("del again");
        ready.clear();
        assert_eq!(poller.wait(&mut ready, 0).expect("wait"), 0);
    }

    #[test]
    fn availability_matches_cfg() {
        assert_eq!(
            READINESS_AVAILABLE,
            cfg!(all(
                feature = "epoll",
                target_os = "linux",
                target_arch = "x86_64"
            ))
        );
        if READINESS_AVAILABLE {
            assert!(Poller::new().is_ok());
        }
    }
}
