//! Loss functions.

use rpol_tensor::Tensor;

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean loss, ∂L/∂logits)`. Logits are `[N, classes]`; labels
/// index into the class dimension. The gradient is already divided by the
/// batch size, so it feeds straight into [`crate::layer::Layer::backward`].
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
///
/// # Examples
///
/// ```
/// use rpol_nn::loss::softmax_cross_entropy;
/// use rpol_tensor::Tensor;
///
/// let logits = Tensor::from_vec(&[1, 3], vec![2.0, 1.0, 0.1]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss > 0.0 && loss < 1.0); // confident and correct
/// assert_eq!(grad.shape().dims(), &[1, 3]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, classes]");
    let n = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "one label per row");
    assert!(
        labels.iter().all(|&l| l < classes),
        "label out of range (classes = {classes})"
    );
    let x = logits.data();
    let mut grad = vec![0.0f32; n * classes];
    let mut total_loss = 0.0f64;
    for i in 0..n {
        let row = &x[i * classes..(i + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let denom: f64 = exps.iter().sum();
        let label = labels[i];
        let p_label = exps[label] / denom;
        total_loss -= p_label.max(1e-12).ln();
        for j in 0..classes {
            let p = (exps[j] / denom) as f32;
            grad[i * classes + j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (
        (total_loss / n as f64) as f32,
        Tensor::from_vec(&[n, classes], grad),
    )
}

/// Mean-squared error between predictions and targets.
///
/// Returns `(mean loss, ∂L/∂pred)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred - target;
    let loss = diff.data().iter().map(|&d| d * d).sum::<f32>() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over C classes: loss = ln C.
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_confident_wrong_is_large() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: numeric {numeric} vs {got}",
                got = grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_numerically_stable_for_huge_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1e4, -1e4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn mse_known_values() {
        let pred = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let target = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn mse_zero_at_target() {
        let t = Tensor::from_vec(&[3], vec![1.0, -1.0, 0.5]);
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }
}
