//! Pooling layers.

use crate::layer::{Layer, Param};
use rpol_tensor::Tensor;

/// 2×2 average pooling with stride 2.
///
/// Input `[N, C, H, W]` with even `H` and `W`; output `[N, C, H/2, W/2]`.
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2 {
    /// Creates a 2×2 average-pooling layer.
    pub fn new() -> Self {
        Self { input_dims: None }
    }
}

impl Layer for AvgPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        assert!(h % 2 == 0 && w % 2 == 0, "AvgPool2 needs even H and W");
        if train {
            self.input_dims = Some(input.shape().dims().to_vec());
        }
        let (oh, ow) = (h / 2, w / 2);
        let x = input.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for nc in 0..n * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = nc * h * w;
                    let sum = x[base + (2 * oy) * w + 2 * ox]
                        + x[base + (2 * oy) * w + 2 * ox + 1]
                        + x[base + (2 * oy + 1) * w + 2 * ox]
                        + x[base + (2 * oy + 1) * w + 2 * ox + 1];
                    out[nc * oh * ow + oy * ow + ox] = sum * 0.25;
                }
            }
        }
        Tensor::from_vec(&[n, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward before forward on AvgPool2");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = (h / 2, w / 2);
        let g = grad_out.data();
        let mut dx = vec![0.0f32; n * c * h * w];
        for nc in 0..n * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = g[nc * oh * ow + oy * ow + ox] * 0.25;
                    let base = nc * h * w;
                    dx[base + (2 * oy) * w + 2 * ox] += go;
                    dx[base + (2 * oy) * w + 2 * ox + 1] += go;
                    dx[base + (2 * oy + 1) * w + 2 * ox] += go;
                    dx[base + (2 * oy + 1) * w + 2 * ox + 1] += go;
                }
            }
        }
        Tensor::from_vec(&[n, c, h, w], dx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pooling layer.
    pub fn new() -> Self {
        Self { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        if train {
            self.input_dims = Some(input.shape().dims().to_vec());
        }
        let x = input.data();
        let area = (h * w) as f32;
        let mut out = vec![0.0f32; n * c];
        for nc in 0..n * c {
            out[nc] = x[nc * h * w..(nc + 1) * h * w].iter().sum::<f32>() / area;
        }
        Tensor::from_vec(&[n, c], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward before forward on GlobalAvgPool");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let area = (h * w) as f32;
        let g = grad_out.data();
        let mut dx = vec![0.0f32; n * c * h * w];
        for nc in 0..n * c {
            let go = g[nc] / area;
            for v in &mut dx[nc * h * w..(nc + 1) * h * w] {
                *v = go;
            }
        }
        Tensor::from_vec(&[n, c, h, w], dx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// 2×2 max pooling with stride 2.
///
/// Input `[N, C, H, W]` with even `H` and `W`; output `[N, C, H/2, W/2]`.
/// Backward routes each gradient to the window's argmax (first on ties).
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    input_dims: Option<Vec<usize>>,
    argmax: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2 max-pooling layer.
    pub fn new() -> Self {
        Self {
            input_dims: None,
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool2 needs even H and W");
        let (oh, ow) = (h / 2, w / 2);
        let x = input.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for nc in 0..n * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = nc * h * w;
                    let candidates = [
                        base + (2 * oy) * w + 2 * ox,
                        base + (2 * oy) * w + 2 * ox + 1,
                        base + (2 * oy + 1) * w + 2 * ox,
                        base + (2 * oy + 1) * w + 2 * ox + 1,
                    ];
                    let mut best = candidates[0];
                    for &cix in &candidates[1..] {
                        if x[cix] > x[best] {
                            best = cix;
                        }
                    }
                    let o = nc * oh * ow + oy * ow + ox;
                    out[o] = x[best];
                    argmax[o] = best;
                }
            }
        }
        if train {
            self.input_dims = Some(input.shape().dims().to_vec());
            self.argmax = argmax;
        }
        Tensor::from_vec(&[n, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward before forward on MaxPool2");
        let mut dx = vec![0.0f32; dims.iter().product()];
        for (o, &g) in grad_out.data().iter().enumerate() {
            dx[self.argmax[o]] += g;
        }
        Tensor::from_vec(dims, dx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        // Gradient routes only to the maxima.
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let dx = pool.backward(&g);
        let nonzero: Vec<usize> = dx
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonzero, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_is_invariant_to_nonmax_perturbation() {
        let mut pool = MaxPool2::new();
        let mut x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 9.0]);
        let y1 = pool.forward(&x, false);
        x.data_mut()[0] = 1.5; // not the max
        let y2 = pool.forward(&x, false);
        assert_eq!(y1, y2);
    }

    #[test]
    fn avgpool_known_values() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let y = pool.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let dx = pool.backward(&g);
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-7));
    }

    #[test]
    fn global_pool_known_values() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(&[1, 2, 2, 2], vec![1., 1., 1., 1., 2., 2., 2., 2.]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.data(), &[1.0, 2.0]);
        let g = Tensor::from_vec(&[1, 2], vec![4.0, 8.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.data(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "even H and W")]
    fn avgpool_odd_rejected() {
        AvgPool2::new().forward(&Tensor::ones(&[1, 1, 3, 4]), false);
    }
}
