//! Fully connected layer.

use crate::layer::{Layer, Param};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;

/// A fully connected layer `y = x·Wᵀ + b` with He-initialized weights.
///
/// Input `[N, in]`, output `[N, out]`, weight `[out, in]`, bias `[out]`.
///
/// # Examples
///
/// ```
/// use rpol_nn::prelude::*;
/// use rpol_tensor::{rng::Pcg32, Tensor};
///
/// let mut rng = Pcg32::seed_from(1);
/// let mut layer = Dense::new(4, 3, &mut rng);
/// let x = Tensor::ones(&[2, 4]);
/// let y = layer.forward(&x, true);
/// assert_eq!(y.shape().dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weight init and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Pcg32) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "zero-sized dense layer"
        );
        let scale = (2.0 / in_features as f32).sqrt();
        let mut weight = Tensor::randn(&[out_features, in_features], rng);
        weight.scale(scale);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit weight/bias tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is `[out, in]` and `bias` is `[out]`.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "dense weight must be rank 2");
        assert_eq!(bias.shape().rank(), 1, "dense bias must be rank 1");
        assert_eq!(
            weight.shape().dim(0),
            bias.shape().dim(0),
            "out dims differ"
        );
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense expects [N, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features(),
            "dense input width mismatch"
        );
        if train {
            self.cached_input = Some(input.clone());
        }
        let n = input.shape().dim(0);
        let out = self.out_features();
        // y = x · Wᵀ + b
        let mut y = input.matmul(&self.weight.value.transpose());
        for i in 0..n {
            for j in 0..out {
                let v = y.at(&[i, j]) + self.bias.value.data()[j];
                y.set(&[i, j], v);
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward on Dense");
        // dW = gᵀ · x ; db = Σ_batch g ; dx = g · W
        let dw = grad_out.transpose().matmul(input);
        self.weight.grad.axpy(1.0, &dw);
        let n = grad_out.shape().dim(0);
        let out = self.out_features();
        for j in 0..out {
            let mut s = 0.0;
            for i in 0..n {
                s += grad_out.at(&[i, j]);
            }
            self.bias.grad.data_mut()[j] += s;
        }
        grad_out.matmul(&self.weight.value)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check on a scalar loss L = Σ y².
    #[test]
    fn gradient_check() {
        let mut rng = Pcg32::seed_from(42);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);

        let y = layer.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v); // dL/dy for L = Σ y²
        layer.zero_grads();
        let dx = layer.backward(&grad_out);

        let eps = 1e-3;
        // Check weight gradient numerically.
        let mut analytic = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));
        for (pi, sample_idx) in [(0usize, 2usize), (0, 5), (1, 0), (1, 1)] {
            let mut plus = layer.clone();
            let mut idx = 0;
            plus.visit_params_mut(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[sample_idx] += eps;
                }
                idx += 1;
            });
            let mut minus = layer.clone();
            idx = 0;
            minus.visit_params_mut(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[sample_idx] -= eps;
                }
                idx += 1;
            });
            let lp: f32 = plus.forward(&x, false).data().iter().map(|v| v * v).sum();
            let lm: f32 = minus.forward(&x, false).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic[pi].data()[sample_idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "param {pi}[{sample_idx}]: numeric {numeric} vs analytic {got}"
            );
        }

        // Check input gradient numerically at a few coordinates.
        for sample_idx in [0usize, 7, 11] {
            let mut xp = x.clone();
            xp.data_mut()[sample_idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[sample_idx] -= eps;
            let lp: f32 = layer.forward(&xp, false).data().iter().map(|v| v * v).sum();
            let lm: f32 = layer.forward(&xm, false).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[sample_idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "input[{sample_idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn forward_known_values() {
        let weight = Tensor::from_vec(&[2, 3], vec![1., 0., 0., 0., 1., 0.]);
        let bias = Tensor::from_vec(&[2], vec![10., 20.]);
        let mut layer = Dense::from_parts(weight, bias);
        let x = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn param_count() {
        let mut rng = Pcg32::seed_from(0);
        let layer = Dense::new(10, 5, &mut rng);
        assert_eq!(layer.param_count(), 55);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = Pcg32::seed_from(1);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, true);
        layer.backward(&g);
        let mut first = Vec::new();
        layer.visit_params(&mut |p| first.push(p.grad.clone()));
        layer.forward(&x, true);
        layer.backward(&g);
        let mut second = Vec::new();
        layer.visit_params(&mut |p| second.push(p.grad.clone()));
        for (a, b) in first.iter().zip(&second) {
            for (x1, x2) in a.data().iter().zip(b.data()) {
                assert!((x2 - 2.0 * x1).abs() < 1e-5, "not accumulated");
            }
        }
        layer.zero_grads();
        layer.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&v| v == 0.0)));
    }
}
