//! Fully connected layer.

use crate::layer::{Layer, Param};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::scratch::ScratchArena;
use rpol_tensor::{gemm, Tensor};

/// A fully connected layer `y = x·Wᵀ + b` with He-initialized weights.
///
/// Input `[N, in]`, output `[N, out]`, weight `[out, in]`, bias `[out]`.
///
/// # Examples
///
/// ```
/// use rpol_nn::prelude::*;
/// use rpol_tensor::{rng::Pcg32, Tensor};
///
/// let mut rng = Pcg32::seed_from(1);
/// let mut layer = Dense::new(4, 3, &mut rng);
/// let x = Tensor::ones(&[2, 4]);
/// let y = layer.forward(&x, true);
/// assert_eq!(y.shape().dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weight init and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Pcg32) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "zero-sized dense layer"
        );
        let scale = (2.0 / in_features as f32).sqrt();
        let mut weight = Tensor::randn(&[out_features, in_features], rng);
        weight.scale(scale);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit weight/bias tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is `[out, in]` and `bias` is `[out]`.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "dense weight must be rank 2");
        assert_eq!(bias.shape().rank(), 1, "dense bias must be rank 1");
        assert_eq!(
            weight.shape().dim(0),
            bias.shape().dim(0),
            "out dims differ"
        );
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }
}

impl Dense {
    /// Forward body shared by the plain and arena entry points: the output
    /// buffer starts zeroed, `y = x · Wᵀ` accumulates into it via the
    /// fused-transpose kernel, and the bias is added afterwards — the same
    /// per-element chain `(Σ_p x·w) + b` as the original implementation.
    fn forward_into(&mut self, input: &Tensor, train: bool, y: Vec<f32>) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense expects [N, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features(),
            "dense input width mismatch"
        );
        if train {
            self.cached_input = Some(input.clone());
        }
        let n = input.shape().dim(0);
        let out = self.out_features();
        let mut y = y;
        debug_assert_eq!(y.len(), n * out);
        gemm::gemm_into(
            n,
            out,
            self.in_features(),
            input.data(),
            gemm::Trans::No,
            self.weight.value.data(),
            gemm::Trans::Yes,
            &mut y,
            gemm::default_threads(),
        );
        let bias = self.bias.value.data();
        for row in y.chunks_exact_mut(out) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        Tensor::from_vec(&[n, out], y)
    }

    /// Backward body shared by the plain and arena entry points. `dw` and
    /// `dx` are zeroed buffers for the weight-gradient temporary and the
    /// input gradient; `dw` is returned for recycling.
    fn backward_into(
        &mut self,
        grad_out: &Tensor,
        mut dw: Vec<f32>,
        mut dx: Vec<f32>,
    ) -> (Tensor, Vec<f32>) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward on Dense");
        let n = grad_out.shape().dim(0);
        let out = self.out_features();
        let inf = self.in_features();
        // dW = gᵀ · x via the fused kernel (no transpose materialized),
        // then accumulated into the persistent gradient in one axpy pass —
        // matching the original dW-then-axpy chain exactly.
        debug_assert_eq!(dw.len(), out * inf);
        gemm::gemm_into(
            out,
            inf,
            n,
            grad_out.data(),
            gemm::Trans::Yes,
            input.data(),
            gemm::Trans::No,
            &mut dw,
            gemm::default_threads(),
        );
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(&dw) {
            *g += d;
        }
        // db = Σ_batch g, summed per column in batch order.
        let g = grad_out.data();
        let db = self.bias.grad.data_mut();
        for (j, dbj) in db.iter_mut().enumerate() {
            let mut s = 0.0;
            for i in 0..n {
                s += g[i * out + j];
            }
            *dbj += s;
        }
        // dx = g · W
        debug_assert_eq!(dx.len(), n * inf);
        gemm::gemm_into(
            n,
            inf,
            out,
            g,
            gemm::Trans::No,
            self.weight.value.data(),
            gemm::Trans::No,
            &mut dx,
            gemm::default_threads(),
        );
        (Tensor::from_vec(&[n, inf], dx), dw)
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let y = vec![0.0f32; input.shape().dim(0) * self.out_features()];
        self.forward_into(input, train, y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dw = vec![0.0f32; self.weight.value.len()];
        let dx = vec![0.0f32; grad_out.shape().dim(0) * self.in_features()];
        self.backward_into(grad_out, dw, dx).0
    }

    fn forward_scratch(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        let y = arena.take_zeroed(input.shape().dim(0) * self.out_features());
        self.forward_into(input, train, y)
    }

    fn backward_scratch(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        let dw = arena.take_zeroed(self.weight.value.len());
        let dx = arena.take_zeroed(grad_out.shape().dim(0) * self.in_features());
        let (dx, dw) = self.backward_into(grad_out, dw, dx);
        arena.recycle(dw);
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check on a scalar loss L = Σ y².
    #[test]
    fn gradient_check() {
        let mut rng = Pcg32::seed_from(42);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);

        let y = layer.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v); // dL/dy for L = Σ y²
        layer.zero_grads();
        let dx = layer.backward(&grad_out);

        let eps = 1e-3;
        // Check weight gradient numerically.
        let mut analytic = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));
        for (pi, sample_idx) in [(0usize, 2usize), (0, 5), (1, 0), (1, 1)] {
            let mut plus = layer.clone();
            let mut idx = 0;
            plus.visit_params_mut(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[sample_idx] += eps;
                }
                idx += 1;
            });
            let mut minus = layer.clone();
            idx = 0;
            minus.visit_params_mut(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[sample_idx] -= eps;
                }
                idx += 1;
            });
            let lp: f32 = plus.forward(&x, false).data().iter().map(|v| v * v).sum();
            let lm: f32 = minus.forward(&x, false).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic[pi].data()[sample_idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "param {pi}[{sample_idx}]: numeric {numeric} vs analytic {got}"
            );
        }

        // Check input gradient numerically at a few coordinates.
        for sample_idx in [0usize, 7, 11] {
            let mut xp = x.clone();
            xp.data_mut()[sample_idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[sample_idx] -= eps;
            let lp: f32 = layer.forward(&xp, false).data().iter().map(|v| v * v).sum();
            let lm: f32 = layer.forward(&xm, false).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[sample_idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "input[{sample_idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn forward_known_values() {
        let weight = Tensor::from_vec(&[2, 3], vec![1., 0., 0., 0., 1., 0.]);
        let bias = Tensor::from_vec(&[2], vec![10., 20.]);
        let mut layer = Dense::from_parts(weight, bias);
        let x = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn param_count() {
        let mut rng = Pcg32::seed_from(0);
        let layer = Dense::new(10, 5, &mut rng);
        assert_eq!(layer.param_count(), 55);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = Pcg32::seed_from(1);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, true);
        layer.backward(&g);
        let mut first = Vec::new();
        layer.visit_params(&mut |p| first.push(p.grad.clone()));
        layer.forward(&x, true);
        layer.backward(&g);
        let mut second = Vec::new();
        layer.visit_params(&mut |p| second.push(p.grad.clone()));
        for (a, b) in first.iter().zip(&second) {
            for (x1, x2) in a.data().iter().zip(b.data()) {
                assert!((x2 - 2.0 * x1).abs() < 1e-5, "not accumulated");
            }
        }
        layer.zero_grads();
        layer.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&v| v == 0.0)));
    }
}
