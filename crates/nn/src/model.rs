//! Sequential model container and weight-vector flattening.

use crate::layer::{Layer, Param};
use crate::optim::Optimizer;
use rpol_tensor::scratch::ScratchArena;
use rpol_tensor::Tensor;

/// A sequential stack of layers.
///
/// Beyond forward/backward chaining, `Sequential` provides the operations
/// RPoL's protocol needs on whole models:
///
/// * [`Sequential::flatten_params`] — the model as one `Vec<f32>` in
///   deterministic layer order, the unit that is checkpointed, hashed,
///   LSH-signed and distance-compared;
/// * [`Sequential::load_params`] — restore a model from such a vector
///   (used by the verifier to replay from a checkpoint's input weights);
/// * [`Sequential::step`] — apply an [`Optimizer`] to every parameter.
///
/// # Examples
///
/// ```
/// use rpol_nn::prelude::*;
/// use rpol_tensor::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from(0);
/// let model = Sequential::new(vec![
///     Box::new(Dense::new(4, 8, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(8, 2, &mut rng)),
/// ]);
/// assert_eq!(model.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Recycles intermediate activation/gradient buffers between layers
    /// and across steps; purely a memory optimization, invisible to the
    /// computed values (and therefore to checkpoint digests).
    arena: ScratchArena,
}

impl Sequential {
    /// Builds a model from an ordered layer list.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        Self {
            layers,
            arena: ScratchArena::new(),
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Inserts a layer at the front (how RPoL prepends the AMLayer).
    pub fn push_front(&mut self, layer: Box<dyn Layer>) {
        self.layers.insert(0, layer);
    }

    /// Removes and returns the front layer (used by the address-replacing
    /// attack to swap AMLayers).
    ///
    /// # Panics
    ///
    /// Panics if the model would become empty.
    pub fn pop_front(&mut self) -> Box<dyn Layer> {
        assert!(self.layers.len() > 1, "cannot remove the only layer");
        self.layers.remove(0)
    }

    /// Forward pass through all layers. Intermediate activations are
    /// recycled through the model's scratch arena, so steady-state passes
    /// reuse the same buffers instead of allocating per layer.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if rpol_obs::global_enabled() {
            rpol_obs::global().counter_add("nn.model.forwards", 1);
        }
        let mut layers = self.layers.iter_mut();
        let first = layers.next().expect("model needs at least one layer");
        let mut x = first.forward_scratch(input, train, &mut self.arena);
        for layer in layers {
            let y = layer.forward_scratch(&x, train, &mut self.arena);
            self.arena.recycle(x.into_vec());
            x = y;
        }
        x
    }

    /// Backward pass through all layers (reverse order), accumulating
    /// parameter gradients. Returns `∂L/∂input`. Intermediate gradients
    /// are recycled like forward activations.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if rpol_obs::global_enabled() {
            rpol_obs::global().counter_add("nn.model.backwards", 1);
        }
        let mut layers = self.layers.iter_mut().rev();
        let last = layers.next().expect("model needs at least one layer");
        let mut g = last.backward_scratch(grad_out, &mut self.arena);
        for layer in layers {
            let g_next = layer.backward_scratch(&g, &mut self.arena);
            self.arena.recycle(g.into_vec());
            g = g_next;
        }
        g
    }

    /// Applies the optimizer to every non-frozen parameter, then zeroes
    /// gradients. Frozen parameters (e.g. RPoL's AMLayer weights) keep
    /// their values but still occupy an optimizer index so state stays
    /// aligned if a layer is later unfrozen.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        let mut index = 0;
        for layer in &mut self.layers {
            layer.visit_params_mut(&mut |p| {
                if !p.frozen {
                    opt.update(index, p);
                }
                p.zero_grad();
                index += 1;
            });
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Reseeds every stochastic layer (see [`Layer::reseed`]).
    pub fn reseed(&mut self, seed: u64) {
        for layer in &mut self.layers {
            layer.reseed(seed);
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Flattens all parameters into one vector, in deterministic layer
    /// order. This is the paper's "model weights θ".
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
        }
        out
    }

    /// Restores all parameters from a flat vector produced by
    /// [`Sequential::flatten_params`] on an identically shaped model.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` does not equal [`Sequential::param_count`].
    pub fn load_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat vector length {} does not match model parameter count {}",
            flat.len(),
            self.param_count()
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.visit_params_mut(&mut |p| {
                let n = p.len();
                p.value
                    .data_mut()
                    .copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            });
        }
    }

    /// Visits all parameters immutably in flattening order.
    pub fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits all parameters mutably in flattening order.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Model size in bytes when serialized as raw `f32` weights; drives the
    /// communication accounting.
    pub fn byte_size(&self) -> usize {
        self.param_count() * 4
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sequential({} layers, {} params)",
            self.layers.len(),
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use rpol_tensor::rng::Pcg32;

    fn small_model(seed: u64) -> Sequential {
        let mut rng = Pcg32::seed_from(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn flatten_load_roundtrip() {
        let m1 = small_model(1);
        let mut m2 = small_model(2);
        let flat = m1.flatten_params();
        assert_eq!(flat.len(), m1.param_count());
        m2.load_params(&flat);
        assert_eq!(m2.flatten_params(), flat);
    }

    #[test]
    fn loaded_models_agree_on_outputs() {
        let mut m1 = small_model(1);
        let mut m2 = small_model(2);
        m2.load_params(&m1.flatten_params());
        let mut rng = Pcg32::seed_from(9);
        let x = Tensor::randn(&[3, 4], &mut rng);
        assert_eq!(m1.forward(&x, false), m2.forward(&x, false));
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = small_model(3);
        let mut opt = Sgd::new(0.5);
        let mut rng = Pcg32::seed_from(4);
        let x = Tensor::randn(&[16, 4], &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
        let logits = model.forward(&x, true);
        let (loss0, _) = softmax_cross_entropy(&logits, &labels);
        for _ in 0..50 {
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            model.step(&mut opt);
        }
        let logits = model.forward(&x, false);
        let (loss1, _) = softmax_cross_entropy(&logits, &labels);
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut model = small_model(5);
            let mut opt = Sgd::new(0.1);
            let mut rng = Pcg32::seed_from(6);
            let x = Tensor::randn(&[8, 4], &mut rng);
            let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
            for _ in 0..10 {
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &labels);
                model.backward(&grad);
                model.step(&mut opt);
            }
            model.flatten_params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn push_pop_front() {
        let mut model = small_model(7);
        let n = model.param_count();
        let mut rng = Pcg32::seed_from(8);
        model.push_front(Box::new(Dense::new(4, 4, &mut rng)));
        assert_eq!(model.param_count(), n + 20);
        model.pop_front();
        assert_eq!(model.param_count(), n);
    }

    #[test]
    #[should_panic(expected = "does not match model parameter count")]
    fn load_length_checked() {
        small_model(0).load_params(&[0.0; 3]);
    }
}
