//! The four optimizers the paper evaluates (§VII-C): SGD, SGD with
//! momentum (the paper's default, lr 0.1, momentum 0.9), RMSprop and Adam.
//!
//! Optimizers are driven by [`crate::model::Sequential::step`], which
//! visits parameters in deterministic order; per-parameter state is keyed
//! by that visitation index.

use crate::layer::Param;
use serde::{Deserialize, Serialize};

/// An optimizer updating one parameter per call, identified by a stable
/// index.
///
/// Implementations lazily allocate per-parameter state the first time an
/// index is seen; parameter order must therefore be stable across steps
/// (guaranteed by [`crate::model::Sequential`]).
pub trait Optimizer {
    /// Applies one update to parameter `index` using its accumulated
    /// gradient.
    fn update(&mut self, index: usize, param: &mut Param);

    /// The nominal learning rate (for reporting).
    fn learning_rate(&self) -> f32;

    /// A short human-readable name (e.g. `"sgdm"`).
    fn name(&self) -> &'static str;
}

/// Identifies an optimizer family plus hyper-parameters; the pool manager
/// broadcasts this so workers and verifier run the *same* update rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum (the paper's default: 0.1 / 0.9).
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// RMSprop.
    RmsProp {
        /// Learning rate.
        lr: f32,
        /// Squared-gradient decay.
        decay: f32,
    },
    /// Adam.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
    },
}

impl OptimizerSpec {
    /// The paper's default optimizer: SGDM with lr 0.1, momentum 0.9.
    pub fn paper_default() -> Self {
        OptimizerSpec::SgdMomentum {
            lr: 0.1,
            momentum: 0.9,
        }
    }

    /// Instantiates the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerSpec::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerSpec::SgdMomentum { lr, momentum } => Box::new(SgdMomentum::new(lr, momentum)),
            OptimizerSpec::RmsProp { lr, decay } => Box::new(RmsProp::new(lr, decay)),
            OptimizerSpec::Adam { lr, beta1, beta2 } => Box::new(Adam::new(lr, beta1, beta2)),
        }
    }
}

fn check_lr(lr: f32) {
    assert!(
        lr.is_finite() && lr > 0.0,
        "learning rate must be positive, got {lr}"
    );
}

/// Plain SGD: `θ ← θ − η·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates plain SGD.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        check_lr(lr);
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _index: usize, param: &mut Param) {
        let lr = self.lr;
        for (w, &g) in param.value.data_mut().iter_mut().zip(param.grad.data()) {
            *w -= lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// SGD with classical momentum: `v ← μ·v + g; θ ← θ − η·v`.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl SgdMomentum {
    /// Creates SGDM.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 ≤ momentum < 1`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        check_lr(lr);
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn update(&mut self, index: usize, param: &mut Param) {
        if self.velocity.len() <= index {
            self.velocity.resize(index + 1, Vec::new());
        }
        let v = &mut self.velocity[index];
        if v.len() != param.len() {
            v.resize(param.len(), 0.0);
        }
        let (lr, mu) = (self.lr, self.momentum);
        for ((w, &g), vi) in param
            .value
            .data_mut()
            .iter_mut()
            .zip(param.grad.data())
            .zip(v.iter_mut())
        {
            *vi = mu * *vi + g;
            *w -= lr * *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "sgdm"
    }
}

/// RMSprop: `s ← ρ·s + (1−ρ)·g²; θ ← θ − η·g/(√s + ε)`.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    sq_avg: Vec<Vec<f32>>,
}

impl RmsProp {
    /// Creates RMSprop.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 < decay < 1`.
    pub fn new(lr: f32, decay: f32) -> Self {
        check_lr(lr);
        assert!((0.0..1.0).contains(&decay) && decay > 0.0, "decay in (0,1)");
        Self {
            lr,
            decay,
            eps: 1e-8,
            sq_avg: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn update(&mut self, index: usize, param: &mut Param) {
        if self.sq_avg.len() <= index {
            self.sq_avg.resize(index + 1, Vec::new());
        }
        let s = &mut self.sq_avg[index];
        if s.len() != param.len() {
            s.resize(param.len(), 0.0);
        }
        let (lr, rho, eps) = (self.lr, self.decay, self.eps);
        for ((w, &g), si) in param
            .value
            .data_mut()
            .iter_mut()
            .zip(param.grad.data())
            .zip(s.iter_mut())
        {
            *si = rho * *si + (1.0 - rho) * g * g;
            *w -= lr * g / (si.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

/// Adam with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Index of the first parameter seen each step, used to advance `t`
    /// exactly once per optimization step.
    first_index: Option<usize>,
}

impl Adam {
    /// Creates Adam.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and both betas are in `(0, 1)`.
    pub fn new(lr: f32, beta1: f32, beta2: f32) -> Self {
        check_lr(lr);
        assert!((0.0..1.0).contains(&beta1) && beta1 > 0.0, "beta1 in (0,1)");
        assert!((0.0..1.0).contains(&beta2) && beta2 > 0.0, "beta2 in (0,1)");
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            first_index: None,
        }
    }

    /// Adam with the conventional defaults (1e-3, 0.9, 0.999).
    pub fn standard() -> Self {
        Self::new(1e-3, 0.9, 0.999)
    }
}

impl Optimizer for Adam {
    fn update(&mut self, index: usize, param: &mut Param) {
        // Advance the timestep when we revisit the first parameter.
        match self.first_index {
            None => {
                self.first_index = Some(index);
                self.t = 1;
            }
            Some(first) if first == index => self.t += 1,
            _ => {}
        }
        if self.m.len() <= index {
            self.m.resize(index + 1, Vec::new());
            self.v.resize(index + 1, Vec::new());
        }
        if self.m[index].len() != param.len() {
            self.m[index].resize(param.len(), 0.0);
            self.v[index].resize(param.len(), 0.0);
        }
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (ms, vs) = (&mut self.m[index], &mut self.v[index]);
        for (((w, &g), mi), vi) in param
            .value
            .data_mut()
            .iter_mut()
            .zip(param.grad.data())
            .zip(ms.iter_mut())
            .zip(vs.iter_mut())
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *w -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::Tensor;

    fn quadratic_param(start: f32) -> Param {
        Param::new(Tensor::from_vec(&[1], vec![start]))
    }

    /// Runs `steps` of minimizing f(w) = w² (gradient 2w) and returns the
    /// final |w|.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quadratic_param(5.0);
        for _ in 0..steps {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * w;
            opt.update(0, &mut p);
        }
        p.value.data()[0].abs()
    }

    #[test]
    fn all_optimizers_minimize_quadratic() {
        assert!(minimize(&mut Sgd::new(0.1), 100) < 1e-3);
        assert!(minimize(&mut SgdMomentum::new(0.05, 0.9), 200) < 1e-2);
        assert!(minimize(&mut RmsProp::new(0.05, 0.9), 400) < 0.05);
        assert!(minimize(&mut Adam::new(0.2, 0.9, 0.999), 400) < 0.05);
    }

    #[test]
    fn sgd_known_step() {
        let mut p = quadratic_param(1.0);
        p.grad.data_mut()[0] = 0.5;
        Sgd::new(0.1).update(0, &mut p);
        assert!((p.value.data()[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let mut p = quadratic_param(0.0);
        // Constant gradient 1: first step -0.1, second step -(0.1 * 1.9).
        p.grad.data_mut()[0] = 1.0;
        opt.update(0, &mut p);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-7);
        p.grad.data_mut()[0] = 1.0;
        opt.update(0, &mut p);
        assert!((p.value.data()[0] + 0.1 + 0.19).abs() < 1e-6);
    }

    #[test]
    fn optimizers_are_deterministic() {
        let run = || {
            let mut opt = Adam::standard();
            let mut p = quadratic_param(2.0);
            for _ in 0..50 {
                let w = p.value.data()[0];
                p.grad.data_mut()[0] = 2.0 * w;
                opt.update(0, &mut p);
            }
            p.value.data()[0]
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_builds_correct_kind() {
        assert_eq!(OptimizerSpec::paper_default().build().name(), "sgdm");
        assert_eq!(OptimizerSpec::Sgd { lr: 0.1 }.build().name(), "sgd");
        assert_eq!(
            OptimizerSpec::RmsProp {
                lr: 0.01,
                decay: 0.9
            }
            .build()
            .name(),
            "rmsprop"
        );
        assert_eq!(
            OptimizerSpec::Adam {
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999
            }
            .build()
            .name(),
            "adam"
        );
    }

    #[test]
    fn multi_param_state_is_independent() {
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let mut a = quadratic_param(1.0);
        let mut b = quadratic_param(1.0);
        a.grad.data_mut()[0] = 1.0;
        b.grad.data_mut()[0] = -1.0;
        opt.update(0, &mut a);
        opt.update(1, &mut b);
        assert!((a.value.data()[0] - 0.9).abs() < 1e-7);
        assert!((b.value.data()[0] - 1.1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn negative_lr_rejected() {
        Sgd::new(-0.1);
    }
}
