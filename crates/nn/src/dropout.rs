//! Seeded, deterministic dropout.
//!
//! RPoL's replay verification requires every training-time source of
//! randomness to be reproducible by the verifier, so this dropout draws
//! its masks from a seeded PCG stream that the protocol can reset — the
//! same discipline as the PRF-deterministic batch selection of §V-B.

use crate::layer::{Layer, Param};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;

/// Inverted dropout with a deterministic, reseedable mask stream.
///
/// During training each activation is dropped with probability `p` and
/// survivors are scaled by `1/(1-p)`; inference passes inputs through
/// untouched.
///
/// # Examples
///
/// ```
/// use rpol_nn::dropout::Dropout;
/// use rpol_nn::layer::Layer;
/// use rpol_tensor::Tensor;
///
/// let mut layer = Dropout::new(0.5, 42);
/// let x = Tensor::ones(&[1, 100]);
/// let inference = layer.forward(&x, false);
/// assert_eq!(inference, x); // identity at inference time
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    rng: Pcg32,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1), got {p}"
        );
        Self {
            p,
            seed,
            rng: Pcg32::seed_from(seed),
            mask: None,
        }
    }

    /// Resets the mask stream to its initial state — the verifier calls
    /// this before replaying a segment so masks line up with the worker's.
    pub fn reset_stream(&mut self) {
        self.rng = Pcg32::seed_from(self.seed);
    }

    /// The construction-time base seed.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_vec(
            input.shape().dims(),
            (0..input.len())
                .map(|_| {
                    if self.rng.next_f32() < keep {
                        scale
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        let out = input.zip(&mask, |x, m| x * m);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward before forward on Dropout");
        grad_out.zip(mask, |g, m| g * m)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn reseed(&mut self, seed: u64) {
        // Combine with the construction seed so two dropout layers in one
        // model draw distinct masks even under the same protocol seed.
        self.rng = Pcg32::seed_from(self.seed ^ seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.7, 1);
        let x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, true);
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        // Roughly half dropped.
        assert!((4_500..5_500).contains(&dropped), "dropped {dropped}");
        // Survivors scaled by 2 so the expectation is preserved.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn stream_reset_reproduces_masks() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones(&[1, 64]);
        let y1 = d.forward(&x, true);
        let y2 = d.forward(&x, true);
        assert_ne!(y1, y2, "stream should advance");
        d.reset_stream();
        let y1_again = d.forward(&x, true);
        assert_eq!(y1, y1_again, "reset must replay the same masks");
    }

    #[test]
    fn backward_masks_gradients() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1, 32]);
        let y = d.forward(&x, true);
        let g = Tensor::ones(&[1, 32]);
        let dx = d.backward(&g);
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0, "gradient must follow the mask");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::ones(&[2, 8]);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_rejected() {
        Dropout::new(1.0, 0);
    }
}
