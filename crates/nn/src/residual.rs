//! Residual wrapper: `y = x + F(x)`.
//!
//! Used both by the "mini-ResNet" task models and by RPoL's AMLayer, which
//! the paper constructs as a residual block whose inner map is constrained
//! to Lipschitz constant `c < 1` so the whole layer is an invertible 1-1
//! mapping (Behrmann et al., "Invertible residual networks").

use crate::layer::{Layer, Param};
use rpol_tensor::Tensor;

/// A residual block wrapping an inner layer: `y = x + inner(x)`.
///
/// The inner layer must preserve the input shape.
///
/// # Examples
///
/// ```
/// use rpol_nn::prelude::*;
/// use rpol_tensor::{rng::Pcg32, Tensor};
///
/// let mut rng = Pcg32::seed_from(0);
/// let mut block = Residual::new(Box::new(Conv2d::new(4, 4, 3, 1, &mut rng)));
/// let x = Tensor::ones(&[1, 4, 6, 6]);
/// assert_eq!(block.forward(&x, false).shape(), x.shape());
/// ```
pub struct Residual {
    inner: Box<dyn Layer>,
}

impl Residual {
    /// Wraps an inner layer.
    pub fn new(inner: Box<dyn Layer>) -> Self {
        Self { inner }
    }

    /// Access to the wrapped layer.
    pub fn inner(&self) -> &dyn Layer {
        self.inner.as_ref()
    }

    /// Mutable access to the wrapped layer.
    pub fn inner_mut(&mut self) -> &mut dyn Layer {
        self.inner.as_mut()
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Residual({} params)", self.param_count())
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let fx = self.inner.forward(input, train);
        assert_eq!(
            fx.shape(),
            input.shape(),
            "residual inner layer must preserve shape"
        );
        &fx + input
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dinner = self.inner.backward(grad_out);
        &dinner + grad_out
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.inner.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use rpol_tensor::rng::Pcg32;

    #[test]
    fn identity_plus_zero_inner_is_identity() {
        // Dense initialized with zero weight/bias: F(x) = 0, y = x.
        let weight = Tensor::zeros(&[4, 4]);
        let bias = Tensor::zeros(&[4]);
        let mut block = Residual::new(Box::new(Dense::from_parts(weight, bias)));
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| i as f32).collect());
        assert_eq!(block.forward(&x, false), x);
    }

    #[test]
    fn gradient_flows_through_skip() {
        let weight = Tensor::zeros(&[2, 2]);
        let bias = Tensor::zeros(&[2]);
        let mut block = Residual::new(Box::new(Dense::from_parts(weight, bias)));
        let x = Tensor::ones(&[1, 2]);
        block.forward(&x, true);
        let g = Tensor::from_vec(&[1, 2], vec![3.0, 5.0]);
        let dx = block.backward(&g);
        // With zero inner weights the skip path passes gradients verbatim.
        assert_eq!(dx.data(), &[3.0, 5.0]);
    }

    #[test]
    fn conv_residual_gradient_check() {
        let mut rng = Pcg32::seed_from(3);
        let mut block = Residual::new(Box::new(Conv2d::new(2, 2, 3, 1, &mut rng)));
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = block.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v);
        block.zero_grads();
        let dx = block.backward(&grad_out);

        let eps = 1e-2f32;
        for idx in [0usize, 10, 20] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = block.forward(&xp, false).data().iter().map(|v| v * v).sum();
            let lm: f32 = block.forward(&xm, false).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "dx[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "preserve shape")]
    fn shape_changing_inner_rejected() {
        let mut rng = Pcg32::seed_from(0);
        let mut block = Residual::new(Box::new(Dense::new(4, 3, &mut rng)));
        block.forward(&Tensor::ones(&[1, 4]), false);
    }
}
