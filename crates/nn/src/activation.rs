//! Elementwise activation layers.

use crate::layer::{Layer, Param};
use rpol_tensor::scratch::ScratchArena;
use rpol_tensor::Tensor;

/// Maps `src` elementwise into a buffer drawn from `arena`, producing a
/// tensor of the same shape without allocating in steady state.
fn map_into_arena(src: &Tensor, arena: &mut ScratchArena, f: impl Fn(f32) -> f32) -> Tensor {
    let mut buf = arena.take_empty(src.len());
    buf.extend(src.data().iter().map(|&v| f(v)));
    Tensor::from_vec(src.shape().dims(), buf)
}

/// Zips two same-shaped tensors elementwise into an arena buffer.
fn zip_into_arena(
    a: &Tensor,
    b: &Tensor,
    arena: &mut ScratchArena,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    assert_eq!(a.shape().dims(), b.shape().dims(), "zip shape mismatch");
    let mut buf = arena.take_empty(a.len());
    buf.extend(a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)));
    Tensor::from_vec(a.shape().dims(), buf)
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { cached_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward on Relu");
        input.zip(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn forward_scratch(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        map_into_arena(input, arena, |x| x.max(0.0))
    }

    fn backward_scratch(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward on Relu");
        zip_into_arena(input, grad_out, arena, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Self {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(|x| x.tanh());
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward before forward on Tanh");
        out.zip(grad_out, |y, g| (1.0 - y * y) * g)
    }

    fn forward_scratch(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        let out = map_into_arena(input, arena, |x| x.tanh());
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward_scratch(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward before forward on Tanh");
        zip_into_arena(out, grad_out, arena, |y, g| (1.0 - y * y) * g)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::ones(&[1, 4]);
        let dx = relu.backward(&g);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(relu.param_count(), 0);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(&[1, 3], vec![-0.5, 0.1, 0.9]);
        let y = tanh.forward(&x, true);
        let g = Tensor::ones(&[1, 3]);
        let dx = tanh.backward(&g);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (tanh.forward(&xp, false).data()[i] - tanh.forward(&xm, false).data()[i])
                / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 1e-3);
        }
        assert!((y.data()[1] - 0.1f32.tanh()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn relu_requires_forward() {
        Relu::new().backward(&Tensor::ones(&[1, 1]));
    }
}
