//! The layer abstraction: explicit forward/backward with cached state.

use rpol_tensor::scratch::ScratchArena;
use rpol_tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
    /// Frozen parameters are part of the model's weight vector (hashed,
    /// checkpointed, distance-compared) but skipped by optimizers — how
    /// RPoL keeps its non-trainable AMLayer weights verifiable on chain.
    pub frozen: bool,
}

impl Param {
    /// Wraps a tensor as a parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Self {
            value,
            grad,
            frozen: false,
        }
    }

    /// Wraps a tensor as a frozen (non-trainable) parameter.
    pub fn new_frozen(value: Tensor) -> Self {
        let mut p = Self::new(value);
        p.frozen = true;
        p
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with explicit gradients.
///
/// The contract mirrors classic define-by-hand frameworks:
///
/// * [`Layer::forward`] consumes a batch-first input (`[N, features]` or
///   `[N, C, H, W]`), caches whatever it needs, and returns the output;
/// * [`Layer::backward`] consumes `∂L/∂output`, accumulates `∂L/∂params`
///   into its [`Param`]s, and returns `∂L/∂input`;
/// * parameter traversal ([`Layer::visit_params`]/[`Layer::visit_params_mut`])
///   exposes parameters in a stable, deterministic order so optimizers can
///   key per-parameter state by index and RPoL can flatten the model into
///   one weight vector for hashing and distance measurement.
///
/// Frozen layers (like RPoL's AMLayer) simply expose no parameters.
///
/// `Send + Sync` are supertraits so models can move between (and be read
/// from) worker threads in the parallel pool runtime; layers are plain
/// data and satisfy both trivially.
pub trait Layer: Send + Sync {
    /// Runs the layer on a batch. `train` enables training-time behaviour
    /// (e.g. caching inputs for backward); inference may skip it.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out`, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Like [`Layer::forward`], but may draw its output buffer from
    /// `arena` instead of allocating. Semantics are identical to
    /// `forward` — bitwise, not just numerically — so containers can use
    /// this unconditionally; the default ignores the arena.
    fn forward_scratch(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        let _ = arena;
        self.forward(input, train)
    }

    /// Like [`Layer::backward`], but may draw its output buffer from
    /// `arena`; bitwise-identical semantics, default ignores the arena.
    fn backward_scratch(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        let _ = arena;
        self.backward(grad_out)
    }

    /// Visits all parameters in deterministic order.
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Visits all parameters mutably in deterministic order (same order as
    /// [`Layer::visit_params`]).
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Re-derives any internal randomness (e.g. dropout masks) from
    /// `seed`. Deterministic layers ignore this; stochastic layers MUST
    /// honour it so that replay verification can reproduce a training
    /// segment exactly from `(weights, nonce, step)`.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }
}

/// Reshapes `[N, C, H, W]` (or any rank ≥ 2) into `[N, features]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let dims = input.shape().dims();
        assert!(dims.len() >= 2, "flatten expects a batch dimension");
        let n = dims[0];
        let features: usize = dims[1..].iter().product();
        if train {
            self.input_dims = Some(dims.to_vec());
        }
        input.reshape(&[n, features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward before forward on Flatten");
        grad_out.reshape(dims)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(&[3]));
        p.grad = Tensor::full(&[3], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 2, 2], (0..16).map(|i| i as f32).collect());
        let y = fl.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 8]);
        let back = fl.backward(&y);
        assert_eq!(back, x);
        assert_eq!(fl.param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn flatten_backward_requires_forward() {
        let mut fl = Flatten::new();
        fl.backward(&Tensor::ones(&[1, 4]));
    }
}
