//! Evaluation metrics.

use crate::model::Sequential;
use rpol_tensor::Tensor;

/// Classification accuracy of logits against labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the batch dimension mismatches the label count.
///
/// # Examples
///
/// ```
/// use rpol_nn::metrics::accuracy;
/// use rpol_tensor::Tensor;
///
/// let logits = Tensor::from_vec(&[2, 2], vec![3.0, 1.0, 0.0, 2.0]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let n = logits.shape().dim(0);
    correct_count(logits, labels) as f32 / n as f32
}

/// Number of argmax-correct rows in a `[N, classes]` logits batch.
///
/// Integer counts from disjoint chunks of a batch sum to the full-batch
/// count exactly, which is what lets chunked (and parallel) evaluation
/// reproduce full-batch accuracy bit for bit.
///
/// # Panics
///
/// Panics if the batch dimension mismatches the label count.
pub fn correct_count(logits: &Tensor, labels: &[usize]) -> usize {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, classes]");
    let n = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "one label per row");
    let x = logits.data();
    let mut correct = 0;
    for i in 0..n {
        let row = &x[i * classes..(i + 1) * classes];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == labels[i] {
            correct += 1;
        }
    }
    correct
}

/// Evaluates a model's accuracy on a full `(inputs, labels)` batch.
pub fn evaluate(model: &mut Sequential, inputs: &Tensor, labels: &[usize]) -> f32 {
    let logits = model.forward(inputs, false);
    accuracy(&logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_accuracy() {
        let logits = Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 1., 0., 0., 1.]);
        assert_eq!(accuracy(&logits, &[0, 1, 1, 1]), 0.75);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_checked() {
        accuracy(&Tensor::zeros(&[2, 2]), &[0]);
    }
}
